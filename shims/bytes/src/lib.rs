//! Offline stand-in for `bytes`.
//!
//! Provides the `Buf` / `BufMut` cursor traits over plain slices with the
//! big-endian accessors the wire codecs use. Semantics match `bytes` 1.x
//! for these methods: reads and writes advance the slice in place and
//! panic when the slice is too short (wire codecs bound-check with
//! `remaining()` first).

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;
}

/// Write cursor over a byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    fn remaining_mut(&self) -> usize;
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
}

macro_rules! get_be {
    ($self:ident, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let (head, rest) = $self.split_at(N);
        let v = <$t>::from_be_bytes(head.try_into().unwrap());
        *$self = rest;
        v
    }};
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn get_u8(&mut self) -> u8 {
        get_be!(self, u8)
    }
    #[inline]
    fn get_u16(&mut self) -> u16 {
        get_be!(self, u16)
    }
    #[inline]
    fn get_u32(&mut self) -> u32 {
        get_be!(self, u32)
    }
    #[inline]
    fn get_u64(&mut self) -> u64 {
        get_be!(self, u64)
    }
}

macro_rules! put_be {
    ($self:ident, $v:expr) => {{
        let bytes = $v.to_be_bytes();
        let this = std::mem::take($self);
        let (head, rest) = this.split_at_mut(bytes.len());
        head.copy_from_slice(&bytes);
        *$self = rest;
    }};
}

impl BufMut for &mut [u8] {
    #[inline]
    fn remaining_mut(&self) -> usize {
        self.len()
    }
    #[inline]
    fn put_u8(&mut self, v: u8) {
        put_be!(self, v)
    }
    #[inline]
    fn put_u16(&mut self, v: u16) {
        put_be!(self, v)
    }
    #[inline]
    fn put_u32(&mut self, v: u32) {
        put_be!(self, v)
    }
    #[inline]
    fn put_u64(&mut self, v: u64) {
        put_be!(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_advance() {
        let mut buf = [0u8; 15];
        let mut w: &mut [u8] = &mut buf;
        assert_eq!(w.remaining_mut(), 15);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        assert_eq!(w.remaining_mut(), 0);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = [0u8; 2];
        let mut w: &mut [u8] = &mut buf;
        w.put_u16(0x0102);
        assert_eq!(buf, [0x01, 0x02]);
    }
}
