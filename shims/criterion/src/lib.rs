//! Offline stand-in for `criterion`.
//!
//! A compact wall-clock benchmark harness with criterion's API shape:
//! groups, throughput annotation, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Statistics are
//! intentionally simple — warm-up, then timed batches until the
//! measurement window closes, reporting median-of-batches ns/iter plus
//! derived throughput. Every result line is also emitted as a
//! machine-readable JSON object (prefix `CRITERION_JSON`), which the
//! repo's bench scripts scrape into `BENCH_*.json` files.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_secs(3),
            sample_size: 60,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    pub fn measurement_time(&mut self, d: Duration) {
        self.measurement_time = d;
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            iters_done: 0,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, name, self.throughput);
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples_ns: Vec<f64>,
    iters_done: u64,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly: one warm-up call, then samples until
    /// either `sample_size` samples are collected or the measurement
    /// window elapses (whichever comes first, always ≥ 3 samples).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (also primes caches/allocators) and calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();

        // Batch enough iterations that one sample is ≥ ~200 us, so cheap
        // routines aren't dominated by timer quantization.
        let batch = if once < Duration::from_micros(200) {
            let per_iter = once.as_nanos().max(1) as u64;
            (200_000 / per_iter).clamp(1, 1 << 22)
        } else {
            1
        };

        let window = Instant::now();
        while self.samples_ns.len() < self.sample_size.max(3)
            && (window.elapsed() < self.measurement_time || self.samples_ns.len() < 3)
        {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(dt);
            self.iters_done += batch;
        }
    }

    fn report(&mut self, group: &str, name: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{group}/{name}: no samples collected");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[0];
        let hi = self.samples_ns[self.samples_ns.len() - 1];
        let mut line = format!(
            "{group}/{name}: median {} [min {}, max {}] ({} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            self.samples_ns.len()
        );
        let mut thr_json = String::new();
        if let Some(t) = throughput {
            match t {
                Throughput::Bytes(b) => {
                    let gbs = b as f64 / median; // bytes/ns == GB/s
                    line.push_str(&format!(", {gbs:.3} GB/s"));
                    thr_json = format!(",\"gb_per_sec\":{gbs:.6}");
                }
                Throughput::Elements(n) => {
                    let meps = n as f64 / median * 1e3; // elements/ns -> M/s
                    line.push_str(&format!(", {meps:.3} Melem/s"));
                    thr_json = format!(",\"melem_per_sec\":{meps:.6}");
                }
            }
        }
        println!("{line}");
        println!(
            "CRITERION_JSON {{\"group\":\"{group}\",\"bench\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{lo:.1},\"max_ns\":{hi:.1}{thr_json}}}"
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(50));
        g.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        g.finish();
        assert!(count > 0);
    }
}
