//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly and a panicking holder does not
//! poison the lock for everyone else (poison errors are swallowed by
//! taking the inner guard). Only the surface the workspace uses is
//! provided: `Mutex`, `MutexGuard`, `Condvar` with `wait` / `wait_for` /
//! `notify_one` / `notify_all`, and `RwLock`.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Poison-free mutex with `parking_lot`'s `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`]. Wraps the std guard in an `Option` so a condvar
/// wait can temporarily take ownership of the underlying guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condvar wait (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable with `parking_lot`'s in-place `wait(&mut guard)`.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Poison-free reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn no_poison_on_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still lockable
    }
}
