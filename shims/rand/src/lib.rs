//! Offline stand-in for `rand`.
//!
//! The build environment has no crates.io access, so the workspace ships
//! the tiny subset of the `rand` 0.8 API it actually uses: a seedable
//! deterministic generator (`StdRng`), integer range sampling, and a
//! Bernoulli draw. The generator is xoshiro256++ seeded via splitmix64 —
//! not the upstream ChaCha12 `StdRng`, but every consumer in this
//! workspace only requires *determinism per seed*, never a specific
//! stream. All simulator results remain bit-reproducible for a seed.

use std::ops::RangeInclusive;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from an inclusive integer range.
    fn gen_range<T: UniformSample>(&mut self, range: RangeInclusive<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit mantissa draw, the standard open-interval construction.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

/// Types drawable uniformly from an inclusive range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: RangeInclusive<Self>) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: RangeInclusive<Self>) -> Self {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width range: any draw is uniform.
                    return rng.next_u64() as $t;
                }
                let span = span as u64;
                // Rejection sampling to remove modulo bias.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let x = rng.next_u64();
                    if x <= zone {
                        return lo.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = r.gen_range(0u64..=3);
            assert!(x <= 3);
            saw_lo |= x == 0;
            saw_hi |= x == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
