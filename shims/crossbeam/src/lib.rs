//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s bounded MPMC channel with the same
//! disconnect semantics the live pipeline relies on:
//!
//! * `send` blocks while the queue is full and fails only when every
//!   receiver is gone (returning the rejected value);
//! * `recv` blocks while the queue is empty and fails only when every
//!   sender is gone *and* the queue has drained;
//! * `Receiver::iter` yields until disconnection, like crossbeam's.
//!
//! Built on `Mutex` + two `Condvar`s rather than a lock-free ring: the
//! pipeline moves block *descriptors* (tens of bytes) at block-transfer
//! granularity, so channel overhead is nowhere near the hot path.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the rejected value like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub struct Sender<T>(Arc<Shared<T>>);
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create a bounded MPMC channel of capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Fails only when every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .0
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives. Fails only when the queue is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocking batch receive: wait until at least one value is
        /// available (or the channel disconnects and drains), then move
        /// up to `max` queued values into `out` under a single lock
        /// acquisition. Returns how many were appended. The batch form is
        /// what keeps a multi-stage pipeline's per-item cost flat: one
        /// wakeup and one lock round-trip amortize over the whole drain.
        pub fn recv_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
            let max = max.max(1);
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !inner.queue.is_empty() {
                    let n = max.min(inner.queue.len());
                    out.extend(inner.queue.drain(..n));
                    drop(inner);
                    // Senders may have been blocked on a full queue; a
                    // batch drain can free many slots at once.
                    self.0.not_full.notify_all();
                    return Ok(n);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// [`recv_batch`](Receiver::recv_batch) with a deadline: wait at
        /// most `timeout` for the first value. `Err(Empty)` on timeout,
        /// `Err(Disconnected)` when drained with no senders left. The
        /// timed form is what a coalescing stage needs — "drain whatever
        /// arrives within the flush window, then move on".
        pub fn recv_batch_timeout(
            &self,
            out: &mut Vec<T>,
            max: usize,
            timeout: std::time::Duration,
        ) -> Result<usize, TryRecvError> {
            let max = max.max(1);
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if !inner.queue.is_empty() {
                    let n = max.min(inner.queue.len());
                    out.extend(inner.queue.drain(..n));
                    drop(inner);
                    self.0.not_full.notify_all();
                    return Ok(n);
                }
                if inner.senders == 0 {
                    return Err(TryRecvError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(TryRecvError::Empty);
                }
                let (guard, _) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                inner = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterate until the channel disconnects and drains.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// A receiver that is never ready and never disconnects (crossbeam's
    /// `never()`): backed by a channel whose sender is intentionally
    /// leaked so `recv` blocks forever and `select!` skips it.
    pub fn never<T>() -> Receiver<T> {
        let (tx, rx) = bounded::<T>(1);
        std::mem::forget(tx);
        rx
    }

    /// Outcome of a two-way [`select!`]: which arm fired, with the value
    /// `recv` would have produced. Not public API parity — support type
    /// for the macro expansion.
    #[doc(hidden)]
    pub enum SelectedTwo<A, B> {
        First(Result<A, RecvError>),
        Second(Result<B, RecvError>),
    }

    #[doc(hidden)]
    pub fn poll_two<A, B>(a: &Receiver<A>, b: &Receiver<B>) -> SelectedTwo<A, B> {
        // Polling select. crossbeam proper parks on an event list; for the
        // shim a short-sleep poll is adequate (the pipeline's select loop
        // handles control messages, not per-byte work). The caller must be
        // the only consumer of both receivers, which holds for every use
        // in this workspace.
        loop {
            match a.try_recv() {
                Ok(v) => return SelectedTwo::First(Ok(v)),
                Err(TryRecvError::Disconnected) => return SelectedTwo::First(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            match b.try_recv() {
                Ok(v) => return SelectedTwo::Second(Ok(v)),
                Err(TryRecvError::Disconnected) => return SelectedTwo::Second(Err(RecvError)),
                Err(TryRecvError::Empty) => {}
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Two-arm `select!` over `recv` operations (the only shape this
    /// workspace uses). Arm bodies run *outside* the polling loop, so
    /// `continue` / `break` inside them bind to the caller's loops, as
    /// with crossbeam's macro.
    #[macro_export]
    macro_rules! select {
        (recv($rx1:expr) -> $p1:pat => $b1:block recv($rx2:expr) -> $p2:pat => $b2:block) => {
            match $crate::channel::poll_two(&$rx1, &$rx2) {
                $crate::channel::SelectedTwo::First(__res) => {
                    let $p1 = __res;
                    $b1
                }
                $crate::channel::SelectedTwo::Second(__res) => {
                    let $p2 = __res;
                    $b2
                }
            }
        };
    }

    // `crossbeam::channel::select!` path form.
    pub use crate::select;

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            (0..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn recv_fails_after_last_sender_drops_and_drain() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = bounded(8);
        let t = std::thread::spawn(move || {
            for i in 0..20 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn recv_batch_drains_up_to_max_then_blocks() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 3), Ok(3));
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(rx.recv_batch(&mut out, 16), Ok(2));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        drop(tx);
        assert_eq!(rx.recv_batch(&mut out, 16), Err(RecvError));
    }

    #[test]
    fn recv_batch_wakes_blocked_senders() {
        let (tx, rx) = bounded(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the drain frees a slot
            tx.send(3).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        let mut out = Vec::new();
        rx.recv_batch(&mut out, 2).unwrap();
        t.join().unwrap();
        rx.recv_batch(&mut out, 2).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_batch_timeout_times_out_then_drains() {
        let (tx, rx) = bounded(8);
        let mut out: Vec<u32> = Vec::new();
        assert_eq!(
            rx.recv_batch_timeout(&mut out, 8, Duration::from_millis(5)),
            Err(TryRecvError::Empty)
        );
        tx.send(9).unwrap();
        assert_eq!(
            rx.recv_batch_timeout(&mut out, 8, Duration::from_millis(5)),
            Ok(1)
        );
        assert_eq!(out, vec![9]);
        drop(tx);
        assert_eq!(
            rx.recv_batch_timeout(&mut out, 8, Duration::from_millis(5)),
            Err(TryRecvError::Disconnected)
        );
    }

    #[test]
    fn mpmc_conserves_items() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        producers.into_iter().for_each(|h| h.join().unwrap());
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
