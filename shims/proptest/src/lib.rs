//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's property tests use, with two deliberate differences
//! from upstream:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in the assertion message instead of minimizing them;
//! * **fixed deterministic seeding** — each test's RNG is seeded from a
//!   hash of its name (override with `PROPTEST_SEED=<u64>` to explore a
//!   different corpus), so CI failures reproduce locally byte-for-byte.
//!
//! Supported: `any::<T>()` for the integer primitives and `bool`, integer
//! range strategies (`lo..hi`, `lo..=hi`), tuple strategies up to arity
//! 12, `Just`, `prop_oneof!`, `prop::collection::vec`, `.prop_map`,
//! `.prop_flat_map`, `.prop_shuffle`, `ProptestConfig { cases, timeout }`
//! and `prop_assert!` / `prop_assert_eq!`.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xoshiro256++ used by every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name (FNV-1a), or from `PROPTEST_SEED` when set.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse::<u64>().unwrap_or(0x0DEF_A017),
            Err(_) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        };
        TestRng::seed_from_u64(seed)
    }

    pub fn seed_from_u64(mut state: u64) -> TestRng {
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)` via rejection sampling (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Random permutation of a generated `Vec`.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Sized + Strategy<Value = Vec<T>>,
    {
        Shuffle { inner: self }
    }

    /// Type-erase the strategy (parity with upstream's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Object-safe, type-erased strategy.
pub struct BoxedStrategy<V> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Shuffle<S> {
    inner: S,
}

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.inner.generate(rng);
        // Fisher–Yates.
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// Weighted-uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>() and ranges
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (the `any::<T>()` entry point).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integers sampleable from range strategies.
pub trait RangeSample: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize);

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeSample> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(span + 1))
    }
}

// Tuple strategies up to arity 12.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `element`-generated values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Runner configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Per-case timeout in milliseconds. Accepted for source parity;
    /// this runner does not enforce it (no shrinking marathons exist).
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            timeout: 0,
        }
    }
}

/// Random choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion macros: panic (with the message) instead of upstream's
/// `Err(TestCaseError)` — there is no shrinking phase to feed.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...)` body
/// runs `config.cases` times with freshly generated inputs; failures
/// panic with the case number and generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@expand ($cfg) $($rest)*}
    };
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)+
                        $body
                    }));
                    if let Err(e) = result {
                        eprintln!(
                            concat!(
                                "proptest case {}/{} failed for ", stringify!($name), ":",
                                $("\n  ", stringify!($arg), " = {:?}",)+
                            ),
                            case + 1, config.cases, $(&$arg),+
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@expand ($crate::ProptestConfig::default()) $($rest)*}
    };
}

pub mod prelude {
    /// Upstream exposes the crate under the `prop` alias in its prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let a = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&a));
            let b = (5u64..=5).generate(&mut rng);
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::for_test("shuffle");
        let s = Just((0..50u32).collect::<Vec<_>>()).prop_shuffle();
        let mut v = s.generate(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::for_test("vecsize");
        let s = prop::collection::vec(any::<u8>(), 2..=4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_works(x in 1u32..100, flag in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn macro_with_config(v in prop::collection::vec(any::<u16>(), 0..8)) {
            prop_assert!(v.len() < 8);
        }
    }
}
