//! Real-thread stress tests for the middleware's shared data structures.
//!
//! The simulation models the middleware's thread pool in virtual time,
//! but the pool / reorder / credit structures are plain `Send` data that
//! a native multi-threaded runtime would share behind locks. These tests
//! hammer them from real OS threads (parking_lot mutexes, crossbeam
//! channels) and check the same conservation invariants the property
//! tests check sequentially.

use parking_lot::Mutex;
use rftp_core::wire::Credit;
use rftp_core::{CreditStock, PoolGeometry, ReorderBuffer, SinkPool, SourcePool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn source_pool_under_contention() {
    // 8 workers race through the full block lifecycle 2000 times each.
    let pool = Arc::new(Mutex::new(SourcePool::new(PoolGeometry::new(4096, 16))));
    let cycles = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let cycles = Arc::clone(&cycles);
            s.spawn(move || {
                let mut done = 0;
                while done < 2000 {
                    let block = {
                        let mut p = pool.lock();
                        p.get_free()
                    };
                    let Some(b) = block else {
                        std::thread::yield_now();
                        continue;
                    };
                    {
                        let mut p = pool.lock();
                        p.loaded(b).unwrap();
                        p.start_sending(b).unwrap();
                        p.posted(b).unwrap();
                    }
                    {
                        let mut p = pool.lock();
                        p.complete(b).unwrap();
                    }
                    cycles.fetch_add(1, Ordering::Relaxed);
                    done += 1;
                }
            });
        }
    });
    assert_eq!(cycles.load(Ordering::Relaxed), 16_000);
    let p = pool.lock();
    p.check_invariants();
    assert_eq!(p.free_count(), 16, "all blocks must return to the pool");
}

#[test]
fn sink_pool_grant_consume_pipeline() {
    // Granter thread advertises blocks; consumer threads mark them ready
    // and free them, via a crossbeam channel — the sink's actual shape.
    let pool = Arc::new(Mutex::new(SinkPool::new(PoolGeometry::new(4096, 32))));
    let (tx, rx) = crossbeam::channel::bounded::<u32>(64);
    let granted = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    const TOTAL: u64 = 20_000;

    std::thread::scope(|s| {
        {
            let pool = Arc::clone(&pool);
            let granted = Arc::clone(&granted);
            s.spawn(move || {
                let mut n = 0u64;
                while n < TOTAL {
                    let slot = {
                        let mut p = pool.lock();
                        p.grant()
                    };
                    match slot {
                        Some(b) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            tx.send(b).unwrap();
                            n += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                drop(tx);
            });
        }
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let rx = rx.clone();
            let consumed = Arc::clone(&consumed);
            s.spawn(move || {
                for b in rx.iter() {
                    let mut p = pool.lock();
                    p.ready(b).unwrap();
                    p.put_free(b).unwrap();
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(granted.load(Ordering::Relaxed), TOTAL);
    assert_eq!(consumed.load(Ordering::Relaxed), TOTAL);
    let p = pool.lock();
    p.check_invariants();
    assert_eq!(p.free_count(), 32);
}

#[test]
fn reorder_buffer_from_parallel_producers() {
    // N producer threads deliver disjoint sequence slices out of order
    // into one shared reorder buffer; the in-order output must be exact.
    const N: u32 = 8192;
    let buf = Arc::new(Mutex::new(ReorderBuffer::new()));
    let delivered = Arc::new(Mutex::new(Vec::with_capacity(N as usize)));
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let buf = Arc::clone(&buf);
            let delivered = Arc::clone(&delivered);
            s.spawn(move || {
                // Each thread owns seqs ≡ t (mod 8), pushed descending —
                // maximal disorder within its slice.
                let mut seqs: Vec<u32> = (0..N).filter(|x| x % 8 == t).collect();
                seqs.reverse();
                for seq in seqs {
                    let out = {
                        let mut b = buf.lock();
                        b.push(seq, seq)
                    };
                    if !out.is_empty() {
                        delivered.lock().extend(out.into_iter().map(|(_, v)| v));
                    }
                }
            });
        }
    });
    let d = delivered.lock();
    assert_eq!(d.len(), N as usize);
    assert!(
        d.windows(2).all(|w| w[0] + 1 == w[1]),
        "in-order delivery violated"
    );
    assert!(buf.lock().is_drained());
}

#[test]
fn credit_stock_producer_consumer() {
    // A granter deposits batches while a dispatcher drains; totals must
    // balance and the request debounce must never double-fire.
    let stock = Arc::new(Mutex::new(CreditStock::new()));
    const BATCHES: u32 = 5_000;
    let taken = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        {
            let stock = Arc::clone(&stock);
            s.spawn(move || {
                for i in 0..BATCHES {
                    let mut st = stock.lock();
                    st.deposit((0..2).map(|k| Credit {
                        slot: i * 2 + k,
                        rkey: 7,
                        offset: 0,
                        len: 4096,
                    }));
                }
            });
        }
        for _ in 0..3 {
            let stock = Arc::clone(&stock);
            let taken = Arc::clone(&taken);
            s.spawn(move || loop {
                let got = {
                    let mut st = stock.lock();
                    st.take()
                };
                if got.is_some() {
                    if taken.fetch_add(1, Ordering::Relaxed) + 1 == BATCHES as u64 * 2 {
                        break;
                    }
                } else if taken.load(Ordering::Relaxed) >= BATCHES as u64 * 2 {
                    break;
                } else {
                    std::thread::yield_now();
                }
            });
        }
    });
    let st = stock.lock();
    assert_eq!(st.received_total, BATCHES as u64 * 2);
    assert_eq!(st.consumed_total, BATCHES as u64 * 2);
    assert!(st.is_empty());
}

/// Deterministic simulations are independent across threads: the same
/// experiment run on 8 threads concurrently produces identical results
/// (no hidden global state in the simulator).
#[test]
fn parallel_simulations_are_independent_and_identical() {
    use rftp_core::{run_transfer, SourceConfig};
    use rftp_netsim::testbed;

    let run = || {
        let mut cfg = SourceConfig::new(1 << 20, 4, 256 << 20);
        cfg.pool_blocks = 32;
        let r = run_transfer(&testbed::roce_lan(), cfg);
        (r.elapsed, r.source.ctrl_msgs_sent, r.sink.credits_granted)
    };
    let baseline = run();
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8).map(|_| s.spawn(run)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        assert_eq!(r, baseline);
    }
}
