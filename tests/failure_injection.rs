//! Failure injection: the unhappy paths the protocol must survive (or
//! fail loudly on), exercised end-to-end.

use rftp_core::{build_experiment, ConsumeMode, SinkConfig, SourceConfig, SourceEngine};
use rftp_ioengine::{run_job, JobConfig, Semantics};
use rftp_netsim::time::{SimDur, SimTime};
use rftp_netsim::{testbed, Bandwidth};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Negotiation rejection: a block size beyond the sink's memory policy
/// fails the session cleanly (SessionReject), not with a hang.
#[test]
fn session_reject_fails_cleanly_and_fast() {
    let tb = testbed::ani_wan();
    let cfg = SourceConfig::new(512 * MB, 1, GB);
    let snk = SinkConfig {
        max_block_size: 16 * MB,
        ..SinkConfig::default()
    };
    let mut e = build_experiment(&tb, cfg, snk);
    let src = e.src;
    e.sim.run_until(SimTime::ZERO + SimDur::from_secs(5), |w| {
        let s: &SourceEngine = w.app(src);
        s.is_finished()
    });
    let s: &SourceEngine = e.sim.world().app(src);
    let failure = s.failure.clone().expect("must fail");
    assert!(failure.contains("rejected"));
    // The rejection round-trips in ~1 RTT, far under a second.
    assert!(e.sim.now() < SimTime::ZERO + SimDur::from_millis(200));
}

/// Channel-count rejection uses its own reason code.
#[test]
fn too_many_channels_rejected() {
    let tb = testbed::roce_lan();
    let cfg = SourceConfig::new(MB, 16, GB);
    let snk = SinkConfig {
        max_channels: 4,
        ..SinkConfig::default()
    };
    let mut e = build_experiment(&tb, cfg, snk);
    let src = e.src;
    e.sim.run_until(SimTime::ZERO + SimDur::from_secs(5), |w| {
        let s: &SourceEngine = w.app(src);
        s.is_finished()
    });
    let s: &SourceEngine = e.sim.world().app(src);
    assert!(s.failure.as_deref().unwrap_or("").contains("reason 2"));
}

/// RNR retry exhaustion kills the queue pair with the right status and
/// flushes everything behind the failed work request (verbs semantics).
#[test]
fn rnr_exhaustion_is_fatal_and_flushes() {
    use rftp_fabric::{
        build_sim, two_host_fabric, Api, Application, Backing, Cqe, MrSlice, QpId, QpOptions,
        WcStatus, WorkRequest, WrOp,
    };
    let tb = testbed::roce_lan();
    let (mut core, a, b) = two_host_fabric(&tb);
    let cq_a = core.hosts[a.index()].create_cq(rftp_netsim::ThreadId(0));
    let cq_b = core.hosts[b.index()].create_cq(rftp_netsim::ThreadId(0));
    let opts = QpOptions {
        rnr_retry: 1,
        ..QpOptions::default()
    };
    let qa = core.create_qp(a, opts, cq_a, cq_a);
    let qb = core.create_qp(b, opts, cq_b, cq_b);
    core.connect(qa, qb).unwrap();
    let (mr, _) = core.hosts[a.index()].register_mr(Backing::zeroed(1024));

    struct Sender {
        qp: QpId,
        mr: rftp_fabric::MrId,
        statuses: Vec<WcStatus>,
    }
    impl Application for Sender {
        fn on_start(&mut self, api: &mut Api) {
            for i in 0..3 {
                api.post_send(
                    self.qp,
                    WorkRequest::signaled(
                        i,
                        WrOp::Send {
                            local: MrSlice::new(self.mr, 0, 1024),
                            imm: None,
                        },
                    ),
                )
                .unwrap();
            }
        }
        fn on_cqe(&mut self, cqe: &Cqe, _api: &mut Api) {
            self.statuses.push(cqe.status);
        }
    }
    struct NoRecv;
    impl Application for NoRecv {
        fn on_cqe(&mut self, _c: &Cqe, _a: &mut Api) {}
    }
    let mut sim = build_sim(
        core,
        vec![
            Some(Box::new(Sender {
                qp: qa,
                mr,
                statuses: vec![],
            })),
            Some(Box::new(NoRecv)),
        ],
    );
    sim.run(SimTime::ZERO + SimDur::from_secs(30));
    let s: &Sender = sim.world().app(a);
    assert_eq!(s.statuses.len(), 3, "all three WRs must complete");
    assert_eq!(s.statuses[0], WcStatus::RnrRetryExceeded);
    assert!(s.statuses[1..].iter().all(|st| *st == WcStatus::WrFlushed));
}

/// A slow disk at the sink backpressures the source through the credit
/// system instead of overrunning memory: goodput converges to the disk
/// rate and the sink pool never over-allocates.
#[test]
fn slow_disk_backpressure_caps_at_device_rate() {
    let tb = testbed::roce_lan(); // 40G network, 2G disk
    let cfg = SourceConfig::new(4 * MB, 4, 2 * GB).with_pool(32);
    let snk = SinkConfig {
        pool_blocks: 32,
        ctrl_ring_slots: cfg.ctrl_ring_slots,
        consume: ConsumeMode::Disk {
            rate: Bandwidth::from_gbps(2),
            direct_io: true,
        },
        ..SinkConfig::default()
    };
    let r = build_experiment(&tb, cfg, snk).run(SimDur::from_secs(36_000));
    assert!(
        r.goodput_gbps < 2.2,
        "transfer must track the 2 Gbps disk: {:.2}",
        r.goodput_gbps
    );
    assert!(
        r.goodput_gbps > 1.8,
        "but not collapse: {:.2}",
        r.goodput_gbps
    );
    // The source spent nearly the whole run credit-starved — that IS the
    // backpressure signal propagating.
    assert!(r.source.credit_starved.as_secs_f64() > 0.5 * r.elapsed.as_secs_f64());
}

/// A UD-based mover sheds datagrams when the receiver stops posting:
/// data loss is silent, which is exactly why the protocol uses RC.
#[test]
fn ud_sheds_data_when_receiver_lags() {
    let tb = testbed::roce_lan();
    let mut cfg = JobConfig::new(Semantics::UdSend, 8 << 10, 64, 256 * MB);
    cfg.target_slots = Some(8);
    cfg.target_repost_delay = Some(SimDur::from_micros(50));
    let r = run_job(&tb, &cfg);
    assert!(r.drops > 0, "an overwhelmed UD receiver must drop");
    assert!(r.delivered_bytes < r.bytes_moved);
}

/// The RC equivalent of the same overload never loses data — it stalls.
#[test]
fn rc_stalls_instead_of_dropping() {
    let tb = testbed::roce_lan();
    let mut cfg = JobConfig::new(Semantics::SendRecv, 8 << 10, 64, 64 * MB);
    cfg.target_slots = Some(8);
    cfg.target_repost_delay = Some(SimDur::from_micros(50));
    let r = run_job(&tb, &cfg);
    assert_eq!(r.drops, 0);
    assert_eq!(r.delivered_bytes, r.bytes_moved);
    assert!(r.rnr_naks > 0, "the stall shows up as RNR back-off");
}
