//! The evaluation section's headline claims (Figs. 8–11), asserted as
//! ordering relations — "who wins, by roughly what factor" — on the same
//! simulated testbeds the figure harnesses use.

use rftp_baselines::{run_gridftp, GridFtpConfig};
use rftp_core::{build_experiment, ConsumeMode, SinkConfig, SourceConfig};
use rftp_netsim::testbed::{self, Testbed};
use rftp_netsim::time::SimDur;
use rftp_netsim::Bandwidth;

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

fn rftp(tb: &Testbed, block: u64, streams: u16, bytes: u64) -> rftp_core::TransferReport {
    let want = (4 * tb.bdp_bytes() / block).clamp(16, 4096) as u32;
    let cfg = SourceConfig::new(block, streams, bytes).with_pool(want);
    let snk = SinkConfig {
        pool_blocks: want,
        ctrl_ring_slots: cfg.ctrl_ring_slots,
        ..SinkConfig::default()
    };
    build_experiment(tb, cfg, snk).run(SimDur::from_secs(36_000))
}

/// Fig. 8: "RFTP saturates the bare-metal bandwidth with different block
/// sizes while CPU utilization declines as the block size increases."
#[test]
fn fig8_rftp_saturates_roce_lan_across_block_sizes() {
    let tb = testbed::roce_lan();
    let mut prev_cpu = f64::INFINITY;
    for block in [512 * MB / 1024, 4 * MB, 16 * MB] {
        let r = rftp(&tb, block, 4, 8 * GB);
        assert!(
            r.goodput_gbps > 0.95 * 40.0,
            "block {block}: {:.2} Gbps",
            r.goodput_gbps
        );
        assert!(
            r.src_cpu_pct < prev_cpu * 1.05,
            "CPU should not grow with block size"
        );
        prev_cpu = r.src_cpu_pct;
    }
}

/// Fig. 8: "A single GridFTP runtime process cannot achieve bare-metal
/// bandwidth, even with multiple streams or large block sizes" and
/// "both the GridFTP client and server always consume more than 100% of
/// the CPU resource".
#[test]
fn fig8_gridftp_is_core_bound_on_the_lan() {
    let tb = testbed::roce_lan();
    for streams in [1, 8] {
        for block in [2 * MB, 16 * MB] {
            let g = run_gridftp(&tb, &GridFtpConfig::tuned(&tb, streams, block, 4 * GB));
            assert!(
                g.bandwidth_gbps < 0.6 * 40.0,
                "GridFTP {streams}x{block}: {:.2} Gbps should be far from line rate",
                g.bandwidth_gbps
            );
            assert!(
                g.client_cpu_pct > 100.0 && g.server_cpu_pct > 95.0,
                "GridFTP {streams}x{block}: cli {:.0}% srv {:.0}% should be ~>100%",
                g.client_cpu_pct,
                g.server_cpu_pct
            );
        }
    }
}

/// Fig. 8/9 combined: RFTP beats GridFTP everywhere on the LANs, with
/// less total CPU per bit moved.
#[test]
fn rftp_beats_gridftp_on_both_lans() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        for streams in [1u16, 8] {
            let r = rftp(&tb, 4 * MB, streams, 4 * GB);
            let g = run_gridftp(
                &tb,
                &GridFtpConfig::tuned(&tb, streams as u32, 4 * MB, 4 * GB),
            );
            assert!(
                r.goodput_gbps > 1.3 * g.bandwidth_gbps,
                "{} {streams}s: RFTP {:.2} vs GridFTP {:.2}",
                tb.name,
                r.goodput_gbps,
                g.bandwidth_gbps
            );
            let rftp_cpu_per_gbps = (r.src_cpu_pct + r.dst_cpu_pct) / r.goodput_gbps;
            let g_cpu_per_gbps = (g.client_cpu_pct + g.server_cpu_pct) / g.bandwidth_gbps;
            assert!(
                rftp_cpu_per_gbps < 0.5 * g_cpu_per_gbps,
                "{}: RFTP CPU/Gbps {:.1} vs GridFTP {:.1}",
                tb.name,
                rftp_cpu_per_gbps,
                g_cpu_per_gbps
            );
        }
    }
}

/// Fig. 9: on InfiniBand, "the bare-metal bandwidth is almost fully
/// utilized when block size is sufficiently large, for example, 512K
/// bytes" — the ceiling being the PCIe 2.0 x8 adapter.
#[test]
fn fig9_rftp_hits_the_pcie_ceiling() {
    let tb = testbed::ib_lan();
    let r = rftp(&tb, 512 * 1024, 8, 8 * GB);
    assert!(
        r.goodput_gbps > 24.5 && r.goodput_gbps <= 25.6,
        "{:.2} Gbps",
        r.goodput_gbps
    );
}

/// Fig. 10: on the WAN, "in most cases, RFTP again outperforms GridFTP
/// in getting full bare-metal bandwidth with lower CPU utilization."
#[test]
fn fig10_rftp_outperforms_gridftp_on_the_wan() {
    let tb = testbed::ani_wan();
    let mut rftp_wins = 0;
    let mut cases = 0;
    for streams in [1u16, 8] {
        for block in [2 * MB, 16 * MB] {
            let r = rftp(&tb, block, streams, 8 * GB);
            let g = run_gridftp(
                &tb,
                &GridFtpConfig::tuned(&tb, streams as u32, block, 8 * GB),
            );
            cases += 1;
            if r.goodput_gbps > g.bandwidth_gbps {
                rftp_wins += 1;
            }
            // RFTP always near line rate with much lower CPU. The paper
            // quantifies "lower" loosely; the worst modelled case (one
            // stream, 2 MB blocks, where RFTP's fixed polling floor is
            // proportionally largest) lands at ~0.61 of GridFTP's client
            // CPU, so gate at 2/3 rather than a knife-edge 0.6.
            assert!(
                r.goodput_gbps > 9.0,
                "RFTP {streams}s/{block}: {:.2}",
                r.goodput_gbps
            );
            assert!(
                r.src_cpu_pct < 0.67 * g.client_cpu_pct,
                "RFTP CPU {:.0}% vs GridFTP {:.0}%",
                r.src_cpu_pct,
                g.client_cpu_pct
            );
        }
    }
    assert!(
        rftp_wins * 2 >= cases * 2 - 1,
        "RFTP should win (almost) all WAN cases: {rftp_wins}/{cases}"
    );
    // Single-stream GridFTP specifically suffers on the lossy long path.
    let g1 = run_gridftp(&tb, &GridFtpConfig::tuned(&tb, 1, 4 * MB, 8 * GB));
    let r1 = rftp(&tb, 4 * MB, 1, 8 * GB);
    assert!(r1.goodput_gbps > 1.2 * g1.bandwidth_gbps);
}

/// Fig. 11: "RFTP maintains the same bandwidth performance between
/// memory and disk tests, with slightly higher CPU usage at the RFTP
/// server."
#[test]
fn fig11_disk_matches_memory_with_slightly_higher_cpu() {
    let tb = testbed::ani_wan();
    let block = 4 * MB;
    let want = (4 * tb.bdp_bytes() / block).clamp(16, 4096) as u32;
    let run = |consume: ConsumeMode| {
        let cfg = SourceConfig::new(block, 4, 8 * GB).with_pool(want);
        let snk = SinkConfig {
            pool_blocks: want,
            ctrl_ring_slots: cfg.ctrl_ring_slots,
            consume,
            ..SinkConfig::default()
        };
        build_experiment(&tb, cfg, snk).run(SimDur::from_secs(36_000))
    };
    let mem = run(ConsumeMode::Null);
    let disk = run(ConsumeMode::Disk {
        rate: Bandwidth::from_gbps(16),
        direct_io: true,
    });
    assert!(
        (mem.goodput_gbps - disk.goodput_gbps).abs() / mem.goodput_gbps < 0.02,
        "mem {:.2} vs disk {:.2}",
        mem.goodput_gbps,
        disk.goodput_gbps
    );
    assert!(
        disk.dst_cpu_pct > mem.dst_cpu_pct && disk.dst_cpu_pct < 3.0 * mem.dst_cpu_pct.max(1.0),
        "disk CPU {:.1}% should be slightly above mem {:.1}%",
        disk.dst_cpu_pct,
        mem.dst_cpu_pct
    );
}

/// Fig. 11 context: buffered POSIX writes (GridFTP's only option — "to
/// the best of our knowledge, GridFTP has not yet integrated direct
/// I/O") cost the server measurably more CPU than direct I/O.
#[test]
fn direct_io_saves_server_cpu() {
    let tb = testbed::ani_wan();
    let block = 4 * MB;
    let want = (4 * tb.bdp_bytes() / block).clamp(16, 4096) as u32;
    let run = |direct_io: bool| {
        let cfg = SourceConfig::new(block, 4, 4 * GB).with_pool(want);
        let snk = SinkConfig {
            pool_blocks: want,
            ctrl_ring_slots: cfg.ctrl_ring_slots,
            consume: ConsumeMode::Disk {
                rate: Bandwidth::from_gbps(16),
                direct_io,
            },
            ..SinkConfig::default()
        };
        build_experiment(&tb, cfg, snk).run(SimDur::from_secs(36_000))
    };
    let direct = run(true);
    let buffered = run(false);
    assert!(
        buffered.dst_cpu_pct > 1.5 * direct.dst_cpu_pct,
        "buffered {:.1}% vs direct {:.1}%",
        buffered.dst_cpu_pct,
        direct.dst_cpu_pct
    );
}
