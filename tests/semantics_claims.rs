//! §III.B's enumerated observations, asserted as executable claims.
//!
//! The paper lists five findings from the fio-based semantics study that
//! justify the protocol's hybrid design (SEND/RECV control + RDMA WRITE
//! bulk). Each test here is one finding, checked on the simulated
//! testbeds the figures used.

use rftp_ioengine::{run_job, JobConfig, Semantics};
use rftp_netsim::testbed;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn job(tb: &rftp_netsim::Testbed, sem: Semantics, bs: u64, depth: u32) -> rftp_ioengine::JobReport {
    run_job(tb, &JobConfig::new(sem, bs, depth, 512 * MB))
}

/// Finding 1: "RDMA WRITE and SEND/RECEIVE perform better than RDMA
/// READ" (at high I/O depth).
#[test]
fn write_and_send_beat_read() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        for bs in [16 * KB, 64 * KB] {
            let w = job(&tb, Semantics::Write, bs, 64);
            let r = job(&tb, Semantics::Read, bs, 64);
            let s = job(&tb, Semantics::SendRecv, bs, 64);
            assert!(
                w.bandwidth_gbps > r.bandwidth_gbps && s.bandwidth_gbps > r.bandwidth_gbps,
                "{} @{bs}: W {:.1} / S {:.1} should beat R {:.1}",
                tb.name,
                w.bandwidth_gbps,
                s.bandwidth_gbps,
                r.bandwidth_gbps
            );
        }
    }
}

/// Finding 2: "all test cases set block size in the range from 16KB to
/// 128KB to achieve the best bandwidth" — i.e. by 16–128 KB the curve
/// has reached (near) peak; 4 KB has not.
#[test]
fn sweet_spot_starts_by_128k() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        let tiny = job(&tb, Semantics::Write, 4 * KB, 64);
        let sweet = job(&tb, Semantics::Write, 128 * KB, 64);
        let peak = job(&tb, Semantics::Write, 4 * MB, 64);
        assert!(
            sweet.bandwidth_gbps > 0.97 * peak.bandwidth_gbps,
            "{}: 128K ({:.1}) should be within 3% of peak ({:.1})",
            tb.name,
            sweet.bandwidth_gbps,
            peak.bandwidth_gbps
        );
        assert!(
            tiny.bandwidth_gbps < 0.8 * peak.bandwidth_gbps,
            "{}: 4K ({:.1}) should be far from peak ({:.1})",
            tb.name,
            tiny.bandwidth_gbps,
            peak.bandwidth_gbps
        );
    }
}

/// Finding 3: "performance saturates when the block size is bigger than
/// 128KB".
#[test]
fn saturation_beyond_128k() {
    let tb = testbed::roce_lan();
    let base = job(&tb, Semantics::Write, 128 * KB, 64).bandwidth_gbps;
    for bs in [512 * KB, 2 * MB, 8 * MB] {
        let b = job(&tb, Semantics::Write, bs, 64).bandwidth_gbps;
        assert!(
            (b - base).abs() / base < 0.03,
            "block {bs}: {b:.2} vs 128K {base:.2} — should be flat"
        );
    }
}

/// Finding 4: "CPU usage decreases when the block size increases because
/// of fewer interrupts".
#[test]
fn cpu_decreases_with_block_size() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        let mut prev = f64::INFINITY;
        for bs in [16 * KB, 128 * KB, MB, 8 * MB] {
            let r = job(&tb, Semantics::Write, bs, 64);
            assert!(
                r.total_cpu_pct() < prev,
                "{} @{bs}: CPU {:.1}% should fall below {prev:.1}%",
                tb.name,
                r.total_cpu_pct()
            );
            prev = r.total_cpu_pct();
        }
    }
}

/// Finding 5: "during their peak performance, the CPU usage of
/// SEND/RECEIVE is higher than that of RDMA WRITE" — the sink processes
/// events one-sided transfers never raise.
#[test]
fn send_recv_cpu_exceeds_write_at_peak() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        for bs in [128 * KB, MB] {
            let w = job(&tb, Semantics::Write, bs, 64);
            let s = job(&tb, Semantics::SendRecv, bs, 64);
            assert!(
                s.total_cpu_pct() > 1.5 * w.total_cpu_pct(),
                "{} @{bs}: SEND/RECV {:.1}% vs WRITE {:.1}%",
                tb.name,
                s.total_cpu_pct(),
                w.total_cpu_pct()
            );
            // And the extra cost is at the *target* specifically.
            assert!(s.target_cpu_pct > w.target_cpu_pct);
        }
    }
}

/// Low I/O depth: the three semantics perform similarly (Fig. 3a/4a),
/// and depth — not semantics — is what unlocks bandwidth.
#[test]
fn low_depth_performance_is_semantics_insensitive() {
    for tb in [testbed::roce_lan(), testbed::ib_lan()] {
        let w = job(&tb, Semantics::Write, 64 * KB, 1);
        let s = job(&tb, Semantics::SendRecv, 64 * KB, 1);
        assert!(
            (w.bandwidth_gbps - s.bandwidth_gbps).abs() / w.bandwidth_gbps < 0.1,
            "{}: depth-1 W {:.2} vs S {:.2}",
            tb.name,
            w.bandwidth_gbps,
            s.bandwidth_gbps
        );
        let deep = job(&tb, Semantics::Write, 64 * KB, 64);
        // Depth unlocks bandwidth (the IB LAN's tiny RTT still leaves a
        // ~1.8x gap at 64K; the RoCE LAN gap is >2x).
        assert!(
            deep.bandwidth_gbps > 1.5 * w.bandwidth_gbps,
            "{}: deep {:.2} vs shallow {:.2}",
            tb.name,
            deep.bandwidth_gbps,
            w.bandwidth_gbps
        );
    }
}

/// The WAN makes READ's pipeline limit fatal: with `max_rd_atomic` = 4
/// outstanding requests on a 49 ms path, READ collapses while WRITE
/// pipelines freely — the related-work result motivating WRITE.
#[test]
fn read_collapses_on_the_wan() {
    let tb = testbed::ani_wan();
    let w = job(&tb, Semantics::Write, MB, 64);
    let r = job(&tb, Semantics::Read, MB, 64);
    assert!(
        w.bandwidth_gbps > 5.0 * r.bandwidth_gbps,
        "WAN: WRITE {:.2} vs READ {:.2}",
        w.bandwidth_gbps,
        r.bandwidth_gbps
    );
}
