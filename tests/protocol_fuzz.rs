//! Protocol fuzz: random-but-legal configurations must always complete
//! byte-exactly. This is the whole-protocol analogue of the per-module
//! property tests — negotiation, credits, dispatch, reassembly, and
//! teardown under arbitrary parameter combinations.

use proptest::prelude::*;
use rftp_core::{build_experiment, CreditMode, NotifyMode, SinkConfig, SourceConfig};
use rftp_netsim::testbed;
use rftp_netsim::time::SimDur;

#[derive(Debug, Clone)]
struct FuzzCfg {
    block_size: u64,
    channels: u16,
    src_pool: u32,
    snk_pool: u32,
    initial_credits: u32,
    grant_per_completion: u32,
    credit_mode: CreditMode,
    notify: NotifyMode,
    loader_threads: u32,
    jobs: Vec<u64>,
    testbed: u8,
}

fn arb_cfg() -> impl Strategy<Value = FuzzCfg> {
    (
        // Block sizes from 4 KB to 4 MB (odd values included).
        4096u64..=4 << 20,
        1u16..=8,
        2u32..=32,
        2u32..=32,
        1u32..=8,
        0u32..=4,
        prop_oneof![Just(CreditMode::Proactive), Just(CreditMode::OnDemand)],
        prop_oneof![Just(NotifyMode::CtrlMsg), Just(NotifyMode::WriteImm)],
        1u32..=3,
        prop::collection::vec(1u64..=8 << 20, 1..=3),
        0u8..2, // LANs only: WAN runs take too long for a fuzz corpus
    )
        .prop_map(
            |(
                block_size,
                channels,
                src_pool,
                snk_pool,
                initial_credits,
                grant_per_completion,
                credit_mode,
                notify,
                loader_threads,
                jobs,
                testbed,
            )| FuzzCfg {
                block_size,
                channels,
                src_pool,
                snk_pool,
                initial_credits,
                grant_per_completion,
                credit_mode,
                notify,
                loader_threads,
                jobs,
                testbed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_legal_configuration_completes_byte_exactly(cfg in arb_cfg()) {
        let tb = if cfg.testbed == 0 {
            testbed::roce_lan()
        } else {
            testbed::ib_lan()
        };
        let total: u64 = cfg.jobs.iter().sum();
        let mut src = SourceConfig::new(cfg.block_size, cfg.channels, 0);
        src.jobs = cfg.jobs.clone();
        src.pool_blocks = cfg.src_pool;
        src.notify = cfg.notify;
        src.loader_threads = cfg.loader_threads;
        src.real_data = true;
        let snk = SinkConfig {
            pool_blocks: cfg.snk_pool,
            initial_credits: cfg.initial_credits,
            grant_per_completion: cfg.grant_per_completion,
            credit_mode: cfg.credit_mode,
            real_data: true,
            ..SinkConfig::default()
        };
        let r = build_experiment(&tb, src, snk).run(SimDur::from_secs(36_000));
        prop_assert_eq!(r.source.bytes_sent, total, "cfg: {:?}", cfg);
        prop_assert_eq!(r.sink.bytes_delivered, total);
        prop_assert_eq!(r.sink.checksum_failures, 0);
        prop_assert_eq!(r.source.sessions_completed, cfg.jobs.len() as u32);
        prop_assert_eq!(r.sink.sessions_completed, cfg.jobs.len() as u32);
    }
}
