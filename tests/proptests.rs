//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use rftp_core::wire::{Credit, CtrlMsg, PayloadHeader, CTRL_SLOT_LEN, MAX_CREDITS_PER_MSG};
use rftp_core::{CreditStock, PoolGeometry, ReorderBuffer, SinkPool, SourcePool};
use rftp_netsim::link::{Dir, Link};
use rftp_netsim::tcp::{CcAlgo, TcpConfig, TcpFlow};
use rftp_netsim::time::{Bandwidth, SimDur, SimTime};
use rftp_netsim::LatencyHistogram;

fn arb_credit() -> impl Strategy<Value = Credit> {
    (any::<u32>(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
        |(slot, rkey, offset, len)| Credit {
            slot,
            rkey,
            offset,
            len,
        },
    )
}

fn arb_ctrl_msg() -> impl Strategy<Value = CtrlMsg> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u16>(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(session, block_size, channels, total_bytes, notify_imm)| {
                CtrlMsg::SessionRequest {
                    session,
                    block_size,
                    channels,
                    total_bytes,
                    notify_imm,
                }
            }),
        (
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u32>(), 0..=32)
        )
            .prop_map(|(session, block_size, data_qpns)| CtrlMsg::SessionAccept {
                session,
                block_size,
                data_qpns,
            }),
        (any::<u32>(), any::<u8>())
            .prop_map(|(session, reason)| CtrlMsg::SessionReject { session, reason }),
        any::<u32>().prop_map(|session| CtrlMsg::ChannelsReady { session }),
        (
            any::<u32>(),
            prop::collection::vec(arb_credit(), 1..=MAX_CREDITS_PER_MSG)
        )
            .prop_map(|(session, credits)| CtrlMsg::Credits { session, credits }),
        any::<u32>().prop_map(|session| CtrlMsg::MrRequest { session }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(session, seq, slot, len)| CtrlMsg::BlockComplete {
                session,
                seq,
                slot,
                len,
            }
        ),
        (any::<u32>(), any::<u32>()).prop_map(|(session, total_blocks)| {
            CtrlMsg::DatasetComplete {
                session,
                total_blocks,
            }
        }),
    ]
}

proptest! {
    /// Every control message round-trips byte-exactly and fits its slot.
    #[test]
    fn ctrl_msg_roundtrip(msg in arb_ctrl_msg()) {
        let mut buf = [0u8; CTRL_SLOT_LEN];
        let n = msg.encode(&mut buf);
        prop_assert!(n <= CTRL_SLOT_LEN);
        let back = CtrlMsg::decode(&buf[..n]).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Payload headers round-trip for arbitrary field values.
    #[test]
    fn payload_header_roundtrip(session in any::<u32>(), seq in any::<u32>(),
                                offset in any::<u64>(), len in any::<u32>()) {
        let h = PayloadHeader { session, seq, offset, len };
        let mut buf = [0u8; 24];
        h.encode(&mut buf);
        prop_assert_eq!(PayloadHeader::decode(&buf).unwrap(), h);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn ctrl_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..CTRL_SLOT_LEN)) {
        let _ = CtrlMsg::decode(&bytes);
        let _ = PayloadHeader::decode(&bytes);
    }

    /// The reorder buffer delivers exactly 0..n in order for any arrival
    /// permutation.
    #[test]
    fn reorder_delivers_any_permutation(
        perm in (0u32..64)
            .prop_flat_map(|n| Just((0..n).collect::<Vec<u32>>()).prop_shuffle())
    ) {
        let n = perm.len() as u32;
        let mut r = ReorderBuffer::new();
        let mut delivered = Vec::new();
        for seq in perm {
            for (s, _) in r.push(seq, ()) {
                delivered.push(s);
            }
        }
        prop_assert_eq!(delivered.len() as u32, n);
        prop_assert!(delivered.windows(2).all(|w| w[0] + 1 == w[1]));
        prop_assert!(r.is_drained());
        if n > 0 {
            prop_assert_eq!(delivered[0], 0);
        }
    }

    /// Source pool conservation: across arbitrary operation sequences,
    /// every block is in exactly one state and the free list matches.
    #[test]
    fn source_pool_conserves_blocks(ops in prop::collection::vec(0u8..5, 0..200)) {
        let mut pool = SourcePool::new(PoolGeometry::new(4096, 8));
        let mut loading = Vec::new();
        let mut loaded = Vec::new();
        let mut waiting = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Some(b) = pool.get_free() {
                        loading.push(b);
                    }
                }
                1 => {
                    if let Some(b) = loading.pop() {
                        pool.loaded(b).unwrap();
                        loaded.push(b);
                    }
                }
                2 => {
                    if let Some(b) = loaded.pop() {
                        pool.start_sending(b).unwrap();
                        pool.posted(b).unwrap();
                        waiting.push(b);
                    }
                }
                3 => {
                    if let Some(b) = waiting.pop() {
                        pool.complete(b).unwrap();
                    }
                }
                _ => {
                    if let Some(b) = waiting.pop() {
                        pool.send_failed(b).unwrap();
                        loaded.push(b);
                    }
                }
            }
            pool.check_invariants();
            let accounted = pool.free_count() + loading.len() + loaded.len() + waiting.len();
            prop_assert_eq!(accounted, 8);
        }
    }

    /// Sink pool: grant/ready/consume/revoke sequences conserve blocks.
    #[test]
    fn sink_pool_conserves_blocks(ops in prop::collection::vec(0u8..4, 0..200)) {
        let mut pool = SinkPool::new(PoolGeometry::new(4096, 8));
        let mut waiting = Vec::new();
        let mut ready = Vec::new();
        for op in ops {
            match op {
                0 => {
                    if let Some(b) = pool.grant() {
                        waiting.push(b);
                    }
                }
                1 => {
                    if let Some(b) = waiting.pop() {
                        pool.ready(b).unwrap();
                        ready.push(b);
                    }
                }
                2 => {
                    if let Some(b) = ready.pop() {
                        pool.put_free(b).unwrap();
                    }
                }
                _ => {
                    if let Some(b) = waiting.pop() {
                        pool.revoke(b).unwrap();
                    }
                }
            }
            pool.check_invariants();
            prop_assert_eq!(pool.free_count() + waiting.len() + ready.len(), 8);
        }
    }

    /// Credit stock never loses or invents credits.
    #[test]
    fn credit_stock_conserves(deposits in prop::collection::vec(1u32..16, 0..50)) {
        let mut stock = CreditStock::new();
        let mut put = 0u64;
        let mut took = 0u64;
        for (i, n) in deposits.iter().enumerate() {
            stock.deposit((0..*n).map(|k| Credit {
                slot: k,
                rkey: 1,
                offset: 0,
                len: 4096,
            }));
            put += *n as u64;
            if i % 2 == 0 {
                while stock.take().is_some() {
                    took += 1;
                }
            }
        }
        took += std::iter::from_fn(|| stock.take()).count() as u64;
        prop_assert_eq!(put, took);
        prop_assert_eq!(stock.received_total, put);
        prop_assert_eq!(stock.consumed_total, took);
    }

    /// The fluid link never reorders messages in one direction and always
    /// carries exactly the configured rate when saturated.
    #[test]
    fn link_is_fifo_and_rate_exact(sizes in prop::collection::vec(1u64..1_000_000, 1..100)) {
        let mut l = Link::new(Bandwidth::from_gbps(10), SimDur::from_micros(100), 9000);
        let mut last_arrival = SimTime::ZERO;
        let mut total = 0u64;
        let mut last_txend = SimTime::ZERO;
        for &s in &sizes {
            let t = l.transmit(SimTime::ZERO, Dir::AtoB, s);
            prop_assert!(t.arrival >= last_arrival, "FIFO violated");
            last_arrival = t.arrival;
            last_txend = t.tx_end;
            total += s;
        }
        // Back-to-back serialization: total wire time equals bytes/rate
        // within per-message rounding (1 ns each).
        let expect_ns = total as f64 * 8.0 / 10.0; // ns at 10 Gbps
        let got = last_txend.nanos() as f64;
        prop_assert!((got - expect_ns).abs() <= sizes.len() as f64 + 1.0,
                     "rate drift: got {got}, expected {expect_ns}");
    }

    /// TCP invariant: inflight never exceeds min(cwnd, rwnd) + one MSS,
    /// across arbitrary send/ack/loss interleavings.
    #[test]
    fn tcp_window_invariant(events in prop::collection::vec(0u8..3, 1..300)) {
        let cfg = TcpConfig::new(9000, 1 << 20, CcAlgo::Cubic);
        let mut f = TcpFlow::new(cfg);
        let mut now = SimTime::ZERO;
        for e in events {
            now += SimDur::from_micros(100);
            match e {
                0 => {
                    let n = f.available_window().min(9000);
                    if n > 0 {
                        f.on_sent(n);
                        // Sends respect the window at send time (after a
                        // loss, inflight may legitimately exceed the
                        // shrunken window until acks drain it).
                        prop_assert!(f.inflight() <= f.window() + 9000);
                    }
                }
                1 => {
                    let n = f.inflight().min(9000);
                    if n > 0 {
                        f.on_ack(n, now, 0.001);
                    }
                }
                _ => {
                    f.on_loss(now);
                }
            }
            prop_assert!(f.window() <= 1 << 20);
            prop_assert!(f.cwnd_bytes() >= 9000, "cwnd collapsed below 1 MSS");
        }
    }

    /// Histogram quantiles are monotone and bounded by min/max.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(1u64..10_000_000, 1..200)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDur(v));
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut prev = SimDur(0);
        for &q in &qs {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantiles must be monotone");
            prop_assert!(x >= h.min() && x <= h.max());
            prev = x;
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!(h.min(), SimDur(lo));
        prop_assert_eq!(h.max(), SimDur(hi));
    }
}
