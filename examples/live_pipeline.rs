//! Live pipeline: run the RFTP middleware on REAL operating-system
//! threads — crossbeam-channel queue pairs, real memory placement, the
//! actual Fig. 7 wire encodings — and measure true wall-clock
//! throughput. This is the concurrency proof for the same data
//! structures the simulator exercises in virtual time.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! ```

use rftp_live::{run_live, LiveConfig};

fn main() {
    println!("RFTP middleware on native threads (pattern-verified end to end)\n");
    println!(
        "{:>9} {:>9} {:>8} {:>8} {:>12} {:>10} {:>8}",
        "block", "channels", "loaders", "blocks", "GB/s (real)", "ctrl msgs", "ooo"
    );
    for (block, channels, loaders) in [
        (256 << 10, 1, 1),
        (256 << 10, 4, 2),
        (1 << 20, 4, 2),
        (1 << 20, 8, 4),
        (4 << 20, 8, 4),
    ] {
        let mut cfg = LiveConfig::new(block, channels, 512 << 20);
        cfg.loaders = loaders;
        cfg.pool_blocks = 32;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0, "integrity violated");
        println!(
            "{:>8}K {:>9} {:>8} {:>8} {:>12.2} {:>10} {:>8}",
            block >> 10,
            channels,
            loaders,
            r.blocks,
            r.gbytes_per_sec,
            r.ctrl_msgs,
            r.ooo_blocks
        );
    }
    println!("\nEvery run moved 512 MB with zero checksum failures and strict in-order delivery.");
}
