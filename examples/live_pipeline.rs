//! Live pipeline: run the RFTP middleware on REAL operating-system
//! threads — crossbeam-channel queue pairs, real memory placement, the
//! actual Fig. 7 wire encodings — and measure true wall-clock
//! throughput. This is the concurrency proof for the same data
//! structures the simulator exercises in virtual time.
//!
//! ```text
//! cargo run --release --example live_pipeline
//! cargo run --release --example live_pipeline -- --fault drop=0.05
//! ```
//!
//! With `--fault drop=<p>` every dispatched payload is lost with
//! probability `p`; the retransmit watchdog recovers each loss and the
//! run still ends byte-verified (drops/retx columns show the damage).

use rftp_live::{run_live, LiveConfig};

fn parse_fault_drop() -> f64 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = match &args[..] {
        [] => return 0.0,
        [flag, spec] if flag == "--fault" => spec.clone(),
        [arg] if arg.starts_with("--fault=") => arg["--fault=".len()..].to_string(),
        _ => usage(&format!("unrecognized arguments: {}", args.join(" "))),
    };
    let Some(p) = spec.strip_prefix("drop=") else {
        usage(&format!("unknown fault spec: {spec}"));
    };
    match p.parse::<f64>() {
        Ok(p) if (0.0..1.0).contains(&p) => p,
        _ => usage(&format!("drop probability must be in [0, 1): {p}")),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: live_pipeline [--fault drop=<p>]");
    std::process::exit(2);
}

fn main() {
    let drop_p = parse_fault_drop();
    println!("RFTP middleware on native threads (pattern-verified end to end)\n");
    println!(
        "{:>9} {:>9} {:>8} {:>8} {:>12} {:>10} {:>8} {:>6} {:>6}",
        "block",
        "channels",
        "loaders",
        "blocks",
        "GB/s (real)",
        "ctrl msgs",
        "ooo",
        "drops",
        "retx"
    );
    for (block, channels, loaders) in [
        (256 << 10, 1, 1),
        (256 << 10, 4, 2),
        (1 << 20, 4, 2),
        (1 << 20, 8, 4),
        (4 << 20, 8, 4),
    ] {
        let mut cfg = LiveConfig::new(block, channels, 512 << 20);
        cfg.loaders = loaders;
        cfg.pool_blocks = 32;
        cfg.fault_drop_p = drop_p;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0, "integrity violated");
        println!(
            "{:>8}K {:>9} {:>8} {:>8} {:>12.2} {:>10} {:>8} {:>6} {:>6}",
            block >> 10,
            channels,
            loaders,
            r.blocks,
            r.gbytes_per_sec,
            r.ctrl_msgs,
            r.ooo_blocks,
            r.dropped_payloads,
            r.retransmits
        );
    }
    if drop_p > 0.0 {
        println!(
            "\nEvery run moved 512 MB with zero checksum failures despite {:.1}% payload loss.",
            drop_p * 100.0
        );
    } else {
        println!(
            "\nEvery run moved 512 MB with zero checksum failures and strict in-order delivery."
        );
    }
}
