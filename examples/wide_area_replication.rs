//! Wide-area replication: nightly copy of an experiment's output files
//! from ANL to NERSC over the simulated DOE ANI testbed (10 Gbps RoCE,
//! 49 ms RTT), landing on a RAID array with direct I/O — the paper's
//! Fig. 10/11 scenario as a downstream user would script it.
//!
//! ```text
//! cargo run --release --example wide_area_replication
//! ```
//!
//! Shows: multi-file job trains (sequential sessions reusing channels
//! and registered memory), disk sinks, and why stream count and block
//! size matter far less for RFTP than for TCP tools once the pools cover
//! the bandwidth-delay product.

use rftp::{disk, Client, DataSink, Server};
use rftp_netsim::testbed;

const GB: u64 = 1 << 30;

fn main() {
    let tb = testbed::ani_wan();
    println!(
        "replicating over {}: {} Gbps, RTT {} ms, BDP {:.1} MB\n",
        tb.name,
        tb.nic_gbps,
        tb.rtt_ms,
        tb.bdp_bytes() as f64 / 1e6
    );

    // The nightly batch: four output files of varying size.
    let files: [(&str, u64); 4] = [
        ("run-0421/events.h5", 8 * GB),
        ("run-0421/calib.h5", 2 * GB),
        ("run-0422/events.h5", 12 * GB),
        ("run-0422/summary.parquet", GB / 2),
    ];
    let total: u64 = files.iter().map(|(_, b)| *b).sum();

    for streams in [1u16, 8] {
        let mut client = Client::new()
            .block_size(4 << 20)
            .streams(streams)
            // Cover ~4x BDP so the credit loop (2 RTTs) never drains the
            // pipe: 64 blocks x 4 MB = 256 MB in flight.
            .pool_blocks(64);
        for (name, bytes) in files {
            client = client.push_job(name, bytes);
        }
        let server = Server::new()
            .pool_blocks(64)
            .sink(DataSink::Disk(disk::raid_array()));
        let r = client.transfer_to(server, &tb);
        println!(
            "{streams} stream(s): {} files, {} GB in {} -> {:.2} Gbps ({:.0}% of line rate), server CPU {:.0}%",
            files.len(),
            total >> 30,
            r.elapsed,
            r.goodput_gbps,
            r.goodput_gbps / 10.0 * 100.0,
            r.server_cpu_pct
        );
        assert_eq!(r.jobs_completed, files.len() as u32);
    }

    println!(
        "\nThe pipe stays full either way: RFTP's flow control, not TCP \
         congestion dynamics, governs the wide-area transfer."
    );
}
