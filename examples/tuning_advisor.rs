//! Tuning advisor: sweep block sizes and stream counts on a chosen
//! testbed and report the cheapest configuration that saturates the
//! path — the decision the paper's §V parameter studies inform.
//!
//! ```text
//! cargo run --release --example tuning_advisor [roce|ib|wan]
//! ```

use rftp::{Client, Server};
use rftp_netsim::testbed::{self, Testbed};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "wan".into());
    let tb: Testbed = match which.as_str() {
        "roce" => testbed::roce_lan(),
        "ib" => testbed::ib_lan(),
        "wan" => testbed::ani_wan(),
        other => {
            eprintln!("unknown testbed '{other}', expected roce|ib|wan");
            std::process::exit(2);
        }
    };
    println!(
        "tuning for {}: line rate {:.1} Gbps, BDP {:.1} MB\n",
        tb.name,
        tb.bare_metal.as_gbps(),
        tb.bdp_bytes() as f64 / 1e6
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12}",
        "block", "streams", "Gbps", "cli CPU%", "pool (MB)"
    );

    let line = tb.bare_metal.as_gbps();
    let mut best: Option<(u64, u16, f64, f64)> = None;
    for block in [256 * 1024, MB, 4 * MB, 16 * MB] {
        for streams in [1u16, 4] {
            // Pools must cover the ~2-RTT credit loop.
            let pool = ((4 * tb.bdp_bytes()) / block).clamp(16, 2048) as u32;
            let r = Client::new()
                .block_size(block)
                .streams(streams)
                .pool_blocks(pool)
                .push_job("probe", 4 * GB)
                .transfer_to(Server::new().pool_blocks(pool), &tb);
            println!(
                "{:>7}K {:>8} {:>10.2} {:>10.0} {:>12.0}",
                block / 1024,
                streams,
                r.goodput_gbps,
                r.client_cpu_pct,
                (pool as u64 * block) as f64 / 1e6
            );
            let saturates = r.goodput_gbps > 0.92 * line;
            let better = match best {
                None => saturates,
                Some((_, _, _, cpu)) => saturates && r.client_cpu_pct < cpu,
            };
            if better {
                best = Some((block, streams, r.goodput_gbps, r.client_cpu_pct));
            }
        }
    }

    match best {
        Some((block, streams, gbps, cpu)) => println!(
            "\nrecommendation: {} MB blocks, {} stream(s) -> {:.2} Gbps at {:.0}% CPU",
            block / MB,
            streams,
            gbps,
            cpu
        ),
        None => println!("\nno configuration saturated the path; grow the pools"),
    }
}
