//! Verified transfer: move pattern data with end-to-end integrity
//! checking and watch the protocol reassemble out-of-order blocks from
//! parallel channels.
//!
//! ```text
//! cargo run --release --example verified_transfer
//! ```
//!
//! Every block carries the Fig. 7(b) payload header (session, sequence,
//! offset, length); the sink validates headers and payload checksums as
//! blocks arrive over 8 parallel queue pairs, and delivers an in-order
//! stream to the consumer regardless of arrival order.

use rftp::{Client, DataSink, DataSource, Server};
use rftp_netsim::testbed;

fn main() {
    let tb = testbed::ib_lan();
    println!(
        "verified transfer over {} (bare-metal ceiling {:.1} Gbps)\n",
        tb.name,
        tb.bare_metal.as_gbps()
    );

    let r = Client::new()
        .block_size(512 << 10)
        .streams(8)
        .source(DataSource::Pattern) // real bytes, checksummable
        .pool_blocks(32)
        // The odd tail byte forces a short final block, which overtakes
        // its on-the-wire predecessors and exercises reassembly.
        .push_job("checked.dat", (512 << 20) + 1)
        .transfer_to(
            Server::new()
                .pool_blocks(32)
                .verify_payload(true)
                .sink(DataSink::Null),
            &tb,
        );

    println!("goodput:            {:.2} Gbps", r.goodput_gbps);
    println!("blocks delivered:   {}", r.detail.sink.blocks_delivered);
    println!("arrived out of order: {}", r.reordered_blocks);
    println!("max reorder depth:  {}", r.detail.sink.max_reorder_depth);
    println!("checksum failures:  {}", r.checksum_failures);

    assert_eq!(r.checksum_failures, 0, "payload integrity must hold");
    assert!(
        r.reordered_blocks > 0,
        "8 channels should produce out-of-order arrivals"
    );
    println!("\nEvery byte verified; reassembly delivered a strictly in-order stream.");
}
