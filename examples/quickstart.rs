//! Quickstart: move 4 GB between two simulated hosts with RFTP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the public API: build a client
//! with the paper's default protocol settings (RDMA WRITE bulk data,
//! proactive credits, control-message notifications), point it at a
//! null-sink server, and run it over the simulated 40 Gbps RoCE LAN.

use rftp::{Client, DataSink, Server};
use rftp_netsim::testbed;

fn main() {
    let tb = testbed::roce_lan();
    println!(
        "testbed: {} ({} Gbps NICs, RTT {} ms)",
        tb.name, tb.nic_gbps, tb.rtt_ms
    );

    let report = Client::new()
        .block_size(4 << 20) // 4 MB blocks
        .streams(4) // 4 parallel data channels
        .push_job("dataset.bin", 4 << 30) // one 4 GB file
        .transfer_to(Server::new().sink(DataSink::Null), &tb);

    println!(
        "moved {} GB in {} -> {:.2} Gbps goodput",
        report.bytes >> 30,
        report.elapsed,
        report.goodput_gbps
    );
    println!(
        "client CPU {:.0}% of one core, server CPU {:.0}%",
        report.client_cpu_pct, report.server_cpu_pct
    );
    println!(
        "control messages: {} sent / {} received at the source",
        report.detail.source.ctrl_msgs_sent, report.detail.source.ctrl_msgs_received
    );
    assert!(report.goodput_gbps > 35.0, "the LAN should saturate");
}
