//! Bidirectional synchronization: two sites exchange datasets
//! simultaneously over one wide-area link. Each host runs a source and a
//! sink behind a single application (`DuplexEngine`); the full-duplex
//! link carries both payload streams at line rate concurrently.
//!
//! ```text
//! cargo run --release --example bidirectional_sync
//! ```

use rftp_core::harness::run_duplex;
use rftp_core::{SinkConfig, SourceConfig};
use rftp_netsim::testbed;

const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

fn main() {
    let tb = testbed::ani_wan();
    println!(
        "site exchange over {}: {} Gbps each way, RTT {} ms\n",
        tb.name, tb.nic_gbps, tb.rtt_ms
    );

    let pool = ((4 * tb.bdp_bytes()) / (4 * MB)).clamp(16, 4096) as u32;
    // ANL pushes 8 GB of fresh events east→west while NERSC pushes 4 GB
    // of reprocessed results back.
    let a_cfg = SourceConfig::new(4 * MB, 4, 8 * GB).with_pool(pool);
    let b_cfg = SourceConfig::new(4 * MB, 4, 4 * GB).with_pool(pool);
    let ring = a_cfg.ctrl_ring_slots;
    let snk = || SinkConfig {
        pool_blocks: pool,
        ctrl_ring_slots: ring,
        ..SinkConfig::default()
    };

    let r = run_duplex(&tb, a_cfg, snk(), b_cfg, snk());
    println!(
        "ANL → NERSC: {} GB at {:.2} Gbps",
        r.forward.bytes_sent / GB,
        r.forward_gbps
    );
    println!(
        "NERSC → ANL: {} GB at {:.2} Gbps",
        r.reverse.bytes_sent / GB,
        r.reverse_gbps
    );
    println!(
        "host CPU: ANL {:.0}%, NERSC {:.0}%",
        r.a_cpu_pct, r.b_cpu_pct
    );
    assert!(r.forward_gbps > 8.5 && r.reverse_gbps > 8.0);
    println!("\nBoth directions ran concurrently at (near) line rate: the link is full duplex\nand RFTP's flow control keeps each direction's pipe independently full.");
}
