//! End-to-end smoke tests for the `rftp-sim` command-line binary.

use std::process::Command;

fn rftp_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rftp-sim"))
}

#[test]
fn cli_help_exits_zero() {
    let out = rftp_sim().arg("--help").output().expect("spawn rftp-sim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--testbed"));
    assert!(text.contains("--block"));
}

#[test]
fn cli_runs_a_verified_lan_transfer() {
    let out = rftp_sim()
        .args([
            "--testbed",
            "roce",
            "--block",
            "1M",
            "--streams",
            "4",
            "--size",
            "64M",
            "--verify",
        ])
        .output()
        .expect("spawn rftp-sim");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("goodput"), "output: {text}");
    assert!(text.contains("0 checksum failures"), "output: {text}");
}

#[test]
fn cli_rejects_bad_flags() {
    let out = rftp_sim().arg("--bogus").output().expect("spawn rftp-sim");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn cli_runs_on_demand_credit_ablation() {
    let out = rftp_sim()
        .args(["--testbed", "wan", "--size", "512M", "--on-demand-credits"])
        .output()
        .expect("spawn rftp-sim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("on-demand credits"));
}

#[test]
fn cli_esnet_run_reports_bare_metal_fraction() {
    let out = rftp_sim()
        .args([
            "--testbed",
            "esnet100g",
            "--size",
            "4G",
            "--streams",
            "8",
            "--block",
            "8M",
        ])
        .output()
        .expect("spawn rftp-sim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ESnet 100G WAN"));
    assert!(text.contains("% of bare-metal"));
}
