//! # rftp — the RDMA-enabled FTP application
//!
//! The paper's reference implementation of its protocol is **RFTP**, an
//! FTP-like bulk data mover. This crate is that application layer: a
//! friendly builder API over the `rftp-core` middleware, mirroring the
//! knobs the paper's experiments turn (block size, parallel streams,
//! memory-to-memory vs memory-to-disk, direct I/O) plus the synthetic
//! data endpoints used on the testbeds (`/dev/zero` source, `/dev/null`
//! sink, RAID disk array).
//!
//! ```
//! use rftp::{Client, DataSink, Server};
//! use rftp_netsim::testbed;
//!
//! // Move 1 GB memory-to-memory over the simulated ANI WAN with
//! // 4 MB blocks and 8 parallel streams, like the paper's Fig. 10 runs.
//! let report = Client::new()
//!     .block_size(4 << 20)
//!     .streams(8)
//!     .push_job("dataset.bin", 1 << 30)
//!     .transfer_to(Server::new().sink(DataSink::Null), &testbed::ani_wan());
//! // 1 GB mostly rides the credit ramp at 49 ms RTT; larger transfers
//! // settle at ~9.9 Gbps (see the Fig. 10 harness).
//! assert!(report.goodput_gbps > 7.0);
//! ```

pub mod client;
pub mod disk;
pub mod server;

pub use client::{Client, DataSource, RftpReport};
pub use disk::{laptop_ssd, raid_array};
pub use server::{DataSink, Server};

// Re-export the pieces callers commonly need alongside.
pub use rftp_core::{CreditMode, NotifyMode, TransferReport};
pub use rftp_netsim::testbed::Testbed;
