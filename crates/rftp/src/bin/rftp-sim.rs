//! `rftp-sim` — command-line front end for the simulated RFTP tool.
//!
//! Mirrors the knobs the paper's RFTP binary exposed (block size,
//! parallel streams, direct I/O) plus the simulated environment:
//!
//! ```text
//! rftp-sim --testbed wan --block 4M --streams 8 --size 8G
//! rftp-sim --testbed roce --sink disk --verify --files 3 --size 2G
//! rftp-sim --help
//! ```

use rftp::{disk, Client, DataSink, DataSource, NotifyMode, Server};
use rftp_netsim::testbed::{self, Testbed};

struct Args {
    testbed: String,
    block: u64,
    streams: u16,
    size: u64,
    files: u32,
    pool: u32,
    sink: String,
    verify: bool,
    write_imm: bool,
    on_demand_credits: bool,
}

fn parse_size(s: &str) -> Option<u64> {
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1u64 << 10),
        'M' | 'm' => (&s[..s.len() - 1], 1 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1 << 30),
        'T' | 't' => (&s[..s.len() - 1], 1 << 40),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

const HELP: &str = "rftp-sim: RFTP over the simulated testbeds of Ren et al., SC 2012

USAGE: rftp-sim [OPTIONS]

OPTIONS:
  --testbed <roce|ib|wan|esnet100g>  environment (default wan)
  --block <SIZE>       block size, e.g. 4M (default 4M)
  --streams <N>        parallel data channels (default 4)
  --size <SIZE>        bytes per file, e.g. 8G (default 4G)
  --files <N>          number of files in the job train (default 1)
  --pool <N>           pool blocks per endpoint (default: 4x BDP / block)
  --sink <null|disk>   payload destination (default null)
  --verify             pattern data + end-to-end checksums
  --write-imm          WRITE_WITH_IMM notification mode
  --on-demand-credits  RXIO-style request/response credits (ablation)
  --help               this text";

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        testbed: "wan".into(),
        block: 4 << 20,
        streams: 4,
        size: 4 << 30,
        files: 1,
        pool: 0,
        sink: "null".into(),
        verify: false,
        write_imm: false,
        on_demand_credits: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--testbed" => a.testbed = val("--testbed")?,
            "--block" => {
                a.block = parse_size(&val("--block")?).ok_or("bad --block")?;
            }
            "--streams" => {
                a.streams = val("--streams")?.parse().map_err(|_| "bad --streams")?;
            }
            "--size" => {
                a.size = parse_size(&val("--size")?).ok_or("bad --size")?;
            }
            "--files" => {
                a.files = val("--files")?.parse().map_err(|_| "bad --files")?;
            }
            "--pool" => {
                a.pool = val("--pool")?.parse().map_err(|_| "bad --pool")?;
            }
            "--sink" => a.sink = val("--sink")?,
            "--verify" => a.verify = true,
            "--write-imm" => a.write_imm = true,
            "--on-demand-credits" => a.on_demand_credits = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(a)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let tb: Testbed = match args.testbed.as_str() {
        "roce" => testbed::roce_lan(),
        "ib" => testbed::ib_lan(),
        "wan" => testbed::ani_wan(),
        "esnet100g" => testbed::esnet_100g(),
        other => {
            eprintln!("unknown testbed '{other}' (roce|ib|wan|esnet100g)");
            std::process::exit(2);
        }
    };
    let pool = if args.pool > 0 {
        args.pool
    } else {
        ((4 * tb.bdp_bytes()) / args.block).clamp(16, 4096) as u32
    };

    println!(
        "rftp-sim: {} — {:.1} Gbps bare-metal, RTT {} ms, BDP {:.1} MB",
        tb.name,
        tb.bare_metal.as_gbps(),
        tb.rtt_ms,
        tb.bdp_bytes() as f64 / 1e6
    );
    println!(
        "config: block {} KB x pool {pool}, {} stream(s), {} file(s) x {} MB, sink {}{}{}{}",
        args.block >> 10,
        args.streams,
        args.files,
        args.size >> 20,
        args.sink,
        if args.verify { ", verified" } else { "" },
        if args.write_imm { ", write-imm" } else { "" },
        if args.on_demand_credits {
            ", on-demand credits"
        } else {
            ""
        },
    );

    let mut client = Client::new()
        .block_size(args.block)
        .streams(args.streams)
        .pool_blocks(pool)
        .notify(if args.write_imm {
            NotifyMode::WriteImm
        } else {
            NotifyMode::CtrlMsg
        })
        .source(if args.verify {
            DataSource::Pattern
        } else {
            DataSource::Zero
        });
    for i in 0..args.files {
        client = client.push_job(format!("file-{i:03}.dat"), args.size);
    }

    let mut server = Server::new().pool_blocks(pool).verify_payload(args.verify);
    server = match args.sink.as_str() {
        "null" => server.sink(DataSink::Null),
        "disk" => server.sink(DataSink::Disk(disk::raid_array())),
        other => {
            eprintln!("unknown sink '{other}' (null|disk)");
            std::process::exit(2);
        }
    };
    if args.on_demand_credits {
        server = server.credit_mode(rftp::CreditMode::OnDemand);
    }

    let r = client.transfer_to(server, &tb);

    println!();
    println!(
        "transferred {} files / {:.2} GB in {} (simulated)",
        r.jobs_completed,
        r.bytes as f64 / 1e9,
        r.elapsed
    );
    println!(
        "goodput      {:.2} Gbps ({:.0}% of bare-metal)",
        r.goodput_gbps,
        100.0 * r.goodput_gbps / tb.bare_metal.as_gbps()
    );
    println!(
        "CPU          client {:.0}%  server {:.0}% (nmon convention)",
        r.client_cpu_pct, r.server_cpu_pct
    );
    println!(
        "flow control {} credits granted, {} credit requests, starved {}",
        r.detail.sink.credits_granted,
        r.detail.source.credit_requests,
        r.detail.source.credit_starved
    );
    println!(
        "reassembly   {} of {} blocks arrived out of order (max depth {})",
        r.reordered_blocks, r.detail.sink.blocks_delivered, r.detail.sink.max_reorder_depth
    );
    if args.verify {
        println!("integrity    {} checksum failures", r.checksum_failures);
        if r.checksum_failures > 0 {
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_size;

    #[test]
    fn sizes() {
        assert_eq!(parse_size("100"), Some(100));
        assert_eq!(parse_size("4K"), Some(4 << 10));
        assert_eq!(parse_size("4k"), Some(4 << 10));
        assert_eq!(parse_size("8M"), Some(8 << 20));
        assert_eq!(parse_size("2G"), Some(2 << 30));
        assert_eq!(parse_size("1T"), Some(1 << 40));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size(""), None);
    }
}
