//! The RFTP server (data sink) configuration.

use rftp_core::{ConsumeMode, CreditMode, SinkConfig, StoreConfig};

/// Where received payload goes.
#[derive(Debug, Clone, Copy)]
pub enum DataSink {
    /// Discard (`/dev/null`) — the memory-to-memory experiments.
    Null,
    /// Write to a storage device — the memory-to-disk experiments.
    Disk(StoreConfig),
}

/// Builder for the sink endpoint. Defaults follow the paper's protocol:
/// proactive credits, two per completion, 64-block registered pool.
#[derive(Debug, Clone)]
pub struct Server {
    cfg: SinkConfig,
    sink: DataSink,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    pub fn new() -> Server {
        Server {
            cfg: SinkConfig::default(),
            sink: DataSink::Null,
        }
    }

    /// Choose the payload destination.
    pub fn sink(mut self, sink: DataSink) -> Server {
        self.sink = sink;
        self
    }

    /// Size of the registered receive pool, in blocks.
    pub fn pool_blocks(mut self, n: u32) -> Server {
        self.cfg.pool_blocks = n;
        self
    }

    /// Credit policy (paper default: proactive).
    pub fn credit_mode(mut self, mode: CreditMode) -> Server {
        self.cfg.credit_mode = mode;
        self
    }

    /// Credits granted per completion notification (2 in the paper).
    pub fn grant_per_completion(mut self, n: u32) -> Server {
        self.cfg.grant_per_completion = n;
        self
    }

    /// Largest block size the server will accept.
    pub fn max_block_size(mut self, bytes: u64) -> Server {
        self.cfg.max_block_size = bytes;
        self
    }

    /// Validate payload contents end-to-end (forces real data buffers).
    pub fn verify_payload(mut self, on: bool) -> Server {
        self.cfg.real_data = on;
        self
    }

    /// Resolve to the middleware configuration.
    pub fn into_config(self) -> SinkConfig {
        let mut cfg = self.cfg;
        cfg.consume = match self.sink {
            DataSink::Null => ConsumeMode::Null,
            DataSink::Disk(spec) => spec.consume_mode(),
        };
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_consume_mode() {
        let cfg = Server::new()
            .sink(DataSink::Disk(crate::disk::raid_array()))
            .pool_blocks(128)
            .into_config();
        assert_eq!(cfg.pool_blocks, 128);
        match cfg.consume {
            ConsumeMode::Disk { direct_io, .. } => assert!(direct_io),
            other => panic!("wrong consume mode {other:?}"),
        }
    }

    #[test]
    fn defaults_are_paper_policy() {
        let cfg = Server::new().into_config();
        assert_eq!(cfg.grant_per_completion, 2);
        assert!(matches!(cfg.consume, ConsumeMode::Null));
    }
}
