//! The RFTP client (data source): job list, tuning knobs, and the
//! transfer runner.

use crate::server::Server;
use rftp_core::{harness, NotifyMode, SourceConfig, TransferReport};
use rftp_netsim::testbed::Testbed;
use rftp_netsim::time::SimDur;

/// What fills the outgoing blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// `/dev/zero`-style synthetic data; costs the loader thread the
    /// paper's measured 160 ps/B.
    Zero,
    /// Deterministic pattern data with end-to-end checksum verification
    /// (forces real buffers; used by correctness runs).
    Pattern,
}

/// One named transfer job (≈ one file).
#[derive(Debug, Clone)]
pub struct Job {
    pub name: String,
    pub bytes: u64,
}

/// Application-level transfer report.
#[derive(Debug, Clone)]
pub struct RftpReport {
    /// Aggregate application goodput, Gbps.
    pub goodput_gbps: f64,
    pub elapsed: SimDur,
    pub bytes: u64,
    pub jobs_completed: u32,
    /// Client host CPU (percent of one core, summed over threads).
    pub client_cpu_pct: f64,
    /// Server host CPU.
    pub server_cpu_pct: f64,
    /// Blocks that arrived out of order and were reassembled.
    pub reordered_blocks: u64,
    /// Payload verification failures (Pattern source only; must be 0).
    pub checksum_failures: u64,
    /// The raw middleware report for detailed analysis.
    pub detail: TransferReport,
}

/// Builder for the source endpoint.
#[derive(Debug, Clone)]
pub struct Client {
    block_size: u64,
    streams: u16,
    pool_blocks: u32,
    notify: NotifyMode,
    source: DataSource,
    loader_threads: u32,
    jobs: Vec<Job>,
}

impl Default for Client {
    fn default() -> Self {
        Self::new()
    }
}

impl Client {
    pub fn new() -> Client {
        Client {
            block_size: 4 << 20,
            streams: 1,
            pool_blocks: 64,
            notify: NotifyMode::CtrlMsg,
            source: DataSource::Zero,
            loader_threads: 2,
            jobs: Vec::new(),
        }
    }

    /// Data bytes per block (the paper sweeps 128 KB – 64 MB).
    pub fn block_size(mut self, bytes: u64) -> Client {
        self.block_size = bytes;
        self
    }

    /// Parallel data channels ("streams", 1 or 8 in the paper's runs).
    pub fn streams(mut self, n: u16) -> Client {
        self.streams = n;
        self
    }

    /// Registered source pool size in blocks; with `block_size` this
    /// bounds the data in flight (must exceed the path BDP to saturate).
    pub fn pool_blocks(mut self, n: u32) -> Client {
        self.pool_blocks = n;
        self
    }

    /// Completion-notification mode (control message vs write-with-imm).
    pub fn notify(mut self, mode: NotifyMode) -> Client {
        self.notify = mode;
        self
    }

    pub fn source(mut self, s: DataSource) -> Client {
        self.source = s;
        self
    }

    pub fn loader_threads(mut self, n: u32) -> Client {
        self.loader_threads = n;
        self
    }

    /// Queue a job (≈ one file). Jobs run as sequential sessions reusing
    /// channels and registered memory.
    pub fn push_job(mut self, name: impl Into<String>, bytes: u64) -> Client {
        self.jobs.push(Job {
            name: name.into(),
            bytes,
        });
        self
    }

    fn into_config(self) -> SourceConfig {
        assert!(!self.jobs.is_empty(), "no jobs queued");
        let mut cfg = SourceConfig::new(self.block_size, self.streams, 0);
        cfg.jobs = self.jobs.iter().map(|j| j.bytes).collect();
        cfg.pool_blocks = self.pool_blocks;
        cfg.notify = self.notify;
        cfg.loader_threads = self.loader_threads;
        cfg.real_data = self.source == DataSource::Pattern;
        cfg
    }

    /// Run the transfer against `server` on testbed `tb`. Simulated time
    /// is unbounded within a 10-hour guard; the call is deterministic.
    pub fn transfer_to(self, server: Server, tb: &Testbed) -> RftpReport {
        let jobs = self.jobs.len() as u32;
        let src_cfg = self.into_config();
        let mut snk_cfg = server.into_config();
        // Pattern verification needs real buffers on both ends.
        if src_cfg.real_data {
            snk_cfg.real_data = true;
        }
        let report = harness::build_experiment(tb, src_cfg, snk_cfg).run(SimDur::from_secs(36_000));
        RftpReport {
            goodput_gbps: report.goodput_gbps,
            elapsed: report.elapsed,
            bytes: report.source.bytes_sent,
            jobs_completed: jobs,
            client_cpu_pct: report.src_cpu_pct,
            server_cpu_pct: report.dst_cpu_pct,
            reordered_blocks: report.sink.ooo_blocks,
            checksum_failures: report.sink.checksum_failures,
            detail: report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DataSink;
    use rftp_netsim::testbed;

    const MB: u64 = 1 << 20;
    const GB: u64 = 1 << 30;

    #[test]
    fn quick_lan_transfer() {
        let r = Client::new()
            .block_size(MB)
            .streams(4)
            .push_job("a.dat", GB)
            .transfer_to(Server::new(), &testbed::roce_lan());
        assert_eq!(r.bytes, GB);
        assert!(r.goodput_gbps > 35.0, "{:.2}", r.goodput_gbps);
        assert_eq!(r.jobs_completed, 1);
    }

    #[test]
    fn pattern_source_verifies() {
        // 64 MB + a short tail block: the tail serializes faster than its
        // full-size predecessor on the neighbouring channel, so it
        // arrives out of order and must be reassembled.
        let r = Client::new()
            .block_size(512 * 1024)
            .streams(4)
            .source(DataSource::Pattern)
            .pool_blocks(16)
            .push_job("verify.dat", 64 * MB + 4096)
            .transfer_to(Server::new().pool_blocks(16), &testbed::ib_lan());
        assert_eq!(r.checksum_failures, 0);
        assert_eq!(r.bytes, 64 * MB + 4096);
        assert!(
            r.reordered_blocks > 0,
            "the short tail should overtake and be reordered"
        );
    }

    #[test]
    fn file_group_to_disk() {
        // Fig. 11 workload shape: a group of files to a RAID array.
        let r = Client::new()
            .block_size(4 * MB)
            .streams(4)
            .push_job("f1", 3 * GB)
            .push_job("f2", 3 * GB)
            .transfer_to(
                Server::new().sink(DataSink::Disk(crate::disk::raid_array())),
                &testbed::ani_wan(),
            );
        assert_eq!(r.jobs_completed, 2);
        assert_eq!(r.bytes, 6 * GB);
        // Each session pays its credit slow-start; large files amortize it.
        assert!(r.goodput_gbps > 8.5, "{:.2}", r.goodput_gbps);
    }

    #[test]
    fn slow_disk_gates_goodput() {
        // A 4 Gbps SSD behind a 40 Gbps LAN: the disk is the bottleneck
        // and backpressure (credits stop flowing) must slow the source.
        let r = Client::new()
            .block_size(4 * MB)
            .streams(4)
            .push_job("big", 2 * GB)
            .transfer_to(
                Server::new().sink(DataSink::Disk(crate::disk::laptop_ssd())),
                &testbed::roce_lan(),
            );
        assert!(
            r.goodput_gbps < 5.0,
            "disk backpressure must gate the transfer: {:.2}",
            r.goodput_gbps
        );
        assert!(r.goodput_gbps > 3.0);
    }

    #[test]
    #[should_panic(expected = "no jobs queued")]
    fn empty_job_list_panics() {
        let _ = Client::new().transfer_to(Server::new(), &testbed::roce_lan());
    }
}
