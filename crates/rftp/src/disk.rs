//! Storage-device presets for memory-to-disk transfers.
//!
//! The paper's disk experiments (Fig. 11) write "a group of 400 GB files
//! spread across multiple RAID disks to achieve the best performance of
//! the disk system", with RFTP's direct-I/O feature enabled. The device
//! model is a rate-limited FIFO (the fabric's `Device`); these presets
//! pick rates representative of the hardware classes involved.

use rftp_netsim::time::Bandwidth;

/// A storage device: sustained streaming rate plus the I/O mode.
#[derive(Debug, Clone, Copy)]
pub struct DiskSpec {
    /// Sustained sequential write rate.
    pub rate: Bandwidth,
    /// Use direct I/O (bypass the page cache). RFTP enables this; the
    /// paper notes GridFTP had not integrated direct I/O.
    pub direct_io: bool,
    pub name: &'static str,
}

impl DiskSpec {
    /// Flip to buffered POSIX writes (what GridFTP would do).
    pub fn buffered(mut self) -> DiskSpec {
        self.direct_io = false;
        self
    }
}

/// The testbeds' striped RAID array (with Fusion-io class backing): fast
/// enough to keep a 10 Gbps WAN busy with headroom, as Fig. 11 requires.
pub fn raid_array() -> DiskSpec {
    DiskSpec {
        rate: Bandwidth::from_gbps(16),
        direct_io: true,
        name: "raid-array",
    }
}

/// A single consumer SSD — deliberately *slower* than the fast networks,
/// for experiments about disk-bound transfers.
pub fn laptop_ssd() -> DiskSpec {
    DiskSpec {
        rate: Bandwidth::from_gbps(4),
        direct_io: true,
        name: "laptop-ssd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(raid_array().rate.bits_per_sec() > 10_000_000_000);
        assert!(raid_array().direct_io);
        assert!(!raid_array().buffered().direct_io);
        assert!(laptop_ssd().rate < raid_array().rate);
    }
}
