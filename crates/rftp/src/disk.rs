//! Storage-device presets for the disk experiments.
//!
//! The paper's disk experiments (Fig. 11) write "a group of 400 GB files
//! spread across multiple RAID disks to achieve the best performance of
//! the disk system", with RFTP's direct-I/O feature enabled. Each preset
//! is an [`StoreConfig`] — the one storage description shared by the
//! simulated harness (rate-limited FIFO device + per-byte CPU for the
//! I/O mode) and the live pipeline (`O_DIRECT` file I/O + read-ahead
//! depth), so `fig11` and `rftp-live --src-file/--dst-file` measure the
//! same device profile through the same interface.

use rftp_core::StoreConfig;
use rftp_netsim::time::Bandwidth;

/// The testbeds' striped RAID array (with Fusion-io class backing): fast
/// enough to keep a 10 Gbps WAN busy with headroom, as Fig. 11 requires.
pub fn raid_array() -> StoreConfig {
    StoreConfig::new("raid-array", Bandwidth::from_gbps(16), true)
}

/// A single consumer SSD — deliberately *slower* than the fast networks,
/// for experiments about disk-bound transfers.
pub fn laptop_ssd() -> StoreConfig {
    StoreConfig::new("laptop-ssd", Bandwidth::from_gbps(4), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rftp_core::ConsumeMode;

    #[test]
    fn presets() {
        assert!(raid_array().rate.bits_per_sec() > 10_000_000_000);
        assert!(raid_array().direct_io);
        assert!(!raid_array().buffered().direct_io);
        assert!(laptop_ssd().rate < raid_array().rate);
    }

    #[test]
    fn consume_mode_carries_the_io_mode() {
        match raid_array().consume_mode() {
            ConsumeMode::Disk { rate, direct_io } => {
                assert!(direct_io);
                assert_eq!(rate, raid_array().rate);
            }
            other => panic!("disk preset must map to a disk sink: {other:?}"),
        }
        match laptop_ssd().buffered().consume_mode() {
            ConsumeMode::Disk { direct_io, .. } => assert!(!direct_io),
            other => panic!("disk preset must map to a disk sink: {other:?}"),
        }
    }
}
