//! Abort-path behaviour of every transport backend — channel, TCP, and
//! io_uring. A transfer that dies mid-flight must *fail*, promptly, on
//! both halves: the first error trips the shared failure latch, the
//! latch tears down every link, and every thread blocked on a link
//! errors out instead of hanging. These tests bound each half's exit
//! with a timeout, so a single leaked blocking read fails the suite.

use rftp_core::wire::DataFrameHeader;
use rftp_live::net::{connect_source, default_sockbuf, NetListener};
use rftp_live::{
    accept_source_uring, channel_transport, connect_source_uring, run_split_sink, run_split_source,
    run_uring_sink, uring_supported, LiveConfig, LiveReport,
};
use std::io;
use std::sync::mpsc;
use std::time::Duration;

/// Far more bytes than can move before the abort fires: the transfer is
/// guaranteed to still be mid-flight.
const ENDLESS: u64 = 64 << 30;
const ABORT_AFTER: Duration = Duration::from_millis(150);
/// A released thread exits in milliseconds; a hung one never does.
const JOIN_LIMIT: Duration = Duration::from_secs(15);

fn big_cfg(channels: usize) -> LiveConfig {
    LiveConfig::new(128 * 1024, channels, ENDLESS)
}

type HalfResult = io::Result<LiveReport>;

/// Run a pipeline half on its own thread, its result delivered through a
/// channel so the test can bound the wait.
fn spawn_half(f: impl FnOnce() -> HalfResult + Send + 'static) -> mpsc::Receiver<HalfResult> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx
}

fn must_finish(rx: &mpsc::Receiver<HalfResult>, who: &str) -> HalfResult {
    rx.recv_timeout(JOIN_LIMIT)
        .unwrap_or_else(|_| panic!("{who} still blocked {JOIN_LIMIT:?} after the abort"))
}

/// Assert the aborted transfer failed on both halves and neither hung —
/// the first error won the latch and the latch released every link.
fn assert_both_fail(src: mpsc::Receiver<HalfResult>, snk: mpsc::Receiver<HalfResult>) {
    let src = must_finish(&src, "source half");
    let snk = must_finish(&snk, "sink half");
    assert!(
        src.is_err(),
        "aborted source must error, got {:?}",
        src.map(|r| r.blocks)
    );
    assert!(
        snk.is_err(),
        "aborted sink must error, got {:?}",
        snk.map(|r| r.blocks)
    );
}

// ---------------------------------------------------------------------------
// Channel backend
// ---------------------------------------------------------------------------

#[test]
fn channel_source_abort_trips_both_halves() {
    let cfg = big_cfg(3);
    let (st, kt) = channel_transport(cfg.channels, cfg.channel_depth);
    let abort = st.abort.clone();
    let (sc, kc) = (cfg.clone(), cfg.clone());
    let src = spawn_half(move || run_split_source(&sc, st));
    let snk = spawn_half(move || run_split_sink(&kc, kt, None));
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}

#[test]
fn channel_sink_abort_trips_both_halves() {
    let cfg = big_cfg(3);
    let (st, kt) = channel_transport(cfg.channels, cfg.channel_depth);
    let abort = kt.abort.clone();
    let (sc, kc) = (cfg.clone(), cfg.clone());
    let src = spawn_half(move || run_split_source(&sc, st));
    let snk = spawn_half(move || run_split_sink(&kc, kt, None));
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

/// Bind, connect, and hand back both running halves plus the chosen
/// side's abort hook. `abort_sink` picks which transport's hook to pull.
fn tcp_pair_with_abort(
    cfg: &LiveConfig,
    abort_sink: bool,
) -> (
    mpsc::Receiver<HalfResult>,
    mpsc::Receiver<HalfResult>,
    std::sync::Arc<dyn Fn() + Send + Sync>,
) {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sockbuf = default_sockbuf(cfg.block_size, cfg.channel_depth);
    let (channels, sc) = (cfg.channels, cfg.clone());
    let (src_tx, src_rx) = mpsc::channel();
    let (abort_tx, abort_rx) = mpsc::channel();
    std::thread::spawn(move || {
        let r = (|| {
            let t = connect_source(addr, channels, sockbuf)?;
            if !abort_sink {
                let _ = abort_tx.send(t.abort.clone());
            }
            run_split_source(&sc, t)
        })();
        let _ = src_tx.send(r);
    });
    let (t, first) = listener.accept_session(sockbuf).unwrap();
    if abort_sink {
        let abort = t.abort.clone();
        let kc = cfg.clone();
        let snk = spawn_half(move || run_split_sink(&kc, t, Some(first)));
        return (src_rx, snk, abort);
    }
    let kc = cfg.clone();
    let snk = spawn_half(move || run_split_sink(&kc, t, Some(first)));
    let abort = abort_rx
        .recv_timeout(JOIN_LIMIT)
        .expect("source connected but never shared its abort hook");
    (src_rx, snk, abort)
}

#[test]
fn tcp_source_abort_trips_both_halves() {
    let cfg = big_cfg(2);
    let (src, snk, abort) = tcp_pair_with_abort(&cfg, false);
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}

#[test]
fn tcp_sink_abort_trips_both_halves() {
    let cfg = big_cfg(2);
    let (src, snk, abort) = tcp_pair_with_abort(&cfg, true);
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}

/// The sink-side duplicate path (`recv_header` → `discard_wire`) over a
/// real socket: a retransmit raced ack must be consumed without
/// placement and must not desynchronize the stream — the next frame
/// still parses. After an abort, a reader blocked on the link unblocks
/// promptly instead of hanging on a half-dead socket.
#[test]
fn tcp_discard_wire_consumes_duplicates_and_unblocks_after_abort() {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sockbuf = default_sockbuf(4096, 4);
    let src = std::thread::spawn(move || {
        let t = connect_source(addr, 1, sockbuf).unwrap();
        // accept_session reads one opening control frame before
        // returning (normally the SessionRequest) — satisfy it.
        t.ctrl_tx
            .send(&rftp_core::wire::CtrlMsg::MrRequest { session: 7 })
            .unwrap();
        t
    });
    let (mut snk, _first) = listener.accept_session(sockbuf).unwrap();
    let src = src.join().unwrap();

    let hdr = DataFrameHeader {
        session: 7,
        seq: 5,
        slot: 1,
        len: 64,
    };
    let wire: Vec<u8> = (0..hdr.wire_len()).map(|i| i as u8).collect();
    // Original, duplicate, then one more original.
    src.data[0].send(hdr, &wire).unwrap();
    src.data[0].send(hdr, &wire).unwrap();
    let hdr2 = DataFrameHeader { seq: 6, ..hdr };
    src.data[0].send(hdr2, &wire).unwrap();

    let rx = &mut snk.data[0];
    assert_eq!(rx.recv_header().unwrap(), Some(hdr));
    let mut buf = vec![0u8; hdr.wire_len()];
    rx.recv_wire(&mut buf).unwrap();
    assert_eq!(buf, wire);
    // The duplicate: consume, don't place.
    assert_eq!(rx.recv_header().unwrap(), Some(hdr));
    rx.discard_wire(hdr.wire_len()).unwrap();
    // Stream is still framed correctly after the discard.
    assert_eq!(rx.recv_header().unwrap(), Some(hdr2));
    rx.discard_wire(hdr2.wire_len()).unwrap();

    // Park a reader on the drained link, then abort: the blocked
    // recv_header must return promptly (end-of-stream or error — either
    // tells the sink to trip its failure latch), never hang.
    let (tx, rx_done) = mpsc::channel();
    std::thread::spawn(move || {
        let r = (|| -> io::Result<()> {
            while let Some(h) = snk.data[0].recv_header()? {
                snk.data[0].discard_wire(h.wire_len())?;
            }
            Ok(())
        })();
        let _ = tx.send(r);
    });
    std::thread::sleep(Duration::from_millis(100));
    (src.abort)();
    // Ok(None) (clean EOF) and Err are both acceptable outcomes; hanging
    // is the only failure.
    let _ = rx_done
        .recv_timeout(JOIN_LIMIT)
        .expect("sink reader hung on the aborted link");
}

// ---------------------------------------------------------------------------
// io_uring backend
// ---------------------------------------------------------------------------

fn uring_or_skip() -> bool {
    if uring_supported() {
        return true;
    }
    eprintln!("skipping: io_uring transport unsupported on this kernel");
    false
}

#[test]
fn uring_source_abort_trips_both_halves() {
    if !uring_or_skip() {
        return;
    }
    let cfg = big_cfg(2);
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sockbuf = default_sockbuf(cfg.block_size, cfg.channel_depth);
    let (sc, kc) = (cfg.clone(), cfg.clone());
    let (abort_tx, abort_rx) = mpsc::channel();
    let src = spawn_half(move || {
        let t = connect_source_uring(addr, sc.channels, sockbuf)?;
        let _ = abort_tx.send(t.abort.clone());
        run_split_source(&sc, t)
    });
    let (sess, first) = accept_source_uring(&listener, sockbuf).unwrap();
    let snk = spawn_half(move || run_uring_sink(&kc, sess, Some(first)));
    let abort = abort_rx
        .recv_timeout(JOIN_LIMIT)
        .expect("uring source never shared its abort hook");
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}

/// Remote teardown seen from the uring *source*: the TCP sink aborts its
/// links and every ring-queued send on the source side must fail the
/// transfer instead of wedging the dispatcher.
#[test]
fn tcp_sink_abort_trips_uring_source() {
    if !uring_or_skip() {
        return;
    }
    let cfg = big_cfg(2);
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sockbuf = default_sockbuf(cfg.block_size, cfg.channel_depth);
    let sc = cfg.clone();
    let src = spawn_half(move || {
        let t = connect_source_uring(addr, sc.channels, sockbuf)?;
        run_split_source(&sc, t)
    });
    let (t, first) = listener.accept_session(sockbuf).unwrap();
    let abort = t.abort.clone();
    let kc = cfg.clone();
    let snk = spawn_half(move || run_split_sink(&kc, t, Some(first)));
    std::thread::sleep(ABORT_AFTER);
    abort();
    assert_both_fail(src, snk);
}
