//! End-to-end transfers over real TCP sockets on loopback — the split
//! pipeline with the [`rftp_live::net`] backend, in-process (two thread
//! groups, two transports, one kernel socket pair per link) and as two
//! actual OS processes driving the `rftp-live` binary.

use rftp_live::net::{connect_source, NetListener};
use rftp_live::{run_split_sink, run_split_source, LiveConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Debug builds move bytes ~an order of magnitude slower; shrink the
/// payloads so the suite stays snappy under `cargo test`.
const SCALE: u64 = if cfg!(debug_assertions) { 4 } else { 1 };

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rftp_net_{}_{tag}", std::process::id()))
}

/// A deterministic, non-trivial test file (not the pipeline's own
/// pattern generator — the transfer must not be able to "verify" it by
/// regenerating it).
fn write_test_file(path: &PathBuf, bytes: u64) {
    let mut f = std::fs::File::create(path).unwrap();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut left = bytes;
    while left > 0 {
        for w in chunk.chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w.copy_from_slice(&x.to_le_bytes());
        }
        let n = left.min(chunk.len() as u64) as usize;
        f.write_all(&chunk[..n]).unwrap();
        left -= n as u64;
    }
}

/// Run one transfer over TCP loopback inside this process: the source
/// half on a helper thread, the sink half here.
fn run_tcp_pair(
    src_cfg: LiveConfig,
    snk_cfg: LiveConfig,
) -> (
    std::io::Result<rftp_live::LiveReport>,
    std::io::Result<rftp_live::LiveReport>,
) {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let channels = src_cfg.channels;
    let sockbuf = rftp_live::net::default_sockbuf(src_cfg.block_size, src_cfg.channel_depth);
    let src = std::thread::spawn(move || {
        let t = connect_source(addr, channels, sockbuf)?;
        run_split_source(&src_cfg, t)
    });
    let snk = (|| {
        let (t, first) = listener.accept_session(sockbuf)?;
        run_split_sink(&snk_cfg, t, Some(first))
    })();
    (src.join().unwrap(), snk)
}

#[test]
fn tcp_pattern_transfer_verifies_and_coalesces() {
    let cfg = LiveConfig::new(64 * 1024, 4, (32 << 20) / SCALE);
    let (src, snk) = run_tcp_pair(cfg.clone(), cfg.clone());
    let (src, snk) = (src.unwrap(), snk.unwrap());
    assert_eq!(snk.blocks, cfg.total_bytes.div_ceil(64 * 1024));
    assert_eq!(snk.checksum_failures, 0);
    assert!(
        src.ctrl_msgs_per_block < 1.0 && snk.ctrl_msgs_per_block < 1.0,
        "control plane not coalesced: src {:.2}/blk, snk {:.2}/blk",
        src.ctrl_msgs_per_block,
        snk.ctrl_msgs_per_block
    );
}

#[test]
fn tcp_file_to_file_is_byte_identical() {
    let src_path = tmp_path("f2f_src");
    let dst_path = tmp_path("f2f_dst");
    // An odd tail: the last block is partial.
    let bytes = (16 << 20) / SCALE + 12_345;
    write_test_file(&src_path, bytes);

    let mut src_cfg = LiveConfig::new(128 * 1024, 3, bytes);
    src_cfg.src_file = Some(src_path.clone());
    let mut snk_cfg = LiveConfig::new(128 * 1024, 3, bytes);
    snk_cfg.dst_file = Some(dst_path.clone());
    let (src, snk) = run_tcp_pair(src_cfg, snk_cfg);
    src.unwrap();
    let snk = snk.unwrap();
    assert_eq!(snk.checksum_failures, 0);

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert_eq!(a.len(), b.len(), "size mismatch");
    assert!(a == b, "destination bytes differ from source");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

#[test]
fn tcp_drop_faults_recover_exactly_once() {
    let mut src_cfg = LiveConfig::new(32 * 1024, 2, (4 << 20) / SCALE);
    src_cfg.pool_blocks = 8;
    src_cfg.fault_drop_p = 0.15;
    src_cfg.fault_seed = 42;
    src_cfg.retx_timeout = Duration::from_millis(30);
    let mut snk_cfg = LiveConfig::new(32 * 1024, 2, src_cfg.total_bytes);
    snk_cfg.pool_blocks = 8;
    let (src, snk) = run_tcp_pair(src_cfg, snk_cfg);
    let (src, snk) = (src.unwrap(), snk.unwrap());
    assert_eq!(
        snk.checksum_failures, 0,
        "every block placed correctly once"
    );
    assert!(src.dropped_payloads >= 1, "fault injector never fired");
    assert!(src.retransmits >= 1, "drops must be recovered by re-send");
    // Any duplicate a raced retransmit produced was discarded, not placed
    // (checksums above prove placement integrity); here we just confirm
    // the accounting is coherent.
    assert_eq!(snk.blocks, src.blocks);
}

// ---------------------------------------------------------------------------
// The io_uring backend: the same wire format (PROTOCOL.md §7 is
// byte-identical across socket backends), so every TCP scenario must
// hold verbatim — including with the two backends mixed across sides.
// ---------------------------------------------------------------------------

fn uring_or_skip() -> bool {
    if rftp_live::uring_supported() {
        return true;
    }
    eprintln!("skipping: io_uring transport unsupported on this kernel");
    false
}

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Tcp,
    Uring,
}

/// Run one loopback transfer with each side on its chosen backend. The
/// wire never changes, so any (source, sink) pairing must interoperate.
fn run_mixed_pair(
    src_be: Backend,
    snk_be: Backend,
    src_cfg: LiveConfig,
    snk_cfg: LiveConfig,
) -> (
    std::io::Result<rftp_live::LiveReport>,
    std::io::Result<rftp_live::LiveReport>,
) {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let channels = src_cfg.channels;
    let sockbuf = rftp_live::net::default_sockbuf(src_cfg.block_size, src_cfg.channel_depth);
    let src = std::thread::spawn(move || {
        let t = match src_be {
            Backend::Tcp => connect_source(addr, channels, sockbuf)?,
            Backend::Uring => rftp_live::connect_source_uring(addr, channels, sockbuf)?,
        };
        run_split_source(&src_cfg, t)
    });
    let snk = (|| match snk_be {
        Backend::Tcp => {
            let (t, first) = listener.accept_session(sockbuf)?;
            run_split_sink(&snk_cfg, t, Some(first))
        }
        Backend::Uring => {
            let (sess, first) = rftp_live::accept_source_uring(&listener, sockbuf)?;
            rftp_live::run_uring_sink(&snk_cfg, sess, Some(first))
        }
    })();
    (src.join().unwrap(), snk)
}

#[test]
fn uring_pattern_transfer_verifies_and_coalesces() {
    if !uring_or_skip() {
        return;
    }
    let cfg = LiveConfig::new(64 * 1024, 4, (32 << 20) / SCALE);
    let (src, snk) = run_mixed_pair(Backend::Uring, Backend::Uring, cfg.clone(), cfg.clone());
    let (src, snk) = (src.unwrap(), snk.unwrap());
    assert_eq!(snk.blocks, cfg.total_bytes.div_ceil(64 * 1024));
    assert_eq!(snk.checksum_failures, 0);
    assert!(
        src.ctrl_msgs_per_block < 1.0 && snk.ctrl_msgs_per_block < 1.0,
        "control plane not coalesced: src {:.2}/blk, snk {:.2}/blk",
        src.ctrl_msgs_per_block,
        snk.ctrl_msgs_per_block
    );
    // The tentpole's thread claim, checked where it is observable: the
    // uring sink's data path is ONE driver thread regardless of channels.
    assert_eq!(snk.transport_threads, 1);
}

#[test]
fn uring_file_to_file_is_byte_identical() {
    if !uring_or_skip() {
        return;
    }
    let src_path = tmp_path("ur_f2f_src");
    let dst_path = tmp_path("ur_f2f_dst");
    let bytes = (16 << 20) / SCALE + 12_345;
    write_test_file(&src_path, bytes);

    let mut src_cfg = LiveConfig::new(128 * 1024, 3, bytes);
    src_cfg.src_file = Some(src_path.clone());
    let mut snk_cfg = LiveConfig::new(128 * 1024, 3, bytes);
    snk_cfg.dst_file = Some(dst_path.clone());
    let (src, snk) = run_mixed_pair(Backend::Uring, Backend::Uring, src_cfg, snk_cfg);
    src.unwrap();
    assert_eq!(snk.unwrap().checksum_failures, 0);

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert_eq!(a.len(), b.len(), "size mismatch");
    assert!(a == b, "destination bytes differ from source over io_uring");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

#[test]
fn uring_drop_faults_recover_exactly_once() {
    if !uring_or_skip() {
        return;
    }
    let mut src_cfg = LiveConfig::new(32 * 1024, 2, (4 << 20) / SCALE);
    src_cfg.pool_blocks = 8;
    src_cfg.fault_drop_p = 0.15;
    src_cfg.fault_seed = 42;
    src_cfg.retx_timeout = Duration::from_millis(30);
    let mut snk_cfg = LiveConfig::new(32 * 1024, 2, src_cfg.total_bytes);
    snk_cfg.pool_blocks = 8;
    let (src, snk) = run_mixed_pair(Backend::Uring, Backend::Uring, src_cfg, snk_cfg);
    let (src, snk) = (src.unwrap(), snk.unwrap());
    assert_eq!(
        snk.checksum_failures, 0,
        "every block placed correctly once"
    );
    assert!(src.dropped_payloads >= 1, "fault injector never fired");
    assert!(src.retransmits >= 1, "drops must be recovered by re-send");
    assert_eq!(snk.blocks, src.blocks);
}

#[test]
fn mixed_backends_move_files_byte_identically() {
    if !uring_or_skip() {
        return;
    }
    for (src_be, snk_be, tag) in [
        (Backend::Uring, Backend::Tcp, "ur_src"),
        (Backend::Tcp, Backend::Uring, "ur_snk"),
    ] {
        let src_path = tmp_path(&format!("mix_{tag}_src"));
        let dst_path = tmp_path(&format!("mix_{tag}_dst"));
        let bytes = (8 << 20) / SCALE + 4_097;
        write_test_file(&src_path, bytes);

        let mut src_cfg = LiveConfig::new(128 * 1024, 3, bytes);
        src_cfg.src_file = Some(src_path.clone());
        let mut snk_cfg = LiveConfig::new(128 * 1024, 3, bytes);
        snk_cfg.dst_file = Some(dst_path.clone());
        let (src, snk) = run_mixed_pair(src_be, snk_be, src_cfg, snk_cfg);
        src.unwrap();
        assert_eq!(snk.unwrap().checksum_failures, 0);
        let (a, b) = (
            std::fs::read(&src_path).unwrap(),
            std::fs::read(&dst_path).unwrap(),
        );
        assert!(a == b, "mixed pairing {tag}: destination differs");
        let _ = std::fs::remove_file(&src_path);
        let _ = std::fs::remove_file(&dst_path);
    }
}

// ---------------------------------------------------------------------------
// The real thing: two OS processes driving the rftp-live binary.
// ---------------------------------------------------------------------------

fn rftp_live_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rftp-live"))
}

/// Spawn `rftp-live --listen 127.0.0.1:0 ...` and read the bound address
/// off its first stdout line.
fn spawn_sink(extra: &[&str]) -> (Child, String) {
    let mut child = rftp_live_cmd()
        .arg("--listen")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rftp-live --listen");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .rsplit(' ')
        .next()
        .expect("listen line names an address")
        .trim()
        .to_string();
    assert!(addr.starts_with("127.0.0.1:"), "unexpected line: {line:?}");
    (child, addr)
}

fn wait_timeout(child: &mut Child, limit: Duration) -> Option<std::process::ExitStatus> {
    let t0 = Instant::now();
    while t0.elapsed() < limit {
        if let Some(st) = child.try_wait().unwrap() {
            return Some(st);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    None
}

#[test]
fn two_processes_move_a_file_byte_identically() {
    let src_path = tmp_path("proc_src");
    let dst_path = tmp_path("proc_dst");
    write_test_file(&src_path, (24 << 20) / SCALE + 4097);

    let (mut sink, addr) = spawn_sink(&["--dst-file", dst_path.to_str().unwrap()]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--channels", "4", "--block", "128K"])
        .args(["--src-file", src_path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rftp-live --connect");

    let src_status =
        wait_timeout(&mut source, Duration::from_secs(120)).expect("source process hung");
    let snk_status = wait_timeout(&mut sink, Duration::from_secs(30))
        .expect("sink process hung after source finished");
    assert!(src_status.success(), "source exited {src_status:?}");
    assert!(snk_status.success(), "sink exited {snk_status:?}");

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert!(a == b, "destination differs from source across processes");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

/// The ANI WAN with residual loss turned up to 1%, rate-scaled so the
/// BDP-sized pools stay test-friendly. Both processes run the shim;
/// each impairs its own inbound direction, so the pair sees the full
/// 49 ms RTT and the sink's inbound data loses frames.
const WAN_SPEC: &str = "ani-wan,drop=0.01,rate=500e6";

/// Read a counter off a process's report line, e.g.
/// `extract(&out, "retransmitted")` from "… 3 retransmitted".
fn count_before(stdout: &str, marker: &str) -> u64 {
    stdout
        .lines()
        .find_map(|l| {
            let ix = l.find(marker)?;
            l[..ix].trim().rsplit(' ').next()?.parse().ok()
        })
        .unwrap_or_else(|| panic!("no \"{marker}\" counter in output: {stdout:?}"))
}

/// Exactly-once through a lossy emulated WAN, two real processes over
/// TCP: dropped data frames are recovered by the adaptive watchdog,
/// raced retransmits are deduped before placement, and the destination
/// file is byte-identical — the paper's reliability claim, end to end.
#[test]
fn two_processes_exactly_once_through_lossy_wan_tcp() {
    let src_path = tmp_path("wan_tcp_src");
    let dst_path = tmp_path("wan_tcp_dst");
    // Fixed size (not SCALE-shrunk): ~512 data frames keep the 1% loss
    // from rounding to zero drops.
    write_test_file(&src_path, (32 << 20) + 4097);

    let (mut sink, addr) =
        spawn_sink(&["--dst-file", dst_path.to_str().unwrap(), "--wan", WAN_SPEC]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--channels", "4", "--block", "64K"])
        .args(["--wan", WAN_SPEC])
        .args(["--src-file", src_path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rftp-live --connect --wan");

    let src_status =
        wait_timeout(&mut source, Duration::from_secs(180)).expect("source process hung");
    let snk_status = wait_timeout(&mut sink, Duration::from_secs(60))
        .expect("sink process hung after source finished");
    // Success implies zero checksum failures on both ends (the binary
    // exits 1 on verification failure).
    assert!(src_status.success(), "source exited {src_status:?}");
    assert!(snk_status.success(), "sink exited {snk_status:?}");

    let mut src_out = String::new();
    source
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut src_out)
        .unwrap();
    assert!(
        count_before(&src_out, "retransmitted") >= 1,
        "1% loss over ~512 frames must exercise the recovery path: {src_out:?}"
    );

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert!(a == b, "destination differs from source through lossy WAN");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

/// The same lossy-WAN exactly-once contract over the io_uring backend.
/// The uring sink's receive path cannot host the shim, so the source
/// carries the whole impairment (`--wan-at-source`: full RTT on its
/// control inbound, loss on its data outbound) — the wire sees the same
/// path either way.
#[test]
fn two_processes_exactly_once_through_lossy_wan_uring() {
    if !uring_or_skip() {
        return;
    }
    let src_path = tmp_path("wan_ur_src");
    let dst_path = tmp_path("wan_ur_dst");
    write_test_file(&src_path, (32 << 20) + 4097);

    let (mut sink, addr) = spawn_sink(&[
        "--transport",
        "uring",
        "--dst-file",
        dst_path.to_str().unwrap(),
    ]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--channels", "4", "--block", "64K"])
        .args(["--wan", WAN_SPEC, "--wan-at-source"])
        .args(["--src-file", src_path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rftp-live --connect --wan --wan-at-source");

    let src_status =
        wait_timeout(&mut source, Duration::from_secs(180)).expect("source process hung");
    let snk_status = wait_timeout(&mut sink, Duration::from_secs(60))
        .expect("sink process hung after source finished");
    assert!(src_status.success(), "source exited {src_status:?}");
    assert!(snk_status.success(), "sink exited {snk_status:?}");

    let mut src_out = String::new();
    source
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut src_out)
        .unwrap();
    assert!(
        count_before(&src_out, "retransmitted") >= 1,
        "1% loss over ~512 frames must exercise the recovery path: {src_out:?}"
    );

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert!(
        a == b,
        "destination differs from source through lossy WAN over io_uring"
    );
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

/// Killing the sink process mid-transfer must fail the source promptly —
/// a broken-pipe style error, not a hang.
#[test]
fn source_fails_cleanly_when_sink_is_killed() {
    let (mut sink, addr) = spawn_sink(&[]);
    // Big pattern-mode payload so the transfer is still in flight when
    // the sink dies.
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--size", "2G", "--channels", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    sink.kill().unwrap();
    sink.wait().unwrap();

    let status = wait_timeout(&mut source, Duration::from_secs(10))
        .expect("source hung after its peer died");
    assert!(!status.success(), "source must report the dead peer");
    let mut err = String::new();
    source
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut err)
        .unwrap();
    assert!(
        err.contains("transfer failed"),
        "source stderr should explain: {err:?}"
    );
}

/// Killing the source process mid-transfer must fail the sink promptly.
#[test]
fn sink_fails_cleanly_when_source_is_killed() {
    let (mut sink, addr) = spawn_sink(&[]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--size", "2G", "--channels", "2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    source.kill().unwrap();
    source.wait().unwrap();

    let status =
        wait_timeout(&mut sink, Duration::from_secs(10)).expect("sink hung after its peer died");
    assert!(!status.success(), "sink must report the dead peer");
}

#[test]
fn two_processes_move_a_file_over_uring() {
    if !uring_or_skip() {
        return;
    }
    let src_path = tmp_path("ur_proc_src");
    let dst_path = tmp_path("ur_proc_dst");
    write_test_file(&src_path, (24 << 20) / SCALE + 4097);

    let (mut sink, addr) = spawn_sink(&[
        "--transport",
        "uring",
        "--dst-file",
        dst_path.to_str().unwrap(),
    ]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--channels", "4", "--block", "128K"])
        .args(["--transport", "uring"])
        .args(["--src-file", src_path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rftp-live --connect --transport uring");

    let src_status =
        wait_timeout(&mut source, Duration::from_secs(120)).expect("source process hung");
    let snk_status = wait_timeout(&mut sink, Duration::from_secs(30))
        .expect("sink process hung after source finished");
    assert!(src_status.success(), "source exited {src_status:?}");
    assert!(snk_status.success(), "sink exited {snk_status:?}");

    let (a, b) = (
        std::fs::read(&src_path).unwrap(),
        std::fs::read(&dst_path).unwrap(),
    );
    assert!(a == b, "destination differs from source across processes");
    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_file(&dst_path);
}

/// Peer death over the uring backend, both directions: the ring's
/// in-flight ops must complete with errors that trip the failure latch,
/// not wedge the driver.
#[test]
fn uring_source_fails_cleanly_when_sink_is_killed() {
    if !uring_or_skip() {
        return;
    }
    let (mut sink, addr) = spawn_sink(&["--transport", "uring"]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--size", "2G", "--channels", "2"])
        .args(["--transport", "uring"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    sink.kill().unwrap();
    sink.wait().unwrap();

    let status = wait_timeout(&mut source, Duration::from_secs(10))
        .expect("uring source hung after its peer died");
    assert!(!status.success(), "source must report the dead peer");
    let mut err = String::new();
    source
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut err)
        .unwrap();
    assert!(
        err.contains("transfer failed"),
        "source stderr should explain: {err:?}"
    );
}

#[test]
fn uring_sink_fails_cleanly_when_source_is_killed() {
    if !uring_or_skip() {
        return;
    }
    let (mut sink, addr) = spawn_sink(&["--transport", "uring"]);
    let mut source = rftp_live_cmd()
        .args(["--connect", &addr, "--size", "2G", "--channels", "2"])
        .args(["--transport", "uring"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));
    source.kill().unwrap();
    source.wait().unwrap();

    let status = wait_timeout(&mut sink, Duration::from_secs(10))
        .expect("uring sink hung after its peer died");
    assert!(!status.success(), "sink must report the dead peer");
}

// ---------------------------------------------------------------------------
// Listener robustness: clients that die (or stall) during negotiation
// must not wedge the accept path.
// ---------------------------------------------------------------------------

/// A client that connects and immediately dies — plus one that sends
/// garbage and stalls — must not wedge the one-shot listener: the next
/// well-behaved source is still served.
#[test]
fn half_dead_clients_cannot_wedge_the_listener() {
    use std::net::TcpStream;

    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Victim 1: connects and dies instantly (EOF mid-hello).
    drop(TcpStream::connect(addr).unwrap());
    // Victim 2: writes garbage and then stalls, holding its socket
    // open — the per-socket hello timeout must cut it loose.
    let mut stall = TcpStream::connect(addr).unwrap();
    stall.write_all(b"NOPE").unwrap();

    // The real source, arriving behind both corpses.
    let cfg = LiveConfig::new(64 * 1024, 2, (8 << 20) / SCALE);
    let src_cfg = cfg.clone();
    let sockbuf = rftp_live::net::default_sockbuf(cfg.block_size, cfg.channel_depth);
    let src = std::thread::spawn(move || {
        let t = connect_source(addr, src_cfg.channels, sockbuf)?;
        run_split_source(&src_cfg, t)
    });

    let (t, first) = listener
        .accept_session(sockbuf)
        .expect("dead clients wedged the listener");
    let snk = run_split_sink(&cfg, t, Some(first)).unwrap();
    src.join().unwrap().unwrap();
    assert_eq!(snk.checksum_failures, 0);
    drop(stall);
}

/// A source that completes its hellos and then goes silent forever must
/// produce a bounded timeout error from `accept_session`, not park the
/// sink. (`connect_source` performs exactly the hello exchange and
/// nothing more until the source half runs.)
#[test]
fn silent_post_hello_client_times_out_the_one_shot_accept() {
    let listener = NetListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let _silent = std::thread::spawn(move || {
        let t = connect_source(addr, 2, 0).unwrap();
        // Hold the connected transport without ever sending the
        // SessionRequest.
        std::thread::sleep(Duration::from_secs(6));
        drop(t);
    });

    let t0 = Instant::now();
    let err = match listener.accept_session(0) {
        Ok(_) => panic!("a silent peer must not be accepted as a session"),
        Err(e) => e,
    };
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout not bounded: {:?}",
        t0.elapsed()
    );
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn unknown_flags_are_rejected_with_usage() {
    let out = rftp_live_cmd().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag --frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "usage text missing: {err}");

    // A flag missing its value is the same class of error.
    let out = rftp_live_cmd().args(["--connect"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // And cross-role flags are refused up front, before any socket opens.
    let out = rftp_live_cmd()
        .args(["--listen", "127.0.0.1:0", "--size", "1M"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
