//! Concurrency fuzz for the native-thread pipeline: random legal
//! configurations must complete byte-exactly with strict in-order
//! delivery, under real scheduler nondeterminism.

use proptest::prelude::*;
use rftp_live::{run_live, LiveConfig};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        // Each case spins up ~10 threads; no shrinking marathon on hangs.
        timeout: 60_000,
    })]

    #[test]
    fn any_legal_live_configuration_completes(
        block_kb in 4u64..=256,
        channels in 1usize..=6,
        loaders in 1usize..=4,
        pool in 2u32..=24,
        depth in 1usize..=8,
        grant in 1u32..=4,
        initial in 1u32..=8,
        notify_imm in any::<bool>(),
        ctrl_batch in 1usize..=16,
        blocks in 1u64..=48,
    ) {
        let block_size = (block_kb * 1024) as usize;
        let mut cfg = LiveConfig::new(
            block_size,
            channels,
            blocks * block_size as u64 - (blocks % 3) * 7, // odd tails
        );
        cfg.pool_blocks = pool;
        cfg.loaders = loaders;
        cfg.channel_depth = depth;
        cfg.grant_per_completion = grant;
        cfg.initial_credits = initial;
        cfg.notify_imm = notify_imm;
        cfg.ctrl_batch = ctrl_batch;
        let r = run_live(&cfg);
        prop_assert_eq!(r.checksum_failures, 0);
        prop_assert_eq!(r.blocks, cfg.total_bytes.div_ceil(block_size as u64));
        prop_assert_eq!(r.bytes, cfg.total_bytes);
    }
}
