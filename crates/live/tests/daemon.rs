//! End-to-end tests for `rftpd`, the multi-session daemon: concurrent
//! sessions over one shared arena, typed admission replies, weighted-
//! fair credits, graceful drain, and crash isolation — all on loopback.

use rftp_live::net::connect_source;
use rftp_live::{
    run_split_source, Daemon, DaemonConfig, DaemonHandle, DaemonReport, DaemonTransport, LiveConfig,
};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Debug builds move bytes ~an order of magnitude slower; shrink the
/// payloads so the suite stays snappy under `cargo test`.
const SCALE: u64 = if cfg!(debug_assertions) { 4 } else { 1 };

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rftpd_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A deterministic test file whose content depends on `seed`, so
/// concurrent sessions carry *different* bytes and a cross-placed block
/// cannot pass the byte-identity check.
fn write_test_file(path: &PathBuf, bytes: u64, seed: u64) {
    let mut f = std::fs::File::create(path).unwrap();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let mut left = bytes;
    while left > 0 {
        for w in chunk.chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            w.copy_from_slice(&x.to_le_bytes());
        }
        let n = left.min(chunk.len() as u64) as usize;
        f.write_all(&chunk[..n]).unwrap();
        left -= n as u64;
    }
}

/// Bind a daemon on loopback and run it on a helper thread. Returns the
/// address, the shutdown handle, and the join handle for the report.
fn start_daemon(
    cfg: DaemonConfig,
) -> (
    std::net::SocketAddr,
    DaemonHandle,
    std::thread::JoinHandle<std::io::Result<DaemonReport>>,
) {
    let d = Daemon::bind("127.0.0.1:0", cfg).unwrap();
    let addr = d.local_addr().unwrap();
    let handle = d.handle();
    let jh = std::thread::spawn(move || d.run());
    (addr, handle, jh)
}

/// One in-process client: connect to the daemon and run the source
/// half. `uring_src` picks the client-side backend — the wire is
/// byte-identical, so either speaks to either daemon transport.
fn run_client(
    addr: std::net::SocketAddr,
    cfg: &LiveConfig,
    uring_src: bool,
) -> std::io::Result<rftp_live::LiveReport> {
    let sockbuf = rftp_live::net::default_sockbuf(cfg.block_size, cfg.channel_depth);
    let t = if uring_src {
        rftp_live::connect_source_uring(addr, cfg.channels, sockbuf)?
    } else {
        connect_source(addr, cfg.channels, sockbuf)?
    };
    run_split_source(cfg, t)
}

/// Shut the daemon down and return its report, asserting the run itself
/// (including the drained-arena slot accounting inside) succeeded.
fn drain(
    handle: &DaemonHandle,
    jh: std::thread::JoinHandle<std::io::Result<DaemonReport>>,
) -> DaemonReport {
    handle.shutdown();
    jh.join()
        .expect("daemon thread panicked (slot leak?)")
        .unwrap()
}

fn base_daemon_cfg() -> DaemonConfig {
    DaemonConfig {
        slot_cap: 64 * 1024,
        arena_slots: 32,
        session_slots: 8,
        max_sessions: 8,
        credit_budget: 32,
        dst_dir: None,
        ..DaemonConfig::default()
    }
}

/// Four sources at once, each with distinct content, through one shared
/// arena — every destination file must match its own source exactly.
fn concurrent_sessions_byte_identical(transport: DaemonTransport, mixed_src: bool, tag: &str) {
    let dir = tmp_dir(tag);
    let mut cfg = base_daemon_cfg();
    cfg.transport = transport;
    cfg.dst_dir = Some(dir.clone());
    let (addr, handle, jh) = start_daemon(cfg);

    let mut clients = Vec::new();
    for i in 0..4u64 {
        // Distinct sizes so each output file pairs with its source by
        // length alone; odd tails exercise the partial last block.
        let bytes = (4 << 20) / SCALE + 4097 + i * 131_072;
        let src = dir.join(format!("src-{i}.dat"));
        write_test_file(&src, bytes, i);
        let mut c = LiveConfig::new(64 * 1024, 2, bytes);
        c.src_file = Some(src.clone());
        let uring_src = mixed_src && i % 2 == 0;
        clients.push((
            src,
            bytes,
            std::thread::spawn(move || run_client(addr, &c, uring_src)),
        ));
    }
    let reports: Vec<_> = clients
        .into_iter()
        .map(|(src, bytes, jh)| (src, bytes, jh.join().unwrap().unwrap()))
        .collect();

    let report = drain(&handle, jh);
    assert_eq!(report.served, 4, "all four admitted: {report:?}");
    assert_eq!(report.completed, 4, "all four completed: {report:?}");
    assert_eq!(report.failed, 0);

    // Pair each session output with its source by file length, then
    // demand byte identity.
    for (src, bytes, _) in &reports {
        let want = std::fs::read(src).unwrap();
        let matching: Vec<PathBuf> = (0..4)
            .map(|n| dir.join(format!("session-{n}.dat")))
            .filter(|p| std::fs::metadata(p).is_ok_and(|m| m.len() == *bytes))
            .collect();
        assert_eq!(
            matching.len(),
            1,
            "exactly one session file of {bytes} bytes"
        );
        let got = std::fs::read(&matching[0]).unwrap();
        assert!(got == want, "session output differs from its source");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_serves_four_concurrent_tcp_sessions_byte_identical() {
    concurrent_sessions_byte_identical(DaemonTransport::Tcp, false, "conc_tcp");
}

#[test]
fn uring_daemon_serves_mixed_backend_sessions_byte_identical() {
    if !rftp_live::uring_supported() {
        eprintln!("skipping: io_uring transport unsupported on this kernel");
        return;
    }
    // Sink sessions on rings, sources alternating tcp/uring backends.
    concurrent_sessions_byte_identical(DaemonTransport::Uring, true, "conc_uring");
}

/// A full session table turns the next source away with a typed
/// `SessionBusy` — promptly, never a hang.
#[test]
fn admission_busy_on_full_session_table_is_typed_and_prompt() {
    let dir = tmp_dir("busy_table");
    let mut cfg = base_daemon_cfg();
    cfg.max_sessions = 1;
    let (addr, handle, jh) = start_daemon(cfg);

    // Occupy the one session slot with a rate-paced bulk transfer
    // (2 MB/s over 1 MB ≈ 0.5 s of held capacity).
    let src = dir.join("bulk.dat");
    write_test_file(&src, 1 << 20, 7);
    let mut bulk = LiveConfig::new(64 * 1024, 2, 1 << 20);
    bulk.src_file = Some(src);
    bulk.src_rate = Some(2.0 * 1024.0 * 1024.0);
    let bulk_jh = std::thread::spawn(move || run_client(addr, &bulk, false));
    std::thread::sleep(Duration::from_millis(150));

    let t0 = Instant::now();
    let err = run_client(addr, &LiveConfig::new(64 * 1024, 2, 1 << 20), false)
        .expect_err("second session must be refused while the table is full");
    let waited = t0.elapsed();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");
    assert!(err.to_string().contains("busy"), "typed busy reply: {err}");
    let bound = Duration::from_millis(if cfg!(debug_assertions) { 1000 } else { 100 });
    assert!(waited < bound, "busy reply took {waited:?}");

    bulk_jh.join().unwrap().expect("bulk session unaffected");
    let report = drain(&handle, jh);
    assert_eq!(report.completed, 1);
    assert_eq!(report.rejected_busy, 1, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An exhausted slot arena (table has room, memory does not) is the
/// same typed busy reply.
#[test]
fn admission_busy_on_exhausted_arena() {
    let dir = tmp_dir("busy_arena");
    let mut cfg = base_daemon_cfg();
    cfg.arena_slots = 8;
    cfg.session_slots = 8; // first session leases the whole arena
    cfg.max_sessions = 4;
    let (addr, handle, jh) = start_daemon(cfg);

    let src = dir.join("bulk.dat");
    write_test_file(&src, 1 << 20, 9);
    let mut bulk = LiveConfig::new(64 * 1024, 2, 1 << 20);
    bulk.src_file = Some(src);
    bulk.src_rate = Some(2.0 * 1024.0 * 1024.0);
    let bulk_jh = std::thread::spawn(move || run_client(addr, &bulk, false));
    std::thread::sleep(Duration::from_millis(150));

    let err = run_client(addr, &LiveConfig::new(64 * 1024, 2, 1 << 20), false)
        .expect_err("no slots left to lease");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused, "{err}");

    bulk_jh.join().unwrap().unwrap();
    let report = drain(&handle, jh);
    assert_eq!(report.rejected_busy, 1, "{report:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Impossible geometry (block larger than any arena slot) is a typed
/// `SessionReject`, distinct from transient busy.
#[test]
fn admission_rejects_oversized_blocks() {
    let mut cfg = base_daemon_cfg();
    cfg.slot_cap = 64 * 1024;
    let (addr, handle, jh) = start_daemon(cfg);

    let err = run_client(addr, &LiveConfig::new(256 * 1024, 2, 1 << 20), false)
        .expect_err("block larger than slot cap");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}");
    assert!(err.to_string().contains("rejected"), "{err}");

    let report = drain(&handle, jh);
    assert_eq!(report.rejected_geometry, 1, "{report:?}");
    assert_eq!(report.served, 0);
}

/// While a bulk transfer saturates the daemon, a small interactive
/// session must still get credits and finish — before the bulk does,
/// and promptly in absolute terms. The weighted-fair arbiter is what
/// makes this hold with a shared credit budget.
#[test]
fn bulk_cannot_starve_interactive_session() {
    let mut cfg = base_daemon_cfg();
    cfg.arena_slots = 16;
    cfg.session_slots = 8;
    cfg.credit_budget = 8; // scarce: bulk alone could hold all of it
    cfg.interactive_cutoff = 1 << 20;
    cfg.interactive_weight = 8;
    let (addr, handle, jh) = start_daemon(cfg);

    let bulk_done = Arc::new(AtomicBool::new(false));
    let bulk_bytes = (256 << 20) / SCALE;
    let bulk_jh = {
        let done = Arc::clone(&bulk_done);
        std::thread::spawn(move || {
            let r = run_client(addr, &LiveConfig::new(64 * 1024, 2, bulk_bytes), false);
            done.store(true, Ordering::Release);
            r
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    let t0 = Instant::now();
    let interactive = run_client(addr, &LiveConfig::new(64 * 1024, 1, 128 * 1024), false);
    let latency = t0.elapsed();
    let bulk_was_running = !bulk_done.load(Ordering::Acquire);
    interactive.expect("interactive session failed");
    bulk_jh.join().unwrap().expect("bulk session failed");
    let report = drain(&handle, jh);

    assert_eq!(report.completed, 2, "{report:?}");
    assert!(
        bulk_was_running,
        "bulk finished before the interactive session even started — \
         grow bulk_bytes, the test never exercised contention"
    );
    assert!(
        latency < Duration::from_secs(2),
        "interactive session starved behind bulk: {latency:?}"
    );
}

/// SIGTERM starts a graceful drain: the in-flight session finishes and
/// the daemon exits with clean slot accounting (asserted inside
/// `Daemon::run`).
#[test]
fn sigterm_drains_in_flight_session_then_exits() {
    let dir = tmp_dir("sigterm");
    let mut cfg = base_daemon_cfg();
    cfg.dst_dir = Some(dir.clone());
    let (addr, handle, jh) = start_daemon(cfg);
    rftp_live::install_sigterm_hook(&handle);

    // A rate-paced session that is still mid-flight at signal time.
    let src = dir.join("src.dat");
    write_test_file(&src, 1 << 20, 3);
    let mut c = LiveConfig::new(64 * 1024, 2, 1 << 20);
    c.src_file = Some(src.clone());
    c.src_rate = Some(2.0 * 1024.0 * 1024.0);
    let client = std::thread::spawn(move || run_client(addr, &c, false));
    std::thread::sleep(Duration::from_millis(150));

    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    unsafe {
        raise(15); // SIGTERM — the installed hook turns it into a drain
    }

    client
        .join()
        .unwrap()
        .expect("in-flight session must finish");
    let report = jh.join().unwrap().unwrap();
    assert_eq!(report.completed, 1, "{report:?}");
    assert_eq!(report.failed, 0);
    let want = std::fs::read(&src).unwrap();
    let got = std::fs::read(dir.join("session-0.dat")).unwrap();
    assert!(got == want, "drained session's bytes differ");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A source that dies mid-transfer fails its own session and nothing
/// else: the concurrent good session completes byte-identical, and the
/// crashed session's slots return to the arena (asserted at drain).
#[test]
fn session_crash_does_not_corrupt_neighbors() {
    let dir = tmp_dir("crash");
    let mut cfg = base_daemon_cfg();
    cfg.dst_dir = Some(dir.clone());
    let (addr, handle, jh) = start_daemon(cfg);

    // The victim: a separate OS process we can kill mid-flight.
    let mut crasher = std::process::Command::new(env!("CARGO_BIN_EXE_rftp-live"))
        .args(["--connect", &addr.to_string(), "--size", "2G"])
        .args(["--channels", "2", "--block", "64K"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // The neighbor: an in-process paced session overlapping the crash.
    let src = dir.join("good.dat");
    let bytes = (2 << 20) / SCALE + 999;
    write_test_file(&src, bytes, 11);
    let mut c = LiveConfig::new(64 * 1024, 2, bytes);
    c.src_file = Some(src.clone());
    let good = std::thread::spawn(move || run_client(addr, &c, false));
    std::thread::sleep(Duration::from_millis(100));

    crasher.kill().unwrap();
    crasher.wait().unwrap();

    good.join().unwrap().expect("neighbor session failed");
    let report = drain(&handle, jh);
    assert_eq!(report.completed, 1, "{report:?}");
    assert_eq!(report.failed, 1, "the crashed session is accounted");

    let want = std::fs::read(&src).unwrap();
    let good_out: Vec<PathBuf> = (0..2)
        .map(|n| dir.join(format!("session-{n}.dat")))
        .filter(|p| std::fs::metadata(p).is_ok_and(|m| m.len() == bytes))
        .collect();
    assert_eq!(good_out.len(), 1);
    let got = std::fs::read(&good_out[0]).unwrap();
    assert!(got == want, "neighbor bytes corrupted by the crash");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Back-to-back sessions reuse the same warm daemon — and the same
/// arena slots. The drain's accounting assert proves nothing leaked
/// across reuse.
#[test]
fn sequential_sessions_reuse_the_arena() {
    let mut cfg = base_daemon_cfg();
    cfg.arena_slots = 8;
    cfg.session_slots = 8; // every session leases the entire arena
    let (addr, handle, jh) = start_daemon(cfg);

    for i in 0..3 {
        let bytes = (2 << 20) / SCALE + i * 64 * 1024;
        let cfg = LiveConfig::new(64 * 1024, 2, bytes);
        // The previous session's sink thread may still be returning its
        // lease when we dial back in — a window the daemon answers with
        // a typed busy + retry hint. Behave like a real client: retry.
        let mut attempt = 0;
        loop {
            match run_client(addr, &cfg, false) {
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused && attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("sequential session {i}: {e}"),
            }
        }
    }
    let report = drain(&handle, jh);
    assert_eq!(report.served, 3, "{report:?}");
    assert_eq!(report.completed, 3);
}
