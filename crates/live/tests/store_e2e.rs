//! End-to-end tests of the disk-to-disk fast path: real files through
//! the real thread pipeline, byte integrity checked at the file level
//! (the pipeline's consumer only validates headers in file mode).

use rftp_core::pattern::checksum;
use rftp_core::wire::PAYLOAD_HEADER_LEN as HDR;
use rftp_live::{try_run_live, FileSink, FileSource, LiveConfig, SlotBuf, STORE_ALIGN};
use std::path::PathBuf;

/// Scratch directory: tmpfs when the host has it (fast, and the medium
/// the bench gates run on), the system temp dir otherwise.
fn scratch(name: &str) -> PathBuf {
    let base = PathBuf::from("/dev/shm");
    let dir = if base.is_dir() {
        base
    } else {
        std::env::temp_dir()
    };
    dir.join(format!("rftp_e2e_{}_{name}", std::process::id()))
}

/// Deterministic, position-dependent bytes — NOT the pipeline's seeded
/// pattern, so a test passing cannot be the consumer's pattern checksum
/// accidentally covering for broken file plumbing.
fn write_source(path: &PathBuf, total: u64) {
    let mut data = Vec::with_capacity(total as usize);
    let mut x = 0x9E3779B97F4A7C15u64 ^ total;
    while (data.len() as u64) < total {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        data.extend_from_slice(&x.to_le_bytes());
    }
    data.truncate(total as usize);
    std::fs::write(path, &data).expect("write source");
}

fn file_checksum(path: &PathBuf) -> (u64, u64) {
    let data = std::fs::read(path).expect("read back");
    (data.len() as u64, checksum(&data))
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

/// The acceptance-criteria transfer: >= 256 MiB, file to file, byte
/// identical. Uses an unaligned total so the tail block exercises the
/// buffered fallback even when O_DIRECT engages.
#[test]
fn transfer_256mib_is_byte_identical() {
    let total: u64 = (256 << 20) + 12_345;
    let src = scratch("big_src");
    let dst = scratch("big_dst");
    write_source(&src, total);

    let mut cfg = LiveConfig::new(256 << 10, 8, total);
    cfg.loaders = 2;
    cfg.pool_blocks = 32;
    cfg.src_file = Some(src.clone());
    cfg.dst_file = Some(dst.clone());
    let r = try_run_live(&cfg).expect("transfer failed");
    assert_eq!(r.bytes, total);
    assert_eq!(r.checksum_failures, 0, "header validation failed");
    assert!(r.stages.flush_ns > 0.0, "write-behind clock never ticked");

    assert_eq!(
        file_checksum(&src),
        file_checksum(&dst),
        "destination must be byte-identical to source"
    );
    cleanup(&[&src, &dst]);
}

/// Satellite: seeded-shuffle out-of-order delivery into the file sink.
/// Sparse positioned writes are the reassembly, so any delivery order
/// must produce the same bytes as in-order delivery and as the source.
#[test]
fn shuffled_placement_matches_in_order_and_source() {
    let block = 4096usize;
    let blocks = 64u64;
    let total = blocks * block as u64 + 777; // unaligned tail block
    let src = scratch("shuffle_src");
    let in_order = scratch("shuffle_inorder");
    let shuffled = scratch("shuffle_shuffled");
    write_source(&src, total);
    let data = std::fs::read(&src).unwrap();

    let order: Vec<usize> = {
        // Fisher–Yates with a fixed-seed xorshift: same shuffle every run.
        let mut order: Vec<usize> = (0..data.len().div_ceil(block)).collect();
        let mut x = 0xC0FFEEu64;
        for i in (1..order.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        order
    };
    assert_ne!(
        order,
        (0..order.len()).collect::<Vec<_>>(),
        "shuffle degenerate"
    );

    for (path, seqs) in [
        (&in_order, (0..order.len()).collect::<Vec<_>>()),
        (&shuffled, order),
    ] {
        let sink = FileSink::create(path, total, true).expect("create sink");
        for seq in seqs {
            let off = seq * block;
            let end = (off + block).min(data.len());
            sink.write_block(&data[off..end], off as u64)
                .expect("pwrite");
        }
        sink.sync().expect("fdatasync");
    }

    let want = file_checksum(&src);
    assert_eq!(
        file_checksum(&in_order),
        want,
        "in-order placement broke bytes"
    );
    assert_eq!(
        file_checksum(&shuffled),
        want,
        "shuffled placement broke bytes"
    );
    cleanup(&[&src, &in_order, &shuffled]);
}

/// Satellite: fault injection x file sink. Retransmit duplicates must be
/// discarded by the placement-bitmap claim *before* the pwrite — a
/// double-write could land after the slot was re-granted and corrupt the
/// file, so byte identity under heavy loss is the proof the claim gates
/// the flush.
#[test]
fn fault_drops_never_double_write_the_file() {
    let total: u64 = 8 << 20;
    let src = scratch("fault_src");
    let dst = scratch("fault_dst");
    write_source(&src, total);

    let mut cfg = LiveConfig::new(32 << 10, 2, total);
    cfg.pool_blocks = 8;
    cfg.loaders = 2;
    cfg.fault_drop_p = 0.2;
    cfg.fault_seed = 7;
    cfg.retx_timeout = std::time::Duration::from_millis(25);
    cfg.src_file = Some(src.clone());
    cfg.dst_file = Some(dst.clone());
    let r = try_run_live(&cfg).expect("transfer failed");
    assert!(r.dropped_payloads >= 1, "fault injector never fired");
    assert!(
        r.retransmits >= r.dropped_payloads,
        "every drop needs a re-send"
    );
    assert_eq!(
        file_checksum(&src),
        file_checksum(&dst),
        "file corrupted under loss: a duplicate must have out-raced its claim"
    );
    cleanup(&[&src, &dst]);
}

/// readahead = 0 (no disk/network overlap — the ablation leg of the
/// bench gate) must still complete and produce identical bytes.
#[test]
fn zero_readahead_serializes_but_completes() {
    let total: u64 = 4 << 20;
    let src = scratch("ra0_src");
    let dst = scratch("ra0_dst");
    write_source(&src, total);

    let mut cfg = LiveConfig::new(64 << 10, 4, total);
    cfg.src_file = Some(src.clone());
    cfg.dst_file = Some(dst.clone());
    cfg.readahead = 0;
    let r = try_run_live(&cfg).expect("transfer failed");
    assert_eq!(r.blocks, 64);
    assert_eq!(file_checksum(&src), file_checksum(&dst));
    cleanup(&[&src, &dst]);
}

/// `--direct` must work wherever the test runs: either O_DIRECT engages
/// or the buffered fallback serves the transfer — bytes identical in
/// both cases, and the report says which path was taken.
#[test]
fn direct_flag_degrades_gracefully() {
    let total: u64 = (4 << 20) + 999; // force an unaligned tail
    let src = scratch("direct_src");
    let dst = scratch("direct_dst");
    write_source(&src, total);

    let mut cfg = LiveConfig::new(256 << 10, 4, total);
    cfg.src_file = Some(src.clone());
    cfg.dst_file = Some(dst.clone());
    cfg.direct_io = true;
    let r = try_run_live(&cfg).expect("transfer failed");
    // Either outcome is legal; the flag must never break the bytes.
    let _ = r.direct_io_active;
    assert_eq!(file_checksum(&src), file_checksum(&dst));
    cleanup(&[&src, &dst]);
}

/// Pattern source into a file sink: the mixed mode (memory-to-disk).
#[test]
fn pattern_to_file_writes_the_seeded_pattern() {
    let total: u64 = 2 << 20;
    let dst = scratch("p2f_dst");
    let mut cfg = LiveConfig::new(64 << 10, 2, total);
    cfg.dst_file = Some(dst.clone());
    let r = try_run_live(&cfg).expect("transfer failed");
    assert_eq!(r.checksum_failures, 0);

    // Rebuild the expected pattern stream and compare.
    let data = std::fs::read(&dst).unwrap();
    assert_eq!(data.len() as u64, total);
    let mut want = vec![0u8; total as usize];
    for (seq, chunk) in want.chunks_mut(64 << 10).enumerate() {
        rftp_core::pattern::fill_pattern(chunk, rftp_core::engine::pattern_seed(1, seq as u32));
    }
    assert_eq!(
        checksum(&data),
        checksum(&want),
        "sink file must hold the pattern"
    );
    cleanup(&[&dst]);
}

/// A short source file is a storage error, not a panic.
#[test]
fn short_source_is_an_error() {
    let src = scratch("short_src");
    write_source(&src, 4096);
    let mut cfg = LiveConfig::new(4096, 1, 8192);
    cfg.src_file = Some(src.clone());
    let err = try_run_live(&cfg).expect_err("short source must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    cleanup(&[&src]);
}

/// File-to-file with O_DIRECT-compatible aligned buffers end to end:
/// a SlotBuf round trip through FileSource/FileSink at the store layer,
/// plus alignment invariants the pipeline relies on.
#[test]
fn store_layer_slotbuf_roundtrip() {
    let src = scratch("layer_src");
    write_source(&src, 64 * 1024);
    let reader = FileSource::open(&src, true).expect("open");
    let mut buf = SlotBuf::new(16 * 1024);
    assert_eq!(buf[HDR..].as_ptr() as usize % STORE_ALIGN, 0);
    reader
        .read_block(&mut buf[HDR..], 16 * 1024, 16 * 1024)
        .expect("read");
    let data = std::fs::read(&src).unwrap();
    assert_eq!(&buf[HDR..HDR + 16 * 1024], &data[16 * 1024..32 * 1024]);
    cleanup(&[&src]);
}
