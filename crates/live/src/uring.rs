//! io_uring backend for the split pipeline: one ring per side — and
//! under the daemon, one ring for every session.
//!
//! The TCP backend ([`crate::net`]) spends a thread per link — N
//! receivers plus a control pump at the sink, and a blocking `writev`
//! per block at the source. This module keeps the exact same wire
//! format (the hello exchange and the `[DataFrameHeader | wire image]`
//! stream records of PROTOCOL.md §7 — a uring source interoperates with
//! a TCP sink and vice versa) but drives all N+1 sockets of a session
//! through **one io_uring**:
//!
//! * the pinned slot pool is registered with the kernel once as *fixed
//!   buffers* (`IORING_REGISTER_BUFFERS`) — the userspace analogue of
//!   RDMA memory registration — so every data send/receive is
//!   `WRITE_FIXED`/`READ_FIXED` naming a buffer index instead of
//!   re-pinning pages per call;
//! * the source queues one `WRITE_FIXED` per block (frame header
//!   written into the slot's dead space, so header + wire image is a
//!   single contiguous SQE) and submits the whole dispatcher drain with
//!   one `io_uring_enter` — the doorbell ([`DataTx::kick`]); one reaper
//!   thread retires completions for every channel;
//! * the sink runs a **single driver thread** for all data links. On
//!   kernels with `IORING_RECV_MULTISHOT` + provided-buffer rings
//!   (probed live via a socketpair round-trip, [`multishot_probe`])
//!   each data socket is armed once and the kernel keeps posting CQEs,
//!   picking buffers from a registered pbuf ring; the driver
//!   reassembles frames from the byte runs, copies payload to the
//!   credited slot, recycles buffers by bumping the ring tail, re-arms
//!   on `!F_MORE`, and parks/recovers links on `ENOBUFS` (un-starving
//!   runs at every CQE-batch boundary). Older kernels — or
//!   `RFTP_URING_MULTISHOT=0` — fall back to header-first re-armed
//!   reads (16 bytes of `DataFrameHeader`, routed *before* the payload
//!   read is committed `READ_FIXED` into the credited slot, or into a
//!   scratch buffer for duplicates). Either way control frames are
//!   read off the same ring and the ack/credit dwell is
//!   `IORING_ENTER_EXT_ARG` timed waits feeding the shared
//!   [`drain_coalesced`] loop;
//! * the daemon ([`crate::daemon`]) shares ONE ring and ONE driver
//!   thread ([`MultiDriver`]) across every admitted session: the whole
//!   slot arena is registered once at startup, leases map to
//!   fixed-buffer indices (admission never re-registers), CQEs demux
//!   by `user_data = sid << 32 | link`, and per-session mailboxes
//!   carry events to session threads — cross-session completion
//!   batching means one `GETEVENTS` drains arrivals for all sessions
//!   (`RFTP_URING_SHARED=0` restores ring-per-session);
//! * `IORING_SETUP_SQPOLL` and `IORING_OP_SEND_ZC` are probed at ring
//!   setup and used only when supported *and* opted into
//!   (`RFTP_URING_SQPOLL=1` / `RFTP_URING_ZC=1`), degrading cleanly to
//!   plain submission and `WRITE_FIXED` otherwise.
//!
//! Everything is raw syscalls (`io_uring_setup`/`enter`/`register` are
//! 425/426/427 on every Linux architecture) over `extern "C"` shims —
//! the workspace links no FFI crate, matching the raw `setsockopt` in
//! [`crate::net`]. [`uring_supported`] probes the running kernel; on
//! non-Linux targets or old kernels every entry point reports
//! `Unsupported` and callers fall back to the TCP backend.

#[cfg(target_os = "linux")]
pub use linux::{
    accept_source_uring, connect_source_uring, run_uring_sink, uring_multishot, uring_supported,
    UringSinkSession,
};
#[cfg(target_os = "linux")]
pub(crate) use linux::{
    run_shared_uring_session, run_uring_session, spawn_shared_uring_driver, UringHub,
};

#[cfg(target_os = "linux")]
mod linux {
    use crate::coalesce::{channel_events, drain_coalesced, CoalescedSink, DrainEnd};
    use crate::hist::{NsHist, StageTails};
    use crate::net::{
        connect_streams, shutdown_all, NetCtrlRx, NetCtrlTx, NetListener, SessionStreams,
    };
    use crate::pipeline::{
        AtomicBitmap, LiveConfig, LiveReport, SnkBackend, StageBreakdown, SESSION,
    };
    use crate::split::{perr, Controller, Fail, FairShare, SinkEvt, SinkHandler};
    use crate::store::SlotBuf;
    use crate::transport::{BufPool, DataTx, SourceTransport, UringStats};
    use parking_lot::Mutex;
    use rftp_core::wire::{CtrlMsg, DataFrameHeader, DATA_FRAME_HEADER_LEN, PAYLOAD_HEADER_LEN};
    use rftp_core::{AtomicSinkPool, Granter, PoolGeometry};
    use std::collections::{HashMap, VecDeque};
    use std::io;
    use std::net::{Shutdown, TcpStream, ToSocketAddrs};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU16, AtomicU32, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // -----------------------------------------------------------------
    // Raw io_uring ABI (uapi/linux/io_uring.h)
    // -----------------------------------------------------------------

    const SYS_IO_URING_SETUP: i64 = 425;
    const SYS_IO_URING_ENTER: i64 = 426;
    const SYS_IO_URING_REGISTER: i64 = 427;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const IORING_SETUP_SQPOLL: u32 = 1 << 1;
    /// Don't interrupt the ring owner signal-style to run completion
    /// task-work; batch it onto the next kernel transition (5.19+).
    const IORING_SETUP_COOP_TASKRUN: u32 = 1 << 8;
    const IORING_SETUP_SINGLE_ISSUER: u32 = 1 << 12;
    /// Run completion task-work only inside `GETEVENTS` enters — the
    /// strictest batching; requires `SINGLE_ISSUER` (6.1+).
    const IORING_SETUP_DEFER_TASKRUN: u32 = 1 << 13;

    const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
    const IORING_ENTER_SQ_WAKEUP: u32 = 1 << 1;
    const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

    const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
    const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

    const IORING_REGISTER_BUFFERS: u32 = 0;
    const IORING_REGISTER_PROBE: u32 = 8;
    /// Register a provided-buffer ring for a buffer group (5.19+).
    const IORING_REGISTER_PBUF_RING: u32 = 22;

    const IORING_SQ_NEED_WAKEUP: u32 = 1 << 0;

    /// The armed op stays armed (multishot) / a sibling CQE is owed.
    const IORING_CQE_F_MORE: u32 = 1 << 1;
    const IORING_CQE_F_NOTIF: u32 = 1 << 3;
    /// The CQE consumed a provided buffer; its id is in the high bits
    /// of `Cqe::flags`.
    const IORING_CQE_F_BUFFER: u32 = 1 << 0;
    const IORING_CQE_BUFFER_SHIFT: u32 = 16;

    const IORING_OP_NOP: u8 = 0;
    const IORING_OP_READ_FIXED: u8 = 4;
    const IORING_OP_WRITE_FIXED: u8 = 5;
    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_OP_RECV: u8 = 27;
    const IORING_OP_SEND_ZC: u8 = 47;

    /// `SEND_ZC` flag in `Sqe::ioprio`: the buffer is a registered one,
    /// named by `buf_index`.
    const IORING_RECVSEND_FIXED_BUF: u16 = 1 << 2;
    /// `RECV` flag in `Sqe::ioprio`: keep the receive armed across
    /// completions — one SQE, many CQEs (6.0+).
    const IORING_RECV_MULTISHOT: u16 = 1 << 1;
    /// `Sqe::flags`: the kernel picks the receive buffer from the
    /// provided-buffer group named by `Sqe::buf_index`.
    const IOSQE_BUFFER_SELECT: u8 = 1 << 5;

    const ETIME: i32 = 62;
    /// The provided-buffer group ran dry: the multishot receive
    /// terminates and must be re-armed once buffers are recycled.
    const ENOBUFS: i32 = 105;
    /// The kernel can drop a poll-armed socket op with `-ECANCELED`
    /// without transferring any bytes (poll races on busy streams).
    /// Such ops are resubmitted verbatim, not treated as link failure.
    const ECANCELED: i32 = 125;

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct IoUringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// One 64-byte submission queue entry (the non-`SQE128` layout).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        op_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        addr3: u64,
        _pad2: u64,
    }

    /// One 16-byte completion queue entry.
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    #[repr(C)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    /// `IORING_ENTER_EXT_ARG` payload: a timed `GETEVENTS` wait.
    #[repr(C)]
    struct GeteventsArg {
        sigmask: u64,
        sigmask_sz: u32,
        pad: u32,
        ts: u64,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    mod sys {
        use core::ffi::{c_long, c_void};
        extern "C" {
            pub fn syscall(num: c_long, ...) -> c_long;
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                off: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        }
    }

    // -----------------------------------------------------------------
    // Ring core
    // -----------------------------------------------------------------

    struct MmapRegion {
        ptr: *mut u8,
        len: usize,
    }

    impl MmapRegion {
        fn map(fd: i32, len: usize, off: i64) -> io::Result<MmapRegion> {
            const PROT_RW: i32 = 0x3;
            const MAP_SHARED_POPULATE: i32 = 0x1 | 0x8000;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_RW,
                    MAP_SHARED_POPULATE,
                    fd,
                    off,
                )
            };
            if ptr as i64 == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion {
                ptr: ptr as *mut u8,
                len,
            })
        }

        /// # Safety
        /// `off` must lie inside the mapping (callers use kernel-supplied
        /// ring offsets, which do).
        unsafe fn at(&self, off: u32) -> *mut u8 {
            debug_assert!((off as usize) < self.len);
            self.ptr.add(off as usize)
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            unsafe {
                sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }

    /// One io_uring instance: fd, mapped rings, and raw pointers into
    /// them. SQ production must be externally serialized (the source
    /// holds its submit lock; the sink driver is single-threaded); CQ
    /// consumption is single-consumer (reaper thread / sink driver).
    /// Kernel-shared indices are accessed as atomics.
    ///
    /// The mappings are unmapped on drop — owners must quiesce first
    /// (no in-flight operations), or the kernel could complete an op
    /// into memory the allocator has already reused.
    struct Ring {
        fd: OwnedFd,
        features: u32,
        setup_flags: u32,
        sq_entries: u32,
        sq_mask: u32,
        cq_mask: u32,
        sq_khead: *const AtomicU32,
        sq_ktail: *const AtomicU32,
        sq_kflags: *const AtomicU32,
        sq_array: *mut u32,
        cq_khead: *const AtomicU32,
        cq_ktail: *const AtomicU32,
        cq_cqes: *const Cqe,
        sqes: *mut Sqe,
        /// `io_uring_enter` calls made (diagnostics; see
        /// `RFTP_URING_STATS`).
        enters: AtomicU64,
        /// `IORING_REGISTER_BUFFERS` calls on this ring.
        registers: AtomicU64,
        /// CQEs reaped (diagnostics).
        reaped: AtomicU64,
        // Held for Drop; the raw pointers above point into these.
        _sq_map: MmapRegion,
        _cq_map: Option<MmapRegion>,
        _sqes_map: MmapRegion,
    }

    // SAFETY: see the struct docs — SQ writes are serialized by the
    // owners, CQ reads are single-consumer, and the shared head/tail
    // words are only touched through atomics.
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    impl Ring {
        fn new(entries: u32, setup_flags: u32) -> io::Result<Ring> {
            let mut p = IoUringParams {
                flags: setup_flags,
                ..Default::default()
            };
            if setup_flags & IORING_SETUP_SQPOLL != 0 {
                p.sq_thread_idle = 50; // ms before the poller thread sleeps
            }
            let r = unsafe {
                sys::syscall(
                    SYS_IO_URING_SETUP as core::ffi::c_long,
                    entries as usize,
                    &mut p as *mut IoUringParams,
                )
            };
            if r < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = unsafe { OwnedFd::from_raw_fd(r as i32) };
            let raw = fd.as_raw_fd();

            let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
            let cq_len =
                p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
            let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
            let sq_map = MmapRegion::map(
                raw,
                if single { sq_len.max(cq_len) } else { sq_len },
                IORING_OFF_SQ_RING,
            )?;
            let cq_map = if single {
                None
            } else {
                Some(MmapRegion::map(raw, cq_len, IORING_OFF_CQ_RING)?)
            };
            let sqes_map = MmapRegion::map(
                raw,
                p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;

            let cq_base = cq_map.as_ref().unwrap_or(&sq_map);
            unsafe {
                Ok(Ring {
                    features: p.features,
                    setup_flags: p.flags,
                    sq_entries: p.sq_entries,
                    sq_mask: *(sq_map.at(p.sq_off.ring_mask) as *const u32),
                    cq_mask: *(cq_base.at(p.cq_off.ring_mask) as *const u32),
                    sq_khead: sq_map.at(p.sq_off.head) as *const AtomicU32,
                    sq_ktail: sq_map.at(p.sq_off.tail) as *const AtomicU32,
                    sq_kflags: sq_map.at(p.sq_off.flags) as *const AtomicU32,
                    sq_array: sq_map.at(p.sq_off.array) as *mut u32,
                    cq_khead: cq_base.at(p.cq_off.head) as *const AtomicU32,
                    cq_ktail: cq_base.at(p.cq_off.tail) as *const AtomicU32,
                    cq_cqes: cq_base.at(p.cq_off.cqes) as *const Cqe,
                    sqes: sqes_map.ptr as *mut Sqe,
                    fd,
                    enters: AtomicU64::new(0),
                    registers: AtomicU64::new(0),
                    reaped: AtomicU64::new(0),
                    _sq_map: sq_map,
                    _cq_map: cq_map,
                    _sqes_map: sqes_map,
                })
            }
        }

        fn enter(
            &self,
            to_submit: u32,
            min_complete: u32,
            flags: u32,
            arg: *const core::ffi::c_void,
            argsz: usize,
        ) -> io::Result<u32> {
            self.enters.fetch_add(1, Ordering::Relaxed);
            loop {
                let r = unsafe {
                    sys::syscall(
                        SYS_IO_URING_ENTER as core::ffi::c_long,
                        self.fd.as_raw_fd() as usize,
                        to_submit as usize,
                        min_complete as usize,
                        flags as usize,
                        arg,
                        argsz,
                    )
                };
                if r >= 0 {
                    return Ok(r as u32);
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
        }

        fn register(&self, opcode: u32, arg: *const core::ffi::c_void, nr: u32) -> io::Result<()> {
            let r = unsafe {
                sys::syscall(
                    SYS_IO_URING_REGISTER as core::ffi::c_long,
                    self.fd.as_raw_fd() as usize,
                    opcode as usize,
                    arg,
                    nr as usize,
                )
            };
            if r < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Queue one SQE without telling the kernel (callers batch a
        /// [`Ring::submit`] per drain — the doorbell). Returns `false`
        /// when the SQ is full: submit, then retry.
        fn sq_push(&self, sqe: &Sqe) -> bool {
            unsafe {
                let head = (*self.sq_khead).load(Ordering::Acquire);
                let tail = (*self.sq_ktail).load(Ordering::Relaxed);
                if tail.wrapping_sub(head) >= self.sq_entries {
                    return false;
                }
                let idx = tail & self.sq_mask;
                *self.sqes.add(idx as usize) = *sqe;
                *self.sq_array.add(idx as usize) = idx;
                (*self.sq_ktail).store(tail.wrapping_add(1), Ordering::Release);
                true
            }
        }

        /// Hand `queued` SQEs to the kernel. With `SQPOLL` the poller
        /// thread picks them up on its own and this only rings the
        /// wakeup doorbell when it has gone to sleep.
        fn submit(&self, queued: u32) -> io::Result<()> {
            if self.setup_flags & IORING_SETUP_SQPOLL != 0 {
                let flags = unsafe { (*self.sq_kflags).load(Ordering::Acquire) };
                if flags & IORING_SQ_NEED_WAKEUP != 0 {
                    self.enter(0, 0, IORING_ENTER_SQ_WAKEUP, std::ptr::null(), 0)?;
                }
                return Ok(());
            }
            let mut left = queued;
            while left > 0 {
                left -= self.enter(left, 0, 0, std::ptr::null(), 0)?;
            }
            Ok(())
        }

        fn cq_ready(&self) -> u32 {
            unsafe {
                (*self.cq_ktail)
                    .load(Ordering::Acquire)
                    .wrapping_sub((*self.cq_khead).load(Ordering::Relaxed))
            }
        }

        /// Block until at least one CQE is available. `Ok(false)` means
        /// the `timeout` (an `EXT_ARG` timed wait) expired first.
        fn wait(&self, timeout: Option<Duration>) -> io::Result<bool> {
            if self.cq_ready() > 0 {
                return Ok(true);
            }
            match timeout {
                None => {
                    self.enter(0, 1, IORING_ENTER_GETEVENTS, std::ptr::null(), 0)?;
                    Ok(true)
                }
                Some(w) => {
                    let ts = Timespec {
                        tv_sec: w.as_secs() as i64,
                        tv_nsec: w.subsec_nanos() as i64,
                    };
                    let arg = GeteventsArg {
                        sigmask: 0,
                        sigmask_sz: 0,
                        pad: 0,
                        ts: &ts as *const Timespec as u64,
                    };
                    let r = self.enter(
                        0,
                        1,
                        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                        &arg as *const GeteventsArg as *const core::ffi::c_void,
                        std::mem::size_of::<GeteventsArg>(),
                    );
                    match r {
                        Ok(_) => Ok(true),
                        Err(e) if e.raw_os_error() == Some(ETIME) => Ok(false),
                        Err(e) => Err(e),
                    }
                }
            }
        }

        /// Hand `queued` SQEs to the kernel *and* block for at least one
        /// CQE with a single `io_uring_enter` — the hot-path doorbell
        /// and wakeup fused into one syscall. Timed (dwell) waits keep
        /// the two-syscall shape: a `-ETIME` return would leave the
        /// submitted count ambiguous.
        fn submit_and_wait(&self, queued: u32) -> io::Result<()> {
            if self.setup_flags & IORING_SETUP_SQPOLL != 0 {
                self.submit(queued)?;
                self.wait(None)?;
                return Ok(());
            }
            let mut left = queued;
            loop {
                let flags = if self.cq_ready() > 0 {
                    0 // nothing to wait for; just flush the SQ
                } else {
                    IORING_ENTER_GETEVENTS
                };
                if left == 0 && flags == 0 {
                    return Ok(());
                }
                left -= self.enter(left, 1, flags, std::ptr::null(), 0)?;
                if left == 0 {
                    return Ok(());
                }
            }
        }

        /// Drain every available CQE into `out`; returns how many.
        fn reap(&self, out: &mut Vec<Cqe>) -> usize {
            unsafe {
                let tail = (*self.cq_ktail).load(Ordering::Acquire);
                let mut head = (*self.cq_khead).load(Ordering::Relaxed);
                let n = tail.wrapping_sub(head);
                out.reserve(n as usize);
                for _ in 0..n {
                    out.push(*self.cq_cqes.add((head & self.cq_mask) as usize));
                    head = head.wrapping_add(1);
                }
                (*self.cq_khead).store(head, Ordering::Release);
                self.reaped.fetch_add(n as u64, Ordering::Relaxed);
                n as usize
            }
        }

        /// Register every slot of a pinned pool as a fixed buffer,
        /// indexed by pool block — the MR-registration analogue. Takes
        /// a borrowed buffer view so a daemon session can register the
        /// arena slots it leased rather than a pool it owns.
        fn register_pool(&self, bufs: &[&Mutex<SlotBuf>]) -> io::Result<()> {
            if bufs.len() >= OWNED_BUF as usize || bufs.len() > 1024 {
                return Err(perr(format!(
                    "pool of {} blocks exceeds the fixed-buffer limit",
                    bufs.len()
                )));
            }
            let iovecs: Vec<IoVec> = bufs
                .iter()
                .map(|b| {
                    let (base, len) = b.lock().registration_parts();
                    IoVec {
                        base: base as *mut core::ffi::c_void,
                        len,
                    }
                })
                .collect();
            self.register(
                IORING_REGISTER_BUFFERS,
                iovecs.as_ptr() as *const core::ffi::c_void,
                iovecs.len() as u32,
            )?;
            self.registers.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        /// Which opcodes the kernel supports (`IORING_REGISTER_PROBE`).
        fn probe_op_supported(&self, ops: &[u8]) -> io::Result<Vec<bool>> {
            const NOPS: usize = 64;
            // struct io_uring_probe: 16-byte header + 8 bytes per op.
            let mut raw = [0u8; 16 + NOPS * 8];
            self.register(
                IORING_REGISTER_PROBE,
                raw.as_mut_ptr() as *const core::ffi::c_void,
                NOPS as u32,
            )?;
            let last_op = raw[0] as usize;
            Ok(ops
                .iter()
                .map(|&op| {
                    let op = op as usize;
                    const IO_URING_OP_SUPPORTED: u8 = 1;
                    op <= last_op && op < NOPS && raw[16 + op * 8 + 2] & IO_URING_OP_SUPPORTED != 0
                })
                .collect())
        }
    }

    // -----------------------------------------------------------------
    // Provided-buffer ring (multishot receive backing)
    // -----------------------------------------------------------------

    /// One entry of a provided-buffer ring (`struct io_uring_buf`).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct PbufEntry {
        addr: u64,
        len: u32,
        bid: u16,
        resv: u16,
    }

    /// `IORING_REGISTER_PBUF_RING` argument (`struct io_uring_buf_reg`).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct PbufReg {
        ring_addr: u64,
        ring_entries: u32,
        bgid: u16,
        flags: u16,
        resv: [u64; 3],
    }

    /// The one buffer group every data link shares. Demultiplexing is by
    /// `user_data` (session/link), not by group — the group only says
    /// where the bytes landed.
    const PBUF_BGID: u16 = 0;
    /// Byte offset of the kernel-read tail inside the pbuf ring: it
    /// overlays `resv` of entry 0 (the uapi union of `io_uring_buf` and
    /// `io_uring_buf_ring`).
    const PBUF_TAIL_OFF: usize = 14;

    /// A provided-buffer ring plus the buffers behind it: the kernel
    /// picks one per multishot-receive completion and reports its id in
    /// the CQE; the driver parses the bytes out and recycles the id.
    ///
    /// The descriptor ring is written only at the local tail (each
    /// buffer is in the ring at most once, so the kernel can never own
    /// the entry being overwritten), and only `addr`/`len`/`bid` are
    /// touched — entry 0's `resv` bytes *are* the shared tail word, so a
    /// full-entry write there would clobber it.
    ///
    /// Teardown: the owner must quiesce the ring (no in-flight receives)
    /// before dropping this, exactly like the slot buffers — the
    /// backing memory is plain userspace allocations.
    struct PbufRing {
        ring: *mut u8,
        layout: std::alloc::Layout,
        mask: u32,
        tail: u16,
        bufs: Vec<Box<[u8]>>,
    }

    // SAFETY: single-owner (the sink driver thread); the raw pointer is
    // an owned allocation, shared with the kernel only via io_uring.
    unsafe impl Send for PbufRing {}

    impl PbufRing {
        /// Allocate `count` buffers of `buf_len` bytes, register the
        /// descriptor ring with `ring`, and hand every buffer to the
        /// kernel. Fails on pre-5.19 kernels (`EINVAL`), which is how
        /// the multishot probe detects them.
        fn new(ring: &Ring, count: u32, buf_len: usize) -> io::Result<PbufRing> {
            let entries = count.max(1).next_power_of_two();
            let layout = std::alloc::Layout::from_size_align(
                entries as usize * std::mem::size_of::<PbufEntry>(),
                4096,
            )
            .map_err(|_| perr("pbuf ring layout overflow"))?;
            let mem = unsafe { std::alloc::alloc_zeroed(layout) };
            if mem.is_null() {
                return Err(io::Error::new(
                    io::ErrorKind::OutOfMemory,
                    "pbuf ring allocation failed",
                ));
            }
            let reg = PbufReg {
                ring_addr: mem as u64,
                ring_entries: entries,
                bgid: PBUF_BGID,
                ..Default::default()
            };
            if let Err(e) = ring.register(
                IORING_REGISTER_PBUF_RING,
                &reg as *const PbufReg as *const core::ffi::c_void,
                1,
            ) {
                unsafe { std::alloc::dealloc(mem, layout) };
                return Err(e);
            }
            let mut p = PbufRing {
                ring: mem,
                layout,
                mask: entries - 1,
                tail: 0,
                bufs: Vec::with_capacity(count as usize),
            };
            for bid in 0..count {
                p.bufs.push(vec![0u8; buf_len].into_boxed_slice());
                p.recycle(bid as u16);
            }
            Ok(p)
        }

        /// Hand buffer `bid` (back) to the kernel.
        fn recycle(&mut self, bid: u16) {
            let idx = (self.tail as u32 & self.mask) as usize;
            unsafe {
                let e = (self.ring as *mut PbufEntry).add(idx);
                std::ptr::addr_of_mut!((*e).addr).write(self.bufs[bid as usize].as_ptr() as u64);
                std::ptr::addr_of_mut!((*e).len).write(self.bufs[bid as usize].len() as u32);
                std::ptr::addr_of_mut!((*e).bid).write(bid);
                self.tail = self.tail.wrapping_add(1);
                (*(self.ring.add(PBUF_TAIL_OFF) as *const AtomicU16))
                    .store(self.tail, Ordering::Release);
            }
        }

        fn buf(&self, bid: u16) -> &[u8] {
            &self.bufs[bid as usize]
        }
    }

    impl Drop for PbufRing {
        fn drop(&mut self) {
            unsafe { std::alloc::dealloc(self.ring, self.layout) };
        }
    }

    // -----------------------------------------------------------------
    // Capability probe
    // -----------------------------------------------------------------

    /// What the running kernel offers beyond the baseline.
    #[derive(Clone, Copy, Debug)]
    struct UringCaps {
        send_zc: bool,
        sqpoll: bool,
        /// Multishot receive with a provided-buffer ring works end to
        /// end (functionally probed, not just opcode-probed — pbuf
        /// rings are 5.19+, multishot recv 6.0+).
        multishot: bool,
    }

    /// SQ depth for transfer rings: far above the in-flight ceiling of
    /// either side (one write per channel at the source, one read per
    /// link at the sink), so the only submit path is the batched kick.
    const RING_ENTRIES: u32 = 256;

    fn ring_caps() -> io::Result<UringCaps> {
        let ring = Ring::new(8, 0)?; // ENOSYS / EPERM land here
        if ring.features & IORING_FEAT_EXT_ARG == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "kernel io_uring lacks IORING_FEAT_EXT_ARG (needs 5.11+)",
            ));
        }
        let need = [
            IORING_OP_NOP,
            IORING_OP_READ_FIXED,
            IORING_OP_WRITE_FIXED,
            IORING_OP_READ,
            IORING_OP_WRITE,
            IORING_OP_SEND_ZC,
        ];
        let got = ring.probe_op_supported(&need)?;
        if got[..5].iter().any(|ok| !ok) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "kernel io_uring lacks fixed-buffer read/write opcodes",
            ));
        }
        // Fixed-buffer registration must actually work (memlock limits
        // can forbid it even when the opcodes exist).
        let probe_buf = Mutex::new(SlotBuf::new(4096));
        ring.register_pool(&[&probe_buf])?;
        let sqpoll = Ring::new(8, IORING_SETUP_SQPOLL).is_ok();
        Ok(UringCaps {
            send_zc: got[5],
            sqpoll,
            multishot: multishot_probe(),
        })
    }

    /// Functional probe for multishot receive over a provided-buffer
    /// ring: registering a pbuf ring and arming `RECV|MULTISHOT` can
    /// each *appear* to work on kernels that reject the combination at
    /// completion time, so real bytes go through a socketpair and the
    /// CQE must come back buffer-tagged. Any failure is just `false` —
    /// the fallback ladder (header-first `READ_FIXED`) takes over.
    fn multishot_probe() -> bool {
        fn run() -> io::Result<bool> {
            let ring = Ring::new(8, 0)?;
            if !ring.probe_op_supported(&[IORING_OP_RECV])?[0] {
                return Ok(false);
            }
            let mut pbuf = PbufRing::new(&ring, 2, 4096)?;
            let (a, b) = std::os::unix::net::UnixStream::pair()?;
            let sqe = Sqe {
                opcode: IORING_OP_RECV,
                flags: IOSQE_BUFFER_SELECT,
                ioprio: IORING_RECV_MULTISHOT,
                fd: a.as_raw_fd(),
                buf_index: PBUF_BGID,
                user_data: 1,
                ..Default::default()
            };
            if !ring.sq_push(&sqe) {
                return Ok(false);
            }
            ring.submit(1)?;
            use std::io::Write;
            (&b).write_all(b"ping")?;
            let mut ok = false;
            let mut shut = false;
            let mut cqes = Vec::new();
            // Wait for the data CQE *first* — cutting the pair before the
            // armed receive fires discards the queued ping on AF_UNIX and
            // fails the probe on kernels that support multishot fine.
            // Only then shut the pair down and drain to the terminal CQE
            // so no op outlives the ring mappings.
            for _ in 0..16 {
                let fired = ring.wait(Some(Duration::from_millis(250)))?;
                cqes.clear();
                ring.reap(&mut cqes);
                let mut terminal = false;
                for c in &cqes {
                    if c.res == 4 && c.flags & IORING_CQE_F_BUFFER != 0 {
                        ok = true;
                        pbuf.recycle((c.flags >> IORING_CQE_BUFFER_SHIFT) as u16);
                    }
                    if c.flags & IORING_CQE_F_MORE == 0 {
                        terminal = true;
                    }
                }
                if terminal {
                    break;
                }
                if (ok || !fired) && !shut {
                    shut = true;
                    let _ = a.shutdown(Shutdown::Both);
                    let _ = b.shutdown(Shutdown::Both);
                }
            }
            Ok(ok)
        }
        run().unwrap_or(false)
    }

    /// Whether the multishot path should actually be used: probed
    /// healthy *and* not opted out (`RFTP_URING_MULTISHOT=0` forces the
    /// header-first `READ_FIXED` fallback — CI uses it to prove the
    /// ladder).
    fn multishot_enabled(caps: &UringCaps) -> bool {
        caps.multishot && std::env::var_os("RFTP_URING_MULTISHOT").is_none_or(|v| v != "0")
    }

    /// Whether this kernel can run the io_uring backend: ring setup,
    /// `EXT_ARG` timed waits, fixed-buffer registration, and the
    /// fixed-buffer read/write opcodes all probe healthy.
    pub fn uring_supported() -> bool {
        ring_caps().is_ok()
    }

    /// Whether the sink would run the multishot-receive +
    /// provided-buffer-ring path right now: the kernel probes healthy
    /// for it *and* `RFTP_URING_MULTISHOT` has not opted out. `false`
    /// while [`uring_supported`] is `true` means the header-first
    /// `READ_FIXED` fallback carries transfers.
    pub fn uring_multishot() -> bool {
        ring_caps().map(|c| multishot_enabled(&c)).unwrap_or(false)
    }

    fn env_flag(name: &str) -> bool {
        std::env::var_os(name).is_some_and(|v| v != "0")
    }

    fn env_u32(name: &str, default: u32) -> u32 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Build a transfer ring, degrading `SQPOLL` (opt-in via
    /// `RFTP_URING_SQPOLL=1`) back to plain submission if setup fails.
    ///
    /// `single_issuer` promises every `io_uring_enter` comes from the
    /// thread that created the ring; that unlocks `DEFER_TASKRUN`, which
    /// keeps completion task-work out of signal context so it stops
    /// interrupting the driver mid-verify. The source ring submits from
    /// two threads (dispatcher + reaper), so it only gets `COOP_TASKRUN`.
    /// Each flag combination degrades to the next on older kernels.
    fn transfer_ring(caps: &UringCaps, single_issuer: bool) -> io::Result<Ring> {
        if caps.sqpoll && env_flag("RFTP_URING_SQPOLL") {
            if let Ok(r) = Ring::new(RING_ENTRIES, IORING_SETUP_SQPOLL) {
                return Ok(r);
            }
        }
        if single_issuer {
            let flags = IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_DEFER_TASKRUN;
            if let Ok(r) = Ring::new(RING_ENTRIES, flags) {
                return Ok(r);
            }
        }
        if let Ok(r) = Ring::new(RING_ENTRIES, IORING_SETUP_COOP_TASKRUN) {
            return Ok(r);
        }
        Ring::new(RING_ENTRIES, 0)
    }

    // -----------------------------------------------------------------
    // Source half
    // -----------------------------------------------------------------

    /// `buf_index` sentinel for [`WriteOp`]s that carry their own copy
    /// (the plain [`DataTx::send`] path) instead of a registered slot.
    const OWNED_BUF: u16 = u16::MAX;
    /// `user_data` of the wakeup NOP the teardown path submits.
    const UD_NOP: u64 = u64::MAX;

    /// One queued data-frame write: current wire position plus what is
    /// left, so short-write continuations just advance and resubmit.
    struct WriteOp {
        addr: u64,
        remaining: u32,
        buf_index: u16,
        /// Keep-alive for plain `send` copies (no registered buffer);
        /// `addr` points into it. Registered-slot ops carry `None` —
        /// the pool pin (block stays busy until its ack) is the
        /// lifetime guarantee.
        _own: Option<Box<[u8]>>,
    }

    /// Per-channel send state: at most one write in flight per socket
    /// (two concurrent writes to one stream would interleave bytes and
    /// corrupt the framing); the rest queue here in order.
    struct Chan {
        fd: i32,
        cur: Option<WriteOp>,
        queue: VecDeque<WriteOp>,
    }

    struct SubState {
        chans: Vec<Chan>,
        /// SQEs pushed since the last doorbell.
        queued: u32,
        /// Reap scratch — completions are drained under this lock (by
        /// the doorbell or the reaper, whoever gets there first).
        cq_scratch: Vec<Cqe>,
    }

    /// Everything the N channel handles, the reaper, and the teardown
    /// guard share.
    struct SrcRing {
        ring: Ring,
        sub: Mutex<SubState>,
        /// CQEs submitted but not yet reaped (NOPs and `SEND_ZC`
        /// notifications included) — the reaper exits only at zero, so
        /// no kernel op can outlive the ring mappings.
        inflight: AtomicI64,
        shutdown: AtomicBool,
        dead: AtomicBool,
        err: Mutex<Option<String>>,
        /// The data sockets the ring writes to (owners of the fds in
        /// [`Chan`]); the failure path shuts them down to flush
        /// in-flight ops out as errors.
        socks: Vec<TcpStream>,
        use_zc: bool,
    }

    impl SrcRing {
        fn stored_err(&self) -> io::Error {
            let msg = self
                .err
                .lock()
                .clone()
                .unwrap_or_else(|| "io_uring transport failed".into());
            io::Error::new(io::ErrorKind::BrokenPipe, msg)
        }

        /// First-error-wins: record, mark dead, and shut the data links
        /// so every in-flight op completes (as an error) promptly.
        fn fail(&self, msg: String) {
            {
                let mut slot = self.err.lock();
                if slot.is_none() {
                    if env_flag("RFTP_URING_STATS") {
                        eprintln!("uring source first error: {msg}");
                    }
                    *slot = Some(msg);
                }
            }
            self.dead.store(true, Ordering::Release);
            shutdown_all(&self.socks, Shutdown::Both);
        }

        fn push_sqe_locked(&self, st: &mut SubState, sqe: &Sqe) -> io::Result<()> {
            while !self.ring.sq_push(sqe) {
                // SQ full: flush what is queued to make room.
                self.ring.submit(st.queued)?;
                st.queued = 0;
            }
            st.queued += 1;
            self.inflight.fetch_add(1, Ordering::AcqRel);
            Ok(())
        }

        /// Queue the SQE for `chans[ch].cur` (which must be set).
        fn push_write_locked(&self, st: &mut SubState, ch: usize) -> io::Result<()> {
            let chan = &st.chans[ch];
            let op = chan.cur.as_ref().expect("push_write without a current op");
            let mut sqe = Sqe {
                fd: chan.fd,
                addr: op.addr,
                len: op.remaining,
                user_data: ch as u64,
                ..Default::default()
            };
            if op.buf_index == OWNED_BUF {
                sqe.opcode = IORING_OP_WRITE;
            } else if self.use_zc {
                sqe.opcode = IORING_OP_SEND_ZC;
                sqe.ioprio = IORING_RECVSEND_FIXED_BUF;
                sqe.buf_index = op.buf_index;
            } else {
                sqe.opcode = IORING_OP_WRITE_FIXED;
                sqe.buf_index = op.buf_index;
            }
            self.push_sqe_locked(st, &sqe)
        }

        /// Queue one frame on channel `ch`, keeping the one-in-flight-
        /// per-socket invariant.
        fn queue_op(&self, ch: usize, op: WriteOp) -> io::Result<()> {
            if self.dead.load(Ordering::Acquire) {
                return Err(self.stored_err());
            }
            let mut st = self.sub.lock();
            if st.chans[ch].cur.is_some() {
                st.chans[ch].queue.push_back(op);
                Ok(())
            } else {
                st.chans[ch].cur = Some(op);
                self.push_write_locked(&mut st, ch)
            }
        }

        /// Reap and retire every available completion: finished writes
        /// pop the next queued frame, short writes continue where they
        /// left off, errors trip the first-error-wins latch. Callers
        /// hold the submission lock — it doubles as the CQ consumer
        /// lock, so the doorbell and the reaper can both drain.
        fn drain_cqes_locked(&self, st: &mut SubState) {
            let mut cqes = std::mem::take(&mut st.cq_scratch);
            cqes.clear();
            self.ring.reap(&mut cqes);
            for c in &cqes {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                if c.flags & IORING_CQE_F_MORE != 0 {
                    // A zero-copy send's result CQE; its NOTIF sibling
                    // is still owed.
                    self.inflight.fetch_add(1, Ordering::AcqRel);
                }
                if c.user_data == UD_NOP || c.flags & IORING_CQE_F_NOTIF != 0 {
                    continue;
                }
                let ch = c.user_data as usize;
                let resubmit = {
                    let chan = &mut st.chans[ch];
                    if c.res == -ECANCELED
                        && chan.cur.is_some()
                        && !self.dead.load(Ordering::Acquire)
                    {
                        // Dropped without side effects — retry in place.
                        true
                    } else if c.res < 0 {
                        if !self.dead.load(Ordering::Acquire) {
                            let e = io::Error::from_raw_os_error(-c.res);
                            self.fail(format!("data channel {ch} write: {e}"));
                        }
                        // Stragglers on a dead transport just drain.
                        chan.cur = None;
                        chan.queue.clear();
                        false
                    } else {
                        match chan.cur.as_mut() {
                            None => false, // cleared by the error path
                            Some(op) => {
                                let sent = c.res as u32;
                                if sent < op.remaining {
                                    op.addr += sent as u64;
                                    op.remaining -= sent;
                                    true
                                } else {
                                    chan.cur = chan.queue.pop_front();
                                    chan.cur.is_some()
                                }
                            }
                        }
                    }
                };
                if resubmit {
                    if let Err(e) = self.push_write_locked(st, ch) {
                        self.fail(format!("io_uring submit: {e}"));
                    }
                }
            }
            st.cq_scratch = cqes;
        }

        /// The doorbell: retire whatever has already completed (so
        /// short-write continuations resubmit on the dispatcher's
        /// schedule, not the reaper's), then submit everything queued
        /// since the last kick with one kernel crossing.
        fn kick(&self) -> io::Result<()> {
            if self.dead.load(Ordering::Acquire) {
                return Err(self.stored_err());
            }
            let mut st = self.sub.lock();
            self.drain_cqes_locked(&mut st);
            if st.queued > 0 {
                self.ring.submit(st.queued)?;
                st.queued = 0;
            }
            Ok(())
        }

        /// Wait until every queued data-frame write has fully left the
        /// ring. The write-side shutdown must run behind this: unlike
        /// the TCP backend's synchronous sends, a queued frame (e.g. a
        /// spurious retransmit whose original was acked in the
        /// meantime) can still be in flight when `DatasetComplete` goes
        /// out, and `SHUT_WR` would truncate it mid-frame — the sink
        /// sees a torn stream instead of a clean end-of-stream. Timed
        /// waits, because the reaper may consume the very CQE being
        /// waited on.
        fn drain_writes(&self) {
            loop {
                if self.dead.load(Ordering::Acquire) {
                    return; // the error path owns the links now
                }
                {
                    let mut st = self.sub.lock();
                    self.drain_cqes_locked(&mut st);
                    if st.queued > 0 {
                        if let Err(e) = self.ring.submit(st.queued) {
                            self.fail(format!("io_uring submit: {e}"));
                            return;
                        }
                        st.queued = 0;
                    }
                    if st
                        .chans
                        .iter()
                        .all(|c| c.cur.is_none() && c.queue.is_empty())
                    {
                        return;
                    }
                }
                if self.ring.wait(Some(Duration::from_millis(1))).is_err() {
                    return;
                }
            }
        }

        /// The reaper: the source's single transport thread, the
        /// backstop for completions that land while the dispatcher is
        /// blocked elsewhere. Exits once the teardown guard raises
        /// `shutdown` and every expected CQE has drained.
        fn reap_loop(self: &Arc<SrcRing>) {
            loop {
                if self.shutdown.load(Ordering::Acquire)
                    && self.inflight.load(Ordering::Acquire) == 0
                {
                    return;
                }
                if let Err(e) = self.ring.wait(None) {
                    self.fail(format!("io_uring wait: {e}"));
                    return;
                }
                let mut st = self.sub.lock();
                self.drain_cqes_locked(&mut st);
                // Continuations go out before the next block on the
                // wait — one crossing per batch.
                if st.queued > 0 {
                    if let Err(e) = self.ring.submit(st.queued) {
                        self.fail(format!("io_uring submit: {e}"));
                    }
                    st.queued = 0;
                }
            }
        }
    }

    /// One channel's send handle over the shared ring.
    struct UringDataTx {
        ch: usize,
        shared: Arc<SrcRing>,
    }

    impl DataTx for UringDataTx {
        fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
            // No registered slot backs this payload, so carry an owned
            // copy (exactly what the channel backend does) and kick
            // immediately — this path is control-scale, not bulk.
            let mut own = vec![0u8; DATA_FRAME_HEADER_LEN + wire.len()].into_boxed_slice();
            hdr.encode(&mut own[..DATA_FRAME_HEADER_LEN]);
            own[DATA_FRAME_HEADER_LEN..].copy_from_slice(wire);
            let op = WriteOp {
                addr: own.as_ptr() as u64,
                remaining: own.len() as u32,
                buf_index: OWNED_BUF,
                _own: Some(own),
            };
            self.shared.queue_op(self.ch, op)?;
            self.shared.kick()
        }

        fn send_block(
            &self,
            hdr: DataFrameHeader,
            bufs: &[Mutex<SlotBuf>],
            block: u32,
        ) -> io::Result<()> {
            // Write the frame header into the slot's dead space so
            // header + wire image is one contiguous fixed-buffer write
            // — no linked SQEs, no staging copy. The block stays pinned
            // until its ack, so the kernel always reads stable bytes (a
            // retransmit rewrites identical ones).
            let (addr, total) = {
                let mut buf = bufs[block as usize].lock();
                let frame = buf.framed_mut(DATA_FRAME_HEADER_LEN);
                hdr.encode(&mut frame[..DATA_FRAME_HEADER_LEN]);
                (
                    frame.as_ptr() as u64,
                    (DATA_FRAME_HEADER_LEN + hdr.wire_len()) as u32,
                )
            };
            self.shared.queue_op(
                self.ch,
                WriteOp {
                    addr,
                    remaining: total,
                    buf_index: block as u16,
                    _own: None,
                },
            )
        }

        fn kick(&self) -> io::Result<()> {
            self.shared.kick()
        }
    }

    /// Joins the reaper on drop (stashed in the transport's `abort`
    /// closure, so it lives exactly as long as the transport): raises
    /// `shutdown`, wakes the reaper with a NOP, and waits for it to
    /// drain every in-flight CQE before the ring can be unmapped.
    struct ReaperGuard {
        shared: Arc<SrcRing>,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl Drop for ReaperGuard {
        fn drop(&mut self) {
            self.shared.shutdown.store(true, Ordering::Release);
            {
                let mut st = self.shared.sub.lock();
                let nop = Sqe {
                    opcode: IORING_OP_NOP,
                    user_data: UD_NOP,
                    ..Default::default()
                };
                if self.shared.push_sqe_locked(&mut st, &nop).is_ok() {
                    let queued = st.queued;
                    st.queued = 0;
                    let _ = self.shared.ring.submit(queued);
                }
            }
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
            if env_flag("RFTP_URING_STATS") {
                eprintln!(
                    "uring source: {} enters, {} cqes",
                    self.shared.ring.enters.load(Ordering::Relaxed),
                    self.shared.ring.reaped.load(Ordering::Relaxed),
                );
            }
        }
    }

    /// Connect the source half to a sink listening at `addr`, like
    /// [`crate::net::connect_source`], but with every data link driven
    /// through one io_uring: same hello exchange, same wire bytes, one
    /// reaper thread instead of per-send blocking writes.
    pub fn connect_source_uring(
        addr: impl ToSocketAddrs + Copy,
        channels: usize,
        sockbuf: usize,
    ) -> io::Result<SourceTransport> {
        let caps = ring_caps()?;
        let SessionStreams {
            ctrl,
            data,
            token: _,
        } = connect_streams(addr, channels, sockbuf)?;
        let ring = transfer_ring(&caps, false)?;
        assert!(channels as u32 + 2 <= RING_ENTRIES);

        let mut handles = vec![ctrl.try_clone()?];
        for s in &data {
            handles.push(s.try_clone()?);
        }
        let handles = Arc::new(handles);
        let chans = data
            .iter()
            .map(|s| Chan {
                fd: s.as_raw_fd(),
                cur: None,
                queue: VecDeque::new(),
            })
            .collect();
        let shared = Arc::new(SrcRing {
            ring,
            sub: Mutex::new(SubState {
                chans,
                queued: 0,
                cq_scratch: Vec::with_capacity(64),
            }),
            inflight: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            err: Mutex::new(None),
            socks: data,
            use_zc: caps.send_zc && env_flag("RFTP_URING_ZC"),
        });
        let reaper = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rftp-uring-src".into())
                .spawn(move || shared.reap_loop())?
        };
        let guard = ReaperGuard {
            shared: shared.clone(),
            handle: Some(reaper),
        };

        let ctrl_rd = ctrl.try_clone()?;
        let data_tx: Vec<Box<dyn DataTx>> = (0..channels)
            .map(|ch| {
                Box::new(UringDataTx {
                    ch,
                    shared: shared.clone(),
                }) as Box<dyn DataTx>
            })
            .collect();
        let reg_shared = shared.clone();
        let shutdown_shared = shared.clone();
        let shutdown_handles = handles.clone();
        Ok(SourceTransport {
            ctrl_tx: Arc::new(NetCtrlTx(Mutex::new(ctrl))),
            ctrl_rx: Box::new(NetCtrlRx::new(ctrl_rd)),
            data: Arc::new(data_tx),
            register: Box::new(move |bufs: &BufPool| {
                let view: Vec<&Mutex<SlotBuf>> = bufs.iter().collect();
                reg_shared.ring.register_pool(&view)
            }),
            transport_threads: 1,
            shutdown_write: Box::new(move || {
                shutdown_shared.drain_writes();
                shutdown_all(&shutdown_handles, Shutdown::Write)
            }),
            abort: Arc::new(move || {
                // `guard` rides in this closure so the reaper is joined
                // exactly when the transport is dropped.
                let _keep = &guard;
                shared.fail("transport aborted".into());
                shutdown_all(&handles, Shutdown::Both);
            }),
        })
    }

    // -----------------------------------------------------------------
    // Sink half
    // -----------------------------------------------------------------

    /// Where one data link's framing state machine stands. Two modes:
    ///
    /// * `Fx*` — the armed-read fallback (pre-6.0 kernels, or
    ///   `RFTP_URING_MULTISHOT=0`): header-first, the 16-byte
    ///   [`DataFrameHeader`] is read and routed *before* the payload
    ///   read is committed, into either the credited slot's registered
    ///   buffer (`READ_FIXED` — the CQE is the placement) or a scratch
    ///   buffer (duplicate arrival).
    /// * `Ms*` — multishot receive: one armed `RECV|MULTISHOT` per
    ///   socket, the kernel picks a provided buffer per completion, and
    ///   the driver parses the wire stream out of the buffers — headers
    ///   accumulate in the link's stash, payload bytes are copied into
    ///   the credited slot. Copy-routing costs a memcpy per block; the
    ///   CQE/syscall batching multishot buys is the trade.
    #[derive(Clone, Copy)]
    enum RxState {
        FxHeader {
            got: usize,
        },
        FxPlace {
            hdr: DataFrameHeader,
            base: u64,
            got: usize,
            t0: Instant,
        },
        FxDiscard {
            wire_len: usize,
            got: usize,
        },
        MsHeader {
            got: usize,
        },
        MsBody {
            hdr: DataFrameHeader,
            got: usize,
            t0: Instant,
        },
        MsDiscard {
            remaining: usize,
        },
        Eof,
    }

    struct Link {
        fd: i32,
        state: RxState,
        /// Boxed so its address is stable while a kernel read targets
        /// it (fallback header reads; the multishot parser uses it as
        /// its partial-header stash).
        hdr_buf: Box<[u8; DATA_FRAME_HEADER_LEN]>,
        scratch: Vec<u8>,
        /// Multishot only: the receive terminated on `ENOBUFS` and the
        /// link is parked until a provided buffer is recycled.
        parked: bool,
    }

    struct CtrlLink {
        fd: i32,
        buf: Box<[u8; 4096]>,
        dec: rftp_core::wire::FrameDecoder,
        eof: bool,
    }

    /// What one session's driver half hands back to its handler thread
    /// at detach: the placement stats the driver accumulated on the
    /// session's behalf, any driver-side error, and a snapshot of the
    /// shared ring's counters.
    struct SessionStats {
        place_ns: u64,
        flush_ns: u64,
        duplicates: u64,
        place_hist: NsHist,
        err: Option<io::Error>,
        ring: UringStats,
    }

    /// One admitted session as the shared driver sees it: wire
    /// geometry, link state machines, the slot mapping, and the
    /// handler-side plumbing.
    struct Sess {
        /// Wire slot index → fixed-buffer index in the driver's
        /// registered table. Identity for a standalone sink (the pool
        /// *is* the table); an arena lease for daemon sessions — the
        /// stable global slot indices are what let one
        /// `register_buffers` call at daemon startup cover every future
        /// lease.
        lease: Vec<u32>,
        links: Vec<Link>,
        ctrl: CtrlLink,
        block_size: usize,
        pool_blocks: u32,
        total_blocks: u64,
        placed: Arc<AtomicBitmap>,
        backend: Arc<SnkBackend>,
        /// Driver-owned socket clones (control first), shut down to cut
        /// the session loose on a driver-side failure or detach.
        socks: Vec<TcpStream>,
        /// Events parsed this loop, not yet handed to the handler.
        emit: Vec<SinkEvt>,
        /// Daemon mode: the session thread's mailbox. `None` in pump
        /// mode (the session thread *is* the driver thread) — and after
        /// a failure, which is how the handler learns the source died.
        mailbox: Option<crossbeam::channel::Sender<SinkEvt>>,
        /// Daemon mode: where the detach handshake delivers
        /// [`SessionStats`].
        stats_tx: Option<std::sync::mpsc::SyncSender<SessionStats>>,
        /// Kernel ops currently in flight for this session (an armed
        /// multishot receive counts once: only its terminal CQE — no
        /// `F_MORE` — decrements).
        inflight: u32,
        err: Option<io::Error>,
        /// Detach requested: stop re-arming, drain to `inflight == 0`,
        /// then send stats and drop the entry.
        detaching: bool,
        /// Sockets already shut down (error/detach path ran).
        cut: bool,
        /// Fallback: payload reads armed right now, bounded by the
        /// driver's `place_cap`.
        place_armed: u32,
        /// Fallback: links routed into `FxPlace` whose read is deferred
        /// until a slot under the cap frees up. Safe to defer: the
        /// header is already read, and the source wrote header +
        /// payload as one contiguous write, so the payload is on the
        /// wire (or in the socket buffer) no matter when the read arms.
        place_pending: VecDeque<usize>,
        place_ns: u64,
        flush_ns: u64,
        duplicates: u64,
        place_hist: NsHist,
    }

    impl Sess {
        /// Build a session entry over driver-owned socket clones
        /// (control + data, in that order).
        #[allow(clippy::too_many_arguments)]
        fn new(
            ms: bool,
            lease: Vec<u32>,
            ctrl: TcpStream,
            data: Vec<TcpStream>,
            block_size: usize,
            pool_blocks: u32,
            total_blocks: u64,
            placed: Arc<AtomicBitmap>,
            backend: Arc<SnkBackend>,
            mailbox: Option<crossbeam::channel::Sender<SinkEvt>>,
            stats_tx: Option<std::sync::mpsc::SyncSender<SessionStats>>,
        ) -> Sess {
            let init = if ms {
                RxState::MsHeader { got: 0 }
            } else {
                RxState::FxHeader { got: 0 }
            };
            let links = data
                .iter()
                .map(|s| Link {
                    fd: s.as_raw_fd(),
                    state: init,
                    hdr_buf: Box::new([0u8; DATA_FRAME_HEADER_LEN]),
                    scratch: Vec::new(),
                    parked: false,
                })
                .collect();
            let ctrl_link = CtrlLink {
                fd: ctrl.as_raw_fd(),
                buf: Box::new([0u8; 4096]),
                dec: rftp_core::wire::FrameDecoder::new(),
                eof: false,
            };
            let mut socks = vec![ctrl];
            socks.extend(data);
            Sess {
                lease,
                links,
                ctrl: ctrl_link,
                block_size,
                pool_blocks,
                total_blocks,
                placed,
                backend,
                socks,
                emit: Vec::new(),
                mailbox,
                stats_tx,
                inflight: 0,
                err: None,
                detaching: false,
                cut: false,
                place_armed: 0,
                place_pending: VecDeque::new(),
                place_ns: 0,
                flush_ns: 0,
                duplicates: 0,
                place_hist: NsHist::new(),
            }
        }
    }

    /// `user_data` link field naming a session's control socket.
    const CTRL_LINK: u32 = u32::MAX;
    /// `user_data` of the daemon driver's hub-wakeup read. (`UD_NOP` is
    /// `u64::MAX`; session ids never reach `u32::MAX`, so neither
    /// sentinel collides with `ud()`.)
    const UD_WAKE: u64 = u64::MAX - 1;

    /// Completion demultiplexing key: session id in the high word, link
    /// index (or [`CTRL_LINK`]) in the low.
    fn ud(sid: u32, link: u32) -> u64 {
        ((sid as u64) << 32) | link as u64
    }

    /// Feed one multishot completion's worth of wire-stream bytes into
    /// link `i`'s parser. Returns a *session*-level error on a torn or
    /// invalid frame.
    fn ms_feed(
        sess: &mut Sess,
        slots: &[&Mutex<SlotBuf>],
        i: usize,
        mut bytes: &[u8],
        floor: Instant,
    ) -> io::Result<()> {
        while !bytes.is_empty() {
            match sess.links[i].state {
                RxState::MsHeader { got } => {
                    let take = (DATA_FRAME_HEADER_LEN - got).min(bytes.len());
                    sess.links[i].hdr_buf[got..got + take].copy_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    let got = got + take;
                    if got < DATA_FRAME_HEADER_LEN {
                        sess.links[i].state = RxState::MsHeader { got };
                        continue;
                    }
                    let hdr = DataFrameHeader::decode(&sess.links[i].hdr_buf[..])
                        .map_err(|e| perr(format!("bad data frame header: {e:?}")))?;
                    if hdr.session != SESSION
                        || hdr.slot >= sess.pool_blocks
                        || hdr.len as usize > sess.block_size
                        || hdr.seq as u64 >= sess.total_blocks
                    {
                        return Err(perr(format!("bad data frame {hdr:?}")));
                    }
                    sess.links[i].state = if !sess.placed.claim(hdr.seq as u64) {
                        // Retransmit raced a slow ack; its slot may have
                        // been re-granted, so the bytes are skipped
                        // without placing them — exactly-once placement.
                        sess.duplicates += 1;
                        RxState::MsDiscard {
                            remaining: hdr.wire_len(),
                        }
                    } else {
                        RxState::MsBody {
                            hdr,
                            got: 0,
                            t0: Instant::now(),
                        }
                    };
                }
                RxState::MsBody { hdr, got, t0 } => {
                    let wire_len = hdr.wire_len();
                    let take = (wire_len - got).min(bytes.len());
                    let fixed = sess.lease[hdr.slot as usize] as usize;
                    {
                        let mut dst = slots[fixed].lock();
                        dst[got..got + take].copy_from_slice(&bytes[..take]);
                    }
                    bytes = &bytes[take..];
                    let got = got + take;
                    if got < wire_len {
                        sess.links[i].state = RxState::MsBody { hdr, got, t0 };
                        continue;
                    }
                    let ns = t0.max(floor).elapsed().as_nanos() as u64;
                    sess.place_ns += ns;
                    sess.place_hist.record(ns);
                    if let SnkBackend::File(sink) = &*sess.backend {
                        // Write-behind, exactly like the fallback path:
                        // the block lands at its final offset the moment
                        // its last byte is copied in.
                        let t1 = Instant::now();
                        let dst = slots[fixed].lock();
                        sink.write_block(
                            &dst[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + hdr.len as usize],
                            hdr.seq as u64 * sess.block_size as u64,
                        )?;
                        sess.flush_ns += t1.elapsed().as_nanos() as u64;
                    }
                    sess.emit.push(SinkEvt::Arrival {
                        seq: hdr.seq,
                        slot: hdr.slot,
                        len: hdr.len,
                    });
                    sess.links[i].state = RxState::MsHeader { got: 0 };
                }
                RxState::MsDiscard { remaining } => {
                    let take = remaining.min(bytes.len());
                    bytes = &bytes[take..];
                    let remaining = remaining - take;
                    sess.links[i].state = if remaining == 0 {
                        RxState::MsHeader { got: 0 }
                    } else {
                        RxState::MsDiscard { remaining }
                    };
                }
                // EOF (or a stray fallback state): drop trailing bytes.
                _ => return Ok(()),
            }
        }
        Ok(())
    }

    /// The hub-wakeup socket the daemon driver arms a `READ` on, so
    /// registration/detach messages interrupt a blocked `GETEVENTS`.
    struct WakeLink {
        stream: UnixStream,
        buf: Box<[u8; 64]>,
    }

    /// What `on_cqe`'s split-borrow inner blocks ask the driver to do
    /// next, once the session borrow is released.
    enum Next {
        None,
        /// Re-arm link `i`'s current state.
        Arm,
        /// Arm link `i`'s `FxPlace` read under the cap (or park it).
        ArmPlace,
        /// A block finished placing on link `i`: free its cap slot, arm
        /// a parked placement if any, then re-arm `i`'s header read.
        Placed,
        /// Record a session-level failure and cut the session loose.
        Fail(io::Error),
    }

    /// The sink's single data-path driver: one ring, one thread, every
    /// admitted session's links. Two harnesses share it:
    ///
    /// * **pump mode** (standalone sink / per-session daemon baseline):
    ///   one session, and [`MultiDriver::pump`] is the event source
    ///   [`drain_coalesced`] drives the [`SinkHandler`] with — CQE
    ///   batches in, a batch of [`SinkEvt`]s out, dwell waits as
    ///   `EXT_ARG` ring timeouts;
    /// * **daemon mode**: the driver loop forwards each session's
    ///   events through its mailbox to the session thread, which runs
    ///   the same handler + drain over [`channel_events`].
    struct MultiDriver<'a> {
        ring: &'a Ring,
        /// The registered fixed-buffer table; each session's `lease`
        /// maps wire slots into it.
        slots: &'a [&'a Mutex<SlotBuf>],
        /// Multishot receive active (vs the `Fx*` fallback).
        ms: bool,
        pbuf: Option<PbufRing>,
        sessions: HashMap<u32, Sess>,
        /// `(sid, link)` pairs whose multishot receive died on
        /// `ENOBUFS`, re-armed as buffers recycle.
        starved: VecDeque<(u32, usize)>,
        queued: u32,
        cqes: Vec<Cqe>,
        /// Fallback: per-session cap on concurrently-armed payload
        /// reads — keeps each socket→slot copy adjacent to its verify
        /// (see the fallback arm path).
        place_cap: u32,
        /// The place-clock floor: the last instant this thread returned
        /// from a ring wait or finished retiring a completion. A
        /// block's place time clocks from `max(armed, floor)`, so it
        /// measures the driver's *observable wait* for that block's
        /// bytes — comparable to the TCP sink's per-thread blocking
        /// reads.
        place_floor: Instant,
        multishot_rearms: u64,
        pbuf_exhausted: u64,
        /// Ring-level failure: everything on the ring is dead.
        fatal: Option<io::Error>,
        wake: Option<WakeLink>,
        wake_armed: bool,
        /// Teardown: stop re-arming the wake read.
        stopping: bool,
    }

    impl<'a> MultiDriver<'a> {
        fn new(
            ring: &'a Ring,
            slots: &'a [&'a Mutex<SlotBuf>],
            ms: bool,
            pbuf: Option<PbufRing>,
            place_cap: u32,
        ) -> MultiDriver<'a> {
            MultiDriver {
                ring,
                slots,
                ms,
                pbuf,
                sessions: HashMap::new(),
                starved: VecDeque::new(),
                queued: 0,
                cqes: Vec::with_capacity(64),
                place_cap,
                place_floor: Instant::now(),
                multishot_rearms: 0,
                pbuf_exhausted: 0,
                fatal: None,
                wake: None,
                wake_armed: false,
                stopping: false,
            }
        }

        fn stats_snapshot(&self) -> UringStats {
            UringStats {
                enters: self.ring.enters.load(Ordering::Relaxed),
                cqes: self.ring.reaped.load(Ordering::Relaxed),
                multishot: self.ms,
                multishot_rearms: self.multishot_rearms,
                pbuf_exhausted: self.pbuf_exhausted,
                registrations: self.ring.registers.load(Ordering::Relaxed),
            }
        }

        fn push_sqe(&mut self, sqe: &Sqe) -> io::Result<()> {
            while !self.ring.sq_push(sqe) {
                // SQ full: flush what is queued to make room.
                self.ring.submit(self.queued)?;
                self.queued = 0;
            }
            self.queued += 1;
            Ok(())
        }

        fn submit_queued(&mut self) -> io::Result<()> {
            if self.queued > 0 {
                self.ring.submit(self.queued)?;
                self.queued = 0;
            }
            Ok(())
        }

        /// Arm the hub-wakeup read (daemon mode).
        fn arm_wake(&mut self) -> io::Result<()> {
            let Some(w) = &self.wake else { return Ok(()) };
            let sqe = Sqe {
                opcode: IORING_OP_READ,
                fd: w.stream.as_raw_fd(),
                addr: w.buf.as_ptr() as u64,
                len: w.buf.len() as u32,
                user_data: UD_WAKE,
                ..Default::default()
            };
            self.push_sqe(&sqe)?;
            self.wake_armed = true;
            Ok(())
        }

        /// (Re-)arm whatever receive link `i`'s state calls for.
        fn arm_link(&mut self, sid: u32, i: usize) -> io::Result<()> {
            let sess = self.sessions.get_mut(&sid).unwrap();
            let fd = sess.links[i].fd;
            let user_data = ud(sid, i as u32);
            let sqe = match sess.links[i].state {
                RxState::Eof => return Ok(()),
                RxState::MsHeader { .. } | RxState::MsBody { .. } | RxState::MsDiscard { .. } => {
                    sess.links[i].parked = false;
                    Sqe {
                        opcode: IORING_OP_RECV,
                        flags: IOSQE_BUFFER_SELECT,
                        ioprio: IORING_RECV_MULTISHOT,
                        fd,
                        buf_index: PBUF_BGID,
                        user_data,
                        ..Default::default()
                    }
                }
                RxState::FxHeader { got } => Sqe {
                    opcode: IORING_OP_READ,
                    fd,
                    addr: sess.links[i].hdr_buf.as_ptr() as u64 + got as u64,
                    len: (DATA_FRAME_HEADER_LEN - got) as u32,
                    user_data,
                    ..Default::default()
                },
                RxState::FxPlace { hdr, base, got, .. } => Sqe {
                    opcode: IORING_OP_READ_FIXED,
                    fd,
                    addr: base + got as u64,
                    len: (hdr.wire_len() - got) as u32,
                    buf_index: sess.lease[hdr.slot as usize] as u16,
                    user_data,
                    ..Default::default()
                },
                RxState::FxDiscard { wire_len, got } => {
                    let want = (wire_len - got).min(64 * 1024);
                    if sess.links[i].scratch.len() < want {
                        sess.links[i].scratch.resize(want, 0);
                    }
                    Sqe {
                        opcode: IORING_OP_READ,
                        fd,
                        addr: sess.links[i].scratch.as_ptr() as u64,
                        len: want as u32,
                        user_data,
                        ..Default::default()
                    }
                }
            };
            sess.inflight += 1;
            self.push_sqe(&sqe)
        }

        /// Fallback: arm a `FxPlace` read if the session's cap has
        /// room, else park the link. Resets the place clock at true arm
        /// time so a parked link doesn't bill its queue wait as
        /// placement.
        fn arm_place(&mut self, sid: u32, i: usize) -> io::Result<()> {
            let sess = self.sessions.get_mut(&sid).unwrap();
            if sess.place_armed < self.place_cap {
                sess.place_armed += 1;
                if let RxState::FxPlace { ref mut t0, .. } = sess.links[i].state {
                    *t0 = Instant::now();
                }
                self.arm_link(sid, i)
            } else {
                sess.place_pending.push_back(i);
                Ok(())
            }
        }

        fn arm_ctrl(&mut self, sid: u32) -> io::Result<()> {
            let sess = self.sessions.get_mut(&sid).unwrap();
            let sqe = Sqe {
                opcode: IORING_OP_READ,
                fd: sess.ctrl.fd,
                addr: sess.ctrl.buf.as_ptr() as u64,
                len: sess.ctrl.buf.len() as u32,
                user_data: ud(sid, CTRL_LINK),
                ..Default::default()
            };
            sess.inflight += 1;
            self.push_sqe(&sqe)
        }

        /// Insert a session and arm every opening read. The caller
        /// submits (pump's first loop / the daemon tick).
        fn add_session(&mut self, sid: u32, sess: Sess) -> io::Result<()> {
            let links = sess.links.len();
            self.sessions.insert(sid, sess);
            for i in 0..links {
                self.arm_link(sid, i)?;
            }
            self.arm_ctrl(sid)
        }

        /// First-error-wins session failure: record it, cut the
        /// session's sockets (in-flight ops complete as errors
        /// promptly), and drop the mailbox so the handler thread sees
        /// the source close after draining what was already parsed.
        fn sess_fail(&mut self, sid: u32, e: io::Error) {
            let Some(sess) = self.sessions.get_mut(&sid) else {
                return;
            };
            if sess.err.is_none() {
                if env_flag("RFTP_URING_STATS") {
                    eprintln!("uring sink session {sid} first error: {e}");
                }
                sess.err = Some(e);
            }
            if !sess.cut {
                sess.cut = true;
                shutdown_all(&sess.socks, Shutdown::Both);
            }
            sess.mailbox = None;
        }

        /// Daemon detach: stop re-arming, cut the sockets so armed ops
        /// drain, and let `finalize_sessions` complete the handshake at
        /// `inflight == 0`.
        fn begin_detach(&mut self, sid: u32) {
            let Some(sess) = self.sessions.get_mut(&sid) else {
                return;
            };
            sess.detaching = true;
            sess.mailbox = None;
            if !sess.cut {
                sess.cut = true;
                shutdown_all(&sess.socks, Shutdown::Both);
            }
        }

        /// Complete the detach handshake for every drained session:
        /// send its stats (and any driver-side error) to the waiting
        /// session thread and drop the entry. No in-flight op can now
        /// land in the session's leased slots, so the caller may
        /// release the lease the moment it receives the stats.
        fn finalize_sessions(&mut self) {
            let done: Vec<u32> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.detaching && s.inflight == 0)
                .map(|(&sid, _)| sid)
                .collect();
            for sid in done {
                let ring = self.stats_snapshot();
                let sess = self.sessions.remove(&sid).unwrap();
                if let Some(tx) = sess.stats_tx {
                    let _ = tx.send(SessionStats {
                        place_ns: sess.place_ns,
                        flush_ns: sess.flush_ns,
                        duplicates: sess.duplicates,
                        place_hist: sess.place_hist,
                        err: sess.err,
                        ring,
                    });
                }
            }
        }

        /// Forward freshly-parsed events to each daemon session's
        /// mailbox (batched per driver loop, so a CQE burst arrives at
        /// the handler as one `recv_batch`).
        fn deliver_mailboxes(&mut self) {
            for sess in self.sessions.values_mut() {
                if sess.emit.is_empty() {
                    continue;
                }
                match &sess.mailbox {
                    Some(tx) => {
                        for ev in sess.emit.drain(..) {
                            let _ = tx.send(ev);
                        }
                    }
                    None => sess.emit.clear(),
                }
            }
        }

        fn on_ctrl_cqe(&mut self, sid: u32, c: &Cqe) -> io::Result<()> {
            let mut next = Next::None;
            {
                let sess = self.sessions.get_mut(&sid).unwrap();
                let idle = sess.detaching || sess.err.is_some();
                if c.res == -ECANCELED {
                    if !idle {
                        next = Next::Arm;
                    }
                } else if c.res < 0 {
                    if !idle {
                        next = Next::Fail(io::Error::from_raw_os_error(-c.res));
                    }
                } else if c.res == 0 {
                    if sess.ctrl.dec.pending_bytes() != 0 {
                        next = Next::Fail(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "control stream closed mid-frame",
                        ));
                    } else {
                        sess.ctrl.eof = true;
                        sess.emit.push(SinkEvt::CtrlEof);
                    }
                } else {
                    let n = c.res as usize;
                    let buf: &[u8] = &sess.ctrl.buf[..n];
                    // Decode in place; the decoder owns a copy.
                    let buf = buf.to_vec();
                    sess.ctrl.dec.push(&buf);
                    loop {
                        match sess.ctrl.dec.next_frame() {
                            Ok(Some(msg)) => sess.emit.push(SinkEvt::Ctrl(msg)),
                            Ok(None) => break,
                            Err(e) => {
                                next = Next::Fail(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!("bad control frame: {e:?}"),
                                ));
                                break;
                            }
                        }
                    }
                    if matches!(next, Next::None) && !idle {
                        next = Next::Arm;
                    }
                }
            }
            match next {
                Next::Arm => self.arm_ctrl(sid),
                Next::Fail(e) => {
                    self.sess_fail(sid, e);
                    Ok(())
                }
                _ => Ok(()),
            }
        }

        /// Fallback-mode data completion: the ported header-first
        /// armed-read state machine.
        fn on_data_cqe_fx(&mut self, sid: u32, i: usize, c: &Cqe) -> io::Result<()> {
            let place_floor = self.place_floor;
            let mut next = Next::None;
            {
                let Self {
                    sessions, slots, ..
                } = self;
                let sess = sessions.get_mut(&sid).unwrap();
                let idle = sess.detaching || sess.err.is_some();
                let st = sess.links[i].state;
                if c.res == -ECANCELED && !matches!(st, RxState::Eof) {
                    // Dropped without side effects — retry in place (a
                    // `FxPlace` link keeps the cap slot it holds).
                    if !idle {
                        next = Next::Arm;
                    }
                } else if c.res < 0 {
                    if !idle {
                        next = Next::Fail(io::Error::from_raw_os_error(-c.res));
                    }
                } else {
                    let n = c.res as usize;
                    match st {
                        RxState::FxHeader { got } => {
                            if n == 0 {
                                if got == 0 {
                                    sess.links[i].state = RxState::Eof;
                                    sess.emit.push(SinkEvt::DataEof);
                                } else {
                                    next = Next::Fail(io::Error::new(
                                        io::ErrorKind::UnexpectedEof,
                                        "stream closed mid-frame",
                                    ));
                                }
                            } else {
                                let got = got + n;
                                if got < DATA_FRAME_HEADER_LEN {
                                    sess.links[i].state = RxState::FxHeader { got };
                                    next = Next::Arm;
                                } else {
                                    match DataFrameHeader::decode(&sess.links[i].hdr_buf[..]) {
                                        Err(e) => {
                                            next = Next::Fail(perr(format!(
                                                "bad data frame header: {e:?}"
                                            )))
                                        }
                                        Ok(hdr)
                                            if hdr.session != SESSION
                                                || hdr.slot >= sess.pool_blocks
                                                || hdr.len as usize > sess.block_size
                                                || hdr.seq as u64 >= sess.total_blocks =>
                                        {
                                            next =
                                                Next::Fail(perr(format!("bad data frame {hdr:?}")))
                                        }
                                        Ok(hdr) => {
                                            if !sess.placed.claim(hdr.seq as u64) {
                                                // Retransmit raced a slow
                                                // ack; consume without
                                                // placing.
                                                sess.duplicates += 1;
                                                sess.links[i].state = RxState::FxDiscard {
                                                    wire_len: hdr.wire_len(),
                                                    got: 0,
                                                };
                                                next = Next::Arm;
                                            } else {
                                                // Route on the header, then
                                                // commit the payload read
                                                // straight into the credited
                                                // slot's registered buffer —
                                                // the CQE is the placement.
                                                let fixed = sess.lease[hdr.slot as usize] as usize;
                                                let base = slots[fixed].lock().as_ptr() as u64;
                                                sess.links[i].state = RxState::FxPlace {
                                                    hdr,
                                                    base,
                                                    got: 0,
                                                    t0: Instant::now(),
                                                };
                                                next = Next::ArmPlace;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        RxState::FxPlace { hdr, got, t0, .. } => {
                            if n == 0 {
                                next = Next::Fail(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "stream closed mid-frame",
                                ));
                            } else {
                                let got = got + n;
                                if got < hdr.wire_len() {
                                    if let RxState::FxPlace { got: ref mut g, .. } =
                                        sess.links[i].state
                                    {
                                        *g = got;
                                    }
                                    next = Next::Arm;
                                } else {
                                    // Clock from max(armed, floor) — see
                                    // `place_floor`.
                                    let ns = t0.max(place_floor).elapsed().as_nanos() as u64;
                                    sess.place_ns += ns;
                                    sess.place_hist.record(ns);
                                    let mut write_err = None;
                                    if let SnkBackend::File(sink) = &*sess.backend {
                                        // Write-behind: the block lands at
                                        // its final offset the moment it is
                                        // placed.
                                        let t1 = Instant::now();
                                        let fixed = sess.lease[hdr.slot as usize] as usize;
                                        let dst = slots[fixed].lock();
                                        match sink.write_block(
                                            &dst[PAYLOAD_HEADER_LEN
                                                ..PAYLOAD_HEADER_LEN + hdr.len as usize],
                                            hdr.seq as u64 * sess.block_size as u64,
                                        ) {
                                            Ok(()) => {
                                                sess.flush_ns += t1.elapsed().as_nanos() as u64
                                            }
                                            Err(e) => write_err = Some(e),
                                        }
                                    }
                                    match write_err {
                                        Some(e) => next = Next::Fail(e),
                                        None => {
                                            sess.emit.push(SinkEvt::Arrival {
                                                seq: hdr.seq,
                                                slot: hdr.slot,
                                                len: hdr.len,
                                            });
                                            sess.links[i].state = RxState::FxHeader { got: 0 };
                                            next = Next::Placed;
                                        }
                                    }
                                }
                            }
                        }
                        RxState::FxDiscard { wire_len, got } => {
                            if n == 0 {
                                next = Next::Fail(io::Error::new(
                                    io::ErrorKind::UnexpectedEof,
                                    "stream closed mid-frame",
                                ));
                            } else {
                                let got = got + n;
                                if got < wire_len {
                                    sess.links[i].state = RxState::FxDiscard { wire_len, got };
                                } else {
                                    sess.links[i].state = RxState::FxHeader { got: 0 };
                                }
                                next = Next::Arm;
                            }
                        }
                        _ => {}
                    }
                }
            }
            match next {
                Next::None => Ok(()),
                Next::Arm => self.arm_link(sid, i),
                Next::ArmPlace => self.arm_place(sid, i),
                Next::Placed => {
                    let parked = {
                        let sess = self.sessions.get_mut(&sid).unwrap();
                        sess.place_armed -= 1;
                        sess.place_pending.pop_front()
                    };
                    if let Some(j) = parked {
                        self.arm_place(sid, j)?;
                    }
                    self.arm_link(sid, i)
                }
                Next::Fail(e) => {
                    self.sess_fail(sid, e);
                    Ok(())
                }
            }
        }

        /// Multishot-mode data completion: recycle-and-parse. `more` is
        /// the CQE's `F_MORE` (the receive is still armed).
        fn on_data_cqe_ms(&mut self, sid: u32, i: usize, c: &Cqe, more: bool) -> io::Result<()> {
            let place_floor = self.place_floor;
            if c.res < 0 {
                let (idle, eof) = {
                    let sess = self.sessions.get_mut(&sid).unwrap();
                    (
                        sess.detaching || sess.err.is_some(),
                        matches!(sess.links[i].state, RxState::Eof),
                    )
                };
                match -c.res {
                    _ if idle || eof => return Ok(()),
                    ECANCELED => {
                        self.multishot_rearms += 1;
                        return self.arm_link(sid, i);
                    }
                    ENOBUFS => {
                        // Buffer ring dry: park until a recycle.
                        self.pbuf_exhausted += 1;
                        self.sessions.get_mut(&sid).unwrap().links[i].parked = true;
                        self.starved.push_back((sid, i));
                        return Ok(());
                    }
                    e => {
                        self.sess_fail(sid, io::Error::from_raw_os_error(e));
                        return Ok(());
                    }
                }
            }
            let bid = (c.flags & IORING_CQE_F_BUFFER != 0)
                .then_some((c.flags >> IORING_CQE_BUFFER_SHIFT) as u16);
            let mut fed = Ok(());
            if c.res == 0 {
                let sess = self.sessions.get_mut(&sid).unwrap();
                if !(sess.detaching || sess.err.is_some()) {
                    match sess.links[i].state {
                        RxState::MsHeader { got: 0 } => {
                            sess.links[i].state = RxState::Eof;
                            sess.emit.push(SinkEvt::DataEof);
                        }
                        RxState::Eof => {}
                        _ => {
                            fed = Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "stream closed mid-frame",
                            ))
                        }
                    }
                }
            } else {
                let n = c.res as usize;
                let Self {
                    sessions,
                    slots,
                    pbuf,
                    ..
                } = self;
                let sess = sessions.get_mut(&sid).unwrap();
                if sess.detaching || sess.err.is_some() {
                    // Draining a cut session: count the buffer back in,
                    // parse nothing.
                } else {
                    match bid {
                        None => {
                            fed = Err(perr("multishot completion without a buffer"));
                        }
                        Some(bid) => {
                            let bytes = &pbuf.as_ref().expect("ms without pbuf").buf(bid)[..n];
                            fed = ms_feed(sess, slots, i, bytes, place_floor);
                        }
                    }
                }
            }
            // Recycle before re-arming: the returned buffer may be the
            // one that un-starves a parked link.
            if let Some(bid) = bid {
                self.pbuf.as_mut().expect("ms without pbuf").recycle(bid);
                self.drain_starved()?;
            }
            if let Err(e) = fed {
                self.sess_fail(sid, e);
                return Ok(());
            }
            let (rearm, parked) = {
                let sess = self.sessions.get_mut(&sid).unwrap();
                let dead = sess.detaching
                    || sess.err.is_some()
                    || matches!(sess.links[i].state, RxState::Eof);
                (!more && !dead, sess.links[i].parked)
            };
            if rearm && !parked {
                // Terminal CQE (`F_MORE` cleared) on a live link: the
                // kernel dropped the multishot arm; re-arm it.
                self.multishot_rearms += 1;
                return self.arm_link(sid, i);
            }
            Ok(())
        }

        /// Route one CQE. `Err` here is ring-fatal (a failed submit);
        /// session-level failures are recorded via `sess_fail`.
        fn on_cqe(&mut self, c: &Cqe) -> io::Result<()> {
            if c.user_data == UD_NOP {
                return Ok(());
            }
            if c.user_data == UD_WAKE {
                self.wake_armed = false;
                if !self.stopping {
                    return self.arm_wake();
                }
                return Ok(());
            }
            let sid = (c.user_data >> 32) as u32;
            let link = (c.user_data & u32::MAX as u64) as u32;
            let more = c.flags & IORING_CQE_F_MORE != 0;
            {
                // A CQE for a removed session cannot happen (entries
                // only drop at `inflight == 0`), but route defensively.
                let Some(sess) = self.sessions.get_mut(&sid) else {
                    if let Some(p) = &mut self.pbuf {
                        if c.flags & IORING_CQE_F_BUFFER != 0 {
                            p.recycle((c.flags >> IORING_CQE_BUFFER_SHIFT) as u16);
                        }
                    }
                    return Ok(());
                };
                if !more {
                    sess.inflight = sess.inflight.saturating_sub(1);
                }
            }
            if link == CTRL_LINK {
                self.on_ctrl_cqe(sid, c)
            } else if self.ms {
                self.on_data_cqe_ms(sid, link as usize, c, more)
            } else {
                self.on_data_cqe_fx(sid, link as usize, c)
            }
        }

        /// The recv callback for [`drain_coalesced`] in pump mode:
        /// deliver at least one [`SinkEvt`] for session `sid`
        /// (`window: None` blocks; `Some(w)` is a dwell wait bounded by
        /// a *cumulative* deadline across its internal waits), or
        /// `false` when the wait timed out, every link is done, or the
        /// driver failed.
        /// Re-arm every live parked link. Runs after each recycle AND at
        /// every CQE-batch boundary: by batch end each buffer the batch
        /// delivered has been recycled, so the provided-buffer ring is
        /// as full as it gets. Without the batch-end pass, an `ENOBUFS`
        /// processed after the batch's last recycle parks its link with
        /// nothing left to wake it — the only still-armed link may stay
        /// silent forever while the remaining frames sit in the parked
        /// links' sockets (observed as a total transfer stall with a
        /// 1-buffer ring).
        fn drain_starved(&mut self) -> io::Result<()> {
            while let Some((s2, l2)) = self.starved.pop_front() {
                // A parked link has nothing in flight, so its session
                // may have failed or finalized while it waited — only
                // re-arm live ones.
                let live = self.sessions.get(&s2).is_some_and(|s| {
                    !s.detaching && s.err.is_none() && !matches!(s.links[l2].state, RxState::Eof)
                });
                if live {
                    self.multishot_rearms += 1;
                    self.arm_link(s2, l2)?;
                }
            }
            Ok(())
        }

        fn pump(&mut self, sid: u32, window: Option<Duration>, out: &mut Vec<SinkEvt>) -> bool {
            if self.fatal.is_some() || self.sessions.get(&sid).is_none_or(|s| s.err.is_some()) {
                return false;
            }
            self.place_floor = Instant::now();
            let deadline = window.map(|w| Instant::now() + w);
            loop {
                self.cqes.clear();
                self.ring.reap(&mut self.cqes);
                if self.cqes.is_empty() {
                    if self.sessions.get(&sid).map_or(0, |s| s.inflight) == 0 {
                        return false; // every link EOF — nothing can arrive
                    }
                    let waited = match deadline {
                        // Hot path: hand re-armed reads to the kernel
                        // and wait for the next completion in ONE
                        // syscall.
                        None => {
                            let queued = std::mem::take(&mut self.queued);
                            self.ring.submit_and_wait(queued).map(|()| true)
                        }
                        // Dwell wait: flush first, then the timed wait
                        // (`-ETIME` and a fused submit don't mix). Each
                        // retry gets the *remaining* window, so partial
                        // reads can't stretch the dwell past the
                        // handler's flush deadline.
                        Some(d) => {
                            let now = Instant::now();
                            if d <= now {
                                return false; // dwell window exhausted
                            }
                            self.submit_queued()
                                .and_then(|()| self.ring.wait(Some(d - now)))
                        }
                    };
                    match waited {
                        Ok(true) => {
                            self.place_floor = Instant::now();
                            continue;
                        }
                        Ok(false) => {
                            // -ETIME: drain completions that raced the
                            // timeout into this dwell's batch rather
                            // than leaving them for the next pump.
                            if self.ring.cq_ready() > 0 {
                                continue;
                            }
                            return false;
                        }
                        Err(e) => {
                            self.fatal = Some(e);
                            return false;
                        }
                    }
                }
                let cqes = std::mem::take(&mut self.cqes);
                for c in &cqes {
                    let r = self.on_cqe(c);
                    self.place_floor = Instant::now();
                    if let Err(e) = r {
                        self.fatal = Some(e);
                        self.cqes = cqes;
                        return false;
                    }
                }
                self.cqes = cqes;
                if let Err(e) = self.drain_starved() {
                    self.fatal = Some(e);
                    return false;
                }
                if let Some(sess) = self.sessions.get_mut(&sid) {
                    if sess.err.is_some() {
                        return false;
                    }
                    out.append(&mut sess.emit);
                }
                if !out.is_empty() {
                    // Flush the re-arms before handing the events over,
                    // so the kernel fills slots while the handler
                    // verifies and acks.
                    if let Err(e) = self.submit_queued() {
                        self.fatal = Some(e);
                        return false;
                    }
                    return true;
                }
                // Partial reads advanced without yielding an event;
                // keep draining (the empty-reap path flushes `queued`).
            }
        }

        /// The error to surface for session `sid` after a `Closed`
        /// drain (ring-fatal first — it explains every session).
        fn take_err(&mut self, sid: u32) -> Option<io::Error> {
            self.fatal
                .take()
                .or_else(|| self.sessions.get_mut(&sid).and_then(|s| s.err.take()))
        }

        /// One daemon-driver iteration: submit + block for completions
        /// (the armed wake read turns hub messages into CQEs), retire a
        /// batch, forward events. `Err` is ring-fatal.
        fn daemon_tick(&mut self) -> io::Result<()> {
            self.place_floor = Instant::now();
            self.cqes.clear();
            self.ring.reap(&mut self.cqes);
            if self.cqes.is_empty() {
                let queued = std::mem::take(&mut self.queued);
                self.ring.submit_and_wait(queued)?;
                self.place_floor = Instant::now();
                self.ring.reap(&mut self.cqes);
            }
            let cqes = std::mem::take(&mut self.cqes);
            let mut r = Ok(());
            for c in &cqes {
                r = self.on_cqe(c);
                self.place_floor = Instant::now();
                if r.is_err() {
                    break;
                }
            }
            self.cqes = cqes;
            r?;
            self.drain_starved()?;
            self.submit_queued()?;
            self.deliver_mailboxes();
            Ok(())
        }

        /// Ring-fatal failure in daemon mode: every session dies with
        /// it.
        fn fail_all(&mut self, e: io::Error) {
            let sids: Vec<u32> = self.sessions.keys().copied().collect();
            for sid in sids {
                self.sess_fail(sid, perr(format!("shared uring driver failed: {e}")));
                self.begin_detach(sid);
            }
            self.fatal = Some(e);
        }

        /// Drain until no kernel op targets the slot buffers, provided
        /// buffers, or wake buffer — must run (after the sockets are
        /// shut down) before any of them can be freed.
        fn quiesce(&mut self) {
            self.stopping = true;
            if let Some(w) = &self.wake {
                let _ = w.stream.shutdown(Shutdown::Both);
            }
            let _ = self.submit_queued();
            loop {
                let inflight: u32 = self.sessions.values().map(|s| s.inflight).sum();
                if inflight == 0 && !self.wake_armed {
                    return;
                }
                if self.ring.wait(None).is_err() {
                    return; // ring is gone; nothing more to drain
                }
                self.cqes.clear();
                self.ring.reap(&mut self.cqes);
                let cqes = std::mem::take(&mut self.cqes);
                for c in &cqes {
                    if c.user_data == UD_WAKE {
                        self.wake_armed = false;
                        continue;
                    }
                    if c.user_data == UD_NOP {
                        continue;
                    }
                    if c.flags & IORING_CQE_F_MORE != 0 {
                        continue; // non-terminal: the op is still armed
                    }
                    let sid = (c.user_data >> 32) as u32;
                    if let Some(sess) = self.sessions.get_mut(&sid) {
                        sess.inflight = sess.inflight.saturating_sub(1);
                    }
                }
                self.cqes = cqes;
            }
        }
    }
    /// Smallest 4K-aligned provided-buffer length that holds one whole
    /// wire frame (frame header + payload header + block), so a
    /// saturated link's multishot completion covers a full block and
    /// CQEs/block stays ~1.
    fn pbuf_len(block_size: usize) -> usize {
        (DATA_FRAME_HEADER_LEN + PAYLOAD_HEADER_LEN + block_size + 4095) & !4095
    }

    /// How many provided buffers to post: the config pin wins (tests
    /// force exhaustion with 1), else `RFTP_URING_PBUF_COUNT`, else 32.
    /// Clamped to 256 so a worst-case burst (every buffer completing at
    /// once, plus re-arms) stays well inside the CQ (2×[`RING_ENTRIES`]).
    fn pbuf_count(cfg: &LiveConfig) -> u32 {
        let n = if cfg.uring_pbuf > 0 {
            cfg.uring_pbuf
        } else {
            env_u32("RFTP_URING_PBUF_COUNT", 32)
        };
        n.clamp(1, 256)
    }

    /// One accepted source connection set, ready for [`run_uring_sink`]
    /// — the uring counterpart of [`NetListener::accept_session`].
    pub struct UringSinkSession {
        streams: SessionStreams,
        caps: UringCaps,
    }

    impl UringSinkSession {
        /// Wrap an already-assembled connection set (the daemon's
        /// accept loop does its own stream assembly and first-frame
        /// read). Fails with `Unsupported` when the kernel cannot run
        /// the ring backend.
        pub(crate) fn from_streams(streams: SessionStreams) -> io::Result<UringSinkSession> {
            let caps = ring_caps()?;
            Ok(UringSinkSession { streams, caps })
        }
    }

    /// Accept one source's connection set for the io_uring sink and
    /// read the opening `SessionRequest` so the caller can size its
    /// half, mirroring [`NetListener::accept_session`]. Fails with
    /// `Unsupported` before accepting anything if the kernel cannot run
    /// the backend.
    pub fn accept_source_uring(
        listener: &NetListener,
        sockbuf: usize,
    ) -> io::Result<(UringSinkSession, CtrlMsg)> {
        let caps = ring_caps()?;
        let mut streams = listener.accept_streams(sockbuf)?;
        // Bounded like `accept_session`: a silent post-hello peer is a
        // timeout error, not a parked sink.
        streams
            .ctrl
            .set_read_timeout(Some(crate::net::HELLO_TIMEOUT))?;
        let first = crate::net::read_one_ctrl_frame(&mut streams.ctrl)?;
        streams.ctrl.set_read_timeout(None)?;
        Ok((UringSinkSession { streams, caps }, first))
    }

    /// Run the sink half over one io_uring: the protocol brain is the
    /// same [`SinkHandler`] + [`drain_coalesced`] pair as the TCP sink,
    /// but placement, control reads, and the ack/credit dwell all ride
    /// the ring on **one** thread — no per-channel receivers, no
    /// control pump.
    pub fn run_uring_sink(
        cfg: &LiveConfig,
        session: UringSinkSession,
        first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        let snk_bufs: Vec<Mutex<SlotBuf>> = (0..cfg.pool_blocks)
            .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
            .collect();
        let view: Vec<&Mutex<SlotBuf>> = snk_bufs.iter().collect();
        run_uring_session(cfg, session, first_ctrl, &view, None)
    }

    /// The per-session uring sink runner the daemon schedules: one ring
    /// per session over *borrowed* slot buffers (an arena lease, or the
    /// standalone wrapper's own pool), with grants optionally under a
    /// weighted-fair arbiter — the ring analogue of
    /// [`crate::split::run_sink_session`].
    pub(crate) fn run_uring_session(
        cfg: &LiveConfig,
        session: UringSinkSession,
        first_ctrl: Option<CtrlMsg>,
        snk_bufs: &[&Mutex<SlotBuf>],
        fair: crate::split::FairShare<'_>,
    ) -> io::Result<LiveReport> {
        assert!(cfg.channels >= 1 && cfg.total_bytes > 0);
        assert_eq!(
            snk_bufs.len(),
            cfg.pool_blocks as usize,
            "one buffer per pool block"
        );
        let UringSinkSession { streams, caps } = session;
        let SessionStreams {
            ctrl,
            data,
            token: _,
        } = streams;
        assert_eq!(data.len(), cfg.channels, "one data link per channel");
        assert!(cfg.channels as u32 + 2 <= RING_ENTRIES);
        let total_blocks = cfg.total_blocks();
        let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);
        let backend = Arc::new(SnkBackend::open(cfg)?);
        let direct_io_active = backend.direct_active();

        let snk_pool = AtomicSinkPool::new(geo);
        let granter = Mutex::new(Granter::new(
            rftp_core::CreditMode::Proactive,
            cfg.initial_credits,
            cfg.grant_per_completion,
            4,
        ));
        let placed = Arc::new(AtomicBitmap::new(total_blocks));

        let ring = transfer_ring(&caps, true)?;
        ring.register_pool(snk_bufs)?;
        let ms = multishot_enabled(&caps);
        let pbuf = if ms {
            Some(PbufRing::new(
                &ring,
                pbuf_count(cfg),
                pbuf_len(cfg.block_size),
            )?)
        } else {
            None
        };

        let mut handles = vec![ctrl.try_clone()?];
        for s in &data {
            handles.push(s.try_clone()?);
        }
        let handles = Arc::new(handles);
        let fail_handles = handles.clone();
        let fail = Fail::new(Arc::new(move || {
            shutdown_all(&fail_handles, Shutdown::Both)
        }));
        let ctrl_wr = ctrl.try_clone()?;
        let ctrl_tx = NetCtrlTx(Mutex::new(ctrl_wr));

        let start = Instant::now();
        let ctl = cfg.adaptive.then(|| Controller::new(cfg));
        let mut h = SinkHandler::new(
            cfg,
            &ctrl_tx,
            &snk_pool,
            &granter,
            snk_bufs,
            fair,
            ctl.as_ref(),
        );
        let mut drv = MultiDriver::new(
            &ring,
            snk_bufs,
            ms,
            pbuf,
            env_u32("RFTP_URING_PLACE_CAP", 1).max(1),
        );
        // Pump mode: one session, identity lease (the pool *is* the
        // registered table), no mailbox — `pump` feeds the handler
        // directly on this thread.
        let sess = Sess::new(
            ms,
            (0..cfg.pool_blocks).collect(),
            ctrl,
            data,
            cfg.block_size,
            cfg.pool_blocks,
            total_blocks,
            placed,
            backend.clone(),
            None,
            None,
        );

        let run = (|| -> io::Result<()> {
            if let Some(msg) = first_ctrl {
                h.handle(SinkEvt::Ctrl(msg))?;
            }
            drv.add_session(0, sess)?;
            match drain_coalesced(&mut h, &mut |w, out| drv.pump(0, w, out))? {
                DrainEnd::Done => Ok(()),
                DrainEnd::Closed => Err(drv
                    .take_err(0)
                    .unwrap_or_else(|| perr("event pipeline stopped before transfer completed"))),
            }
        })();
        if let Err(e) = run {
            fail.set(e);
        }
        // Quiesce before the slot buffers, provided buffers, or ring
        // can be freed: shut every link (the transfer is over either
        // way — the final acks are already flushed and ride out ahead
        // of the FIN), then drain the in-flight reads the shutdown
        // completes.
        shutdown_all(&handles, Shutdown::Both);
        drv.quiesce();
        let ring_stats = drv.stats_snapshot();
        let sess = drv.sessions.remove(&0).unwrap();
        let (place_ns, flush_ns, duplicates, place_hist) = (
            sess.place_ns,
            sess.flush_ns,
            sess.duplicates,
            sess.place_hist,
        );
        if env_flag("RFTP_URING_STATS") {
            eprintln!(
                "uring sink: {} enters, {} cqes, {} blocks, multishot={} rearms={} pbuf_exhausted={}",
                ring_stats.enters,
                ring_stats.cqes,
                total_blocks,
                ring_stats.multishot,
                ring_stats.multishot_rearms,
                ring_stats.pbuf_exhausted,
            );
        }
        drop(drv);
        drop(ring);

        if fail.is_set() {
            return Err(fail.into_err());
        }
        let mut sync_ns = 0u64;
        if let SnkBackend::File(sink) = &*backend {
            let t0 = Instant::now();
            sink.sync()?;
            sync_ns = t0.elapsed().as_nanos() as u64;
        }
        let elapsed = start.elapsed();
        assert_eq!(h.delivered, total_blocks, "blocks lost in the pipeline");
        snk_pool.check_invariants();
        let per_block = |ns: u64| ns as f64 / total_blocks as f64;
        Ok(LiveReport {
            bytes: cfg.total_bytes,
            blocks: total_blocks,
            elapsed,
            gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
            checksum_failures: h.checksum_failures,
            ooo_blocks: h.reorder.ooo_arrivals,
            ctrl_msgs: h.ctrl_msgs,
            ctrl_msgs_per_block: h.ctrl_msgs as f64 / total_blocks as f64,
            credit_requests: 0,
            dropped_payloads: 0,
            retransmits: 0,
            duplicate_payloads: duplicates,
            stages: StageBreakdown {
                place_ns: per_block(place_ns),
                verify_ns: per_block(h.verify_ns),
                flush_ns: per_block(flush_ns),
                sync_ns: per_block(sync_ns),
                ..Default::default()
            },
            tails: StageTails {
                place: place_hist,
                verify: h.verify_hist.clone(),
                ..Default::default()
            },
            // The whole data path — all N links, placement, control,
            // and the dwell — is this one driver thread.
            transport_threads: 1,
            direct_io_active,
            uring: Some(ring_stats),
            adapt: ctl.as_ref().map(Controller::snapshot),
        })
    }

    // -----------------------------------------------------------------
    // Shared daemon driver: one ring, one thread, every session
    // -----------------------------------------------------------------

    /// Everything the shared driver needs to adopt one admitted
    /// session: wire geometry, the arena lease, driver-owned socket
    /// clones, and the handler-side plumbing.
    pub(crate) struct SessionReg {
        sid: u32,
        lease: Vec<u32>,
        ctrl: TcpStream,
        data: Vec<TcpStream>,
        block_size: usize,
        pool_blocks: u32,
        total_blocks: u64,
        placed: Arc<AtomicBitmap>,
        backend: Arc<SnkBackend>,
        mailbox: crossbeam::channel::Sender<SinkEvt>,
        stats_tx: std::sync::mpsc::SyncSender<SessionStats>,
    }

    enum HubMsg {
        Register(Box<SessionReg>),
        Detach(u32),
        Stop,
    }

    /// Session threads' handle to the daemon's one shared driver
    /// thread. Every message is paired with a byte on the wake socket,
    /// whose armed `READ` turns it into a CQE — so a driver blocked in
    /// `GETEVENTS` notices registrations and detaches immediately.
    pub(crate) struct UringHub {
        tx: std::sync::mpsc::Sender<HubMsg>,
        wake: Mutex<UnixStream>,
        next_sid: AtomicU32,
        ms: bool,
    }

    impl UringHub {
        /// Whether the shared ring runs multishot receive (vs the
        /// `READ_FIXED` fallback).
        pub(crate) fn multishot(&self) -> bool {
            self.ms
        }

        fn send(&self, msg: HubMsg) -> io::Result<()> {
            self.tx
                .send(msg)
                .map_err(|_| perr("shared uring driver is gone"))?;
            use io::Write;
            // A failed wake write means the driver already tore the
            // socket down on its way out; the message error above (or
            // the stats channel) reports that.
            let _ = self.wake.lock().write(&[1u8]);
            Ok(())
        }

        /// Ask the driver to exit once every session has detached.
        pub(crate) fn stop(&self) {
            let _ = self.send(HubMsg::Stop);
        }
    }

    impl<'a> MultiDriver<'a> {
        /// Adopt a registered session: reject (via its stats channel)
        /// if its links cannot fit the ring alongside the sessions
        /// already armed, else insert and arm.
        fn add_daemon_session(&mut self, reg: SessionReg) -> io::Result<()> {
            let SessionReg {
                sid,
                lease,
                ctrl,
                data,
                block_size,
                pool_blocks,
                total_blocks,
                placed,
                backend,
                mailbox,
                stats_tx,
            } = reg;
            // Worst-case concurrently-armed ops: every session's links
            // + control, the newcomer's, and the wake read. The CQ is
            // 2x the SQ, so fitting the SQ bounds completions too.
            let armed: usize = self
                .sessions
                .values()
                .map(|s| s.links.len() + 1)
                .sum::<usize>()
                + 1;
            if armed + data.len() + 1 > RING_ENTRIES as usize {
                let _ = stats_tx.send(SessionStats {
                    place_ns: 0,
                    flush_ns: 0,
                    duplicates: 0,
                    place_hist: NsHist::new(),
                    err: Some(perr("shared uring driver is at link capacity")),
                    ring: self.stats_snapshot(),
                });
                return Ok(());
            }
            let sess = Sess::new(
                self.ms,
                lease,
                ctrl,
                data,
                block_size,
                pool_blocks,
                total_blocks,
                placed,
                backend,
                Some(mailbox),
                Some(stats_tx),
            );
            self.add_session(sid, sess)
        }
    }

    /// The daemon's one data-path thread: owns the shared ring (created
    /// *on this thread* — `SINGLE_ISSUER` pins submission to the
    /// creator), registers the whole arena as fixed buffers **once**,
    /// posts the provided-buffer ring, then loops adopting/detaching
    /// sessions and retiring completions until told to stop.
    fn driver_main(
        caps: UringCaps,
        ms: bool,
        slots: &[Mutex<SlotBuf>],
        slot_cap: usize,
        rx: std::sync::mpsc::Receiver<HubMsg>,
        wake_r: UnixStream,
        init_tx: std::sync::mpsc::SyncSender<io::Result<()>>,
    ) -> UringStats {
        let view: Vec<&Mutex<SlotBuf>> = slots.iter().collect();
        let init = (|| -> io::Result<(Ring, Option<PbufRing>)> {
            let ring = transfer_ring(&caps, true)?;
            ring.register_pool(&view)?;
            let pbuf = if ms {
                let count = env_u32("RFTP_URING_PBUF_COUNT", 32).clamp(1, 256);
                Some(PbufRing::new(&ring, count, pbuf_len(slot_cap))?)
            } else {
                None
            };
            Ok((ring, pbuf))
        })();
        let (ring, pbuf) = match init {
            Ok(v) => {
                let _ = init_tx.send(Ok(()));
                v
            }
            Err(e) => {
                let _ = init_tx.send(Err(e));
                return UringStats {
                    multishot: ms,
                    ..Default::default()
                };
            }
        };
        let mut drv = MultiDriver::new(
            &ring,
            &view,
            ms,
            pbuf,
            env_u32("RFTP_URING_PLACE_CAP", 1).max(1),
        );
        drv.wake = Some(WakeLink {
            stream: wake_r,
            buf: Box::new([0u8; 64]),
        });
        let run = (|| -> io::Result<()> {
            drv.arm_wake()?;
            drv.submit_queued()?;
            let mut stop = false;
            loop {
                loop {
                    match rx.try_recv() {
                        Ok(HubMsg::Register(reg)) => drv.add_daemon_session(*reg)?,
                        Ok(HubMsg::Detach(sid)) => drv.begin_detach(sid),
                        Ok(HubMsg::Stop) => stop = true,
                        Err(std::sync::mpsc::TryRecvError::Empty) => break,
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                            stop = true;
                            break;
                        }
                    }
                }
                drv.finalize_sessions();
                if stop && drv.sessions.is_empty() {
                    return Ok(());
                }
                drv.daemon_tick()?;
            }
        })();
        if let Err(e) = run {
            drv.fail_all(e);
        }
        // Drain every kernel op targeting the arena, the provided
        // buffers, or the wake buffer before any can be freed, then
        // complete outstanding detach handshakes.
        drv.quiesce();
        drv.finalize_sessions();
        let stats = drv.stats_snapshot();
        if env_flag("RFTP_URING_STATS") {
            eprintln!(
                "uring daemon driver: {} enters, {} cqes, multishot={} rearms={} pbuf_exhausted={}",
                stats.enters,
                stats.cqes,
                stats.multishot,
                stats.multishot_rearms,
                stats.pbuf_exhausted,
            );
        }
        stats
    }

    /// Spawn the daemon's shared uring driver over the whole arena
    /// (`slots`, every buffer sized `slot_cap`). Fails with
    /// `Unsupported` when the kernel cannot run the ring backend, and
    /// with the driver's own error when ring setup / registration /
    /// pbuf posting fails — nothing is leaked either way.
    pub(crate) fn spawn_shared_uring_driver<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        slots: &'env [Mutex<SlotBuf>],
        slot_cap: usize,
    ) -> io::Result<(
        Arc<UringHub>,
        std::thread::ScopedJoinHandle<'scope, UringStats>,
    )> {
        let caps = ring_caps()?;
        let ms = multishot_enabled(&caps);
        let (tx, rx) = std::sync::mpsc::channel::<HubMsg>();
        let (wake_w, wake_r) = UnixStream::pair()?;
        let (init_tx, init_rx) = std::sync::mpsc::sync_channel::<io::Result<()>>(1);
        let handle =
            scope.spawn(move || driver_main(caps, ms, slots, slot_cap, rx, wake_r, init_tx));
        match init_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = handle.join();
                return Err(e);
            }
            Err(_) => {
                let _ = handle.join();
                return Err(perr("uring driver thread died during init"));
            }
        }
        Ok((
            Arc::new(UringHub {
                tx,
                wake: Mutex::new(wake_w),
                next_sid: AtomicU32::new(0),
                ms,
            }),
            handle,
        ))
    }

    /// Run one admitted daemon session's *handler half* against the
    /// shared driver: register the session's sockets with the hub, then
    /// drive the same [`SinkHandler`] + [`drain_coalesced`] pair as
    /// every other sink over a mailbox the driver fills. Admission does
    /// **not** touch buffer registration — the arena was registered
    /// once at daemon startup, and the lease maps this session's wire
    /// slots onto those stable fixed-buffer indices.
    pub(crate) fn run_shared_uring_session(
        cfg: &LiveConfig,
        streams: SessionStreams,
        first_ctrl: Option<CtrlMsg>,
        snk_bufs: &[&Mutex<SlotBuf>],
        lease: &[u32],
        hub: &UringHub,
        fair: FairShare<'_>,
    ) -> io::Result<LiveReport> {
        assert!(cfg.channels >= 1 && cfg.total_bytes > 0);
        assert_eq!(
            snk_bufs.len(),
            cfg.pool_blocks as usize,
            "one buffer per pool block"
        );
        assert_eq!(lease.len(), snk_bufs.len(), "lease covers the pool");
        let SessionStreams {
            ctrl,
            data,
            token: _,
        } = streams;
        assert_eq!(data.len(), cfg.channels, "one data link per channel");
        let total_blocks = cfg.total_blocks();
        let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);
        let backend = Arc::new(SnkBackend::open(cfg)?);
        let direct_io_active = backend.direct_active();
        let snk_pool = AtomicSinkPool::new(geo);
        let granter = Mutex::new(Granter::new(
            rftp_core::CreditMode::Proactive,
            cfg.initial_credits,
            cfg.grant_per_completion,
            4,
        ));
        let placed = Arc::new(AtomicBitmap::new(total_blocks));

        // The driver gets its own socket clones (it cuts them on a
        // driver-side failure); this thread keeps the originals for the
        // handler's control writes and its own teardown.
        let drv_ctrl = ctrl.try_clone()?;
        let mut drv_data = Vec::with_capacity(data.len());
        for s in &data {
            drv_data.push(s.try_clone()?);
        }
        let mut handles = vec![ctrl.try_clone()?];
        for s in &data {
            handles.push(s.try_clone()?);
        }
        let ctrl_tx = NetCtrlTx(Mutex::new(ctrl.try_clone()?));

        let (evt_tx, evt_rx) = crossbeam::channel::bounded::<SinkEvt>(1024);
        let (stats_tx, stats_rx) = std::sync::mpsc::sync_channel::<SessionStats>(1);
        let sid = hub.next_sid.fetch_add(1, Ordering::Relaxed);

        let start = Instant::now();
        let ctl = cfg.adaptive.then(|| Controller::new(cfg));
        let mut h = SinkHandler::new(
            cfg,
            &ctrl_tx,
            &snk_pool,
            &granter,
            snk_bufs,
            fair,
            ctl.as_ref(),
        );
        let run = (|| -> io::Result<()> {
            // Register before answering the hello: the opening grants
            // go out only after the driver can be armed, so no data
            // races the first receive.
            hub.send(HubMsg::Register(Box::new(SessionReg {
                sid,
                lease: lease.to_vec(),
                ctrl: drv_ctrl,
                data: drv_data,
                block_size: cfg.block_size,
                pool_blocks: cfg.pool_blocks,
                total_blocks,
                placed,
                backend: backend.clone(),
                mailbox: evt_tx,
                stats_tx,
            })))?;
            if let Some(msg) = first_ctrl {
                h.handle(SinkEvt::Ctrl(msg))?;
            }
            match drain_coalesced(&mut h, &mut channel_events(&evt_rx, 64))? {
                DrainEnd::Done => Ok(()),
                DrainEnd::Closed => Err(perr("event pipeline stopped before transfer completed")),
            }
        })();

        // Detach handshake: cut our socket halves (the final acks are
        // already flushed and ride out ahead of the FIN), then wait for
        // the driver to drain its in-flight ops and hand back the
        // session's stats. Only after that may the caller release the
        // arena lease — no kernel op can target the leased slots.
        shutdown_all(&handles, Shutdown::Both);
        let _ = hub.send(HubMsg::Detach(sid));
        let stats = stats_rx.recv().unwrap_or_else(|_| SessionStats {
            place_ns: 0,
            flush_ns: 0,
            duplicates: 0,
            place_hist: NsHist::new(),
            err: Some(perr("uring driver exited before detach")),
            ring: UringStats {
                multishot: hub.multishot(),
                ..Default::default()
            },
        });
        let SessionStats {
            place_ns,
            flush_ns,
            duplicates,
            place_hist,
            err: drv_err,
            ring: ring_stats,
        } = stats;
        if let Err(e) = run {
            // The driver-side error is the root cause when both halves
            // failed (a closed mailbox surfaces here only as "pipeline
            // stopped").
            return Err(drv_err.unwrap_or(e));
        }

        let mut sync_ns = 0u64;
        if let SnkBackend::File(sink) = &*backend {
            let t0 = Instant::now();
            sink.sync()?;
            sync_ns = t0.elapsed().as_nanos() as u64;
        }
        let elapsed = start.elapsed();
        assert_eq!(h.delivered, total_blocks, "blocks lost in the pipeline");
        snk_pool.check_invariants();
        let per_block = |ns: u64| ns as f64 / total_blocks as f64;
        Ok(LiveReport {
            bytes: cfg.total_bytes,
            blocks: total_blocks,
            elapsed,
            gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
            checksum_failures: h.checksum_failures,
            ooo_blocks: h.reorder.ooo_arrivals,
            ctrl_msgs: h.ctrl_msgs,
            ctrl_msgs_per_block: h.ctrl_msgs as f64 / total_blocks as f64,
            credit_requests: 0,
            dropped_payloads: 0,
            retransmits: 0,
            duplicate_payloads: duplicates,
            stages: StageBreakdown {
                place_ns: per_block(place_ns),
                verify_ns: per_block(h.verify_ns),
                flush_ns: per_block(flush_ns),
                sync_ns: per_block(sync_ns),
                ..Default::default()
            },
            tails: StageTails {
                place: place_hist,
                verify: h.verify_hist.clone(),
                ..Default::default()
            },
            // The data path lives on the daemon's ONE shared driver
            // thread; this session thread only runs the protocol brain.
            transport_threads: 1,
            direct_io_active,
            uring: Some(ring_stats),
            adapt: ctl.as_ref().map(Controller::snapshot),
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The raw ABI structs must match uapi/linux/io_uring.h exactly
        /// — a silent size drift corrupts the rings.
        #[test]
        fn abi_struct_sizes_match_kernel() {
            assert_eq!(std::mem::size_of::<IoUringParams>(), 120);
            assert_eq!(std::mem::size_of::<Sqe>(), 64);
            assert_eq!(std::mem::size_of::<Cqe>(), 16);
            assert_eq!(std::mem::size_of::<SqringOffsets>(), 40);
            assert_eq!(std::mem::size_of::<CqringOffsets>(), 40);
            // struct io_uring_buf / io_uring_buf_reg
            assert_eq!(std::mem::size_of::<PbufEntry>(), 16);
            assert_eq!(std::mem::size_of::<PbufReg>(), 40);
        }

        /// Provided-buffer-ring exhaustion: with a single provided
        /// buffer over four concurrent links, multishot receives must
        /// park on `ENOBUFS` and recover on recycle — no lost and no
        /// double-placed block, byte-identical output — even while the
        /// fault injector forces drops and retransmits.
        #[test]
        fn pbuf_exhaustion_parks_and_recovers() {
            if !uring_supported() {
                eprintln!("skipping: io_uring not supported by this kernel");
                return;
            }
            if !ring_caps().map(|c| multishot_enabled(&c)).unwrap_or(false) {
                eprintln!("skipping: multishot receive unavailable");
                return;
            }
            let mut cfg = LiveConfig::new(64 * 1024, 4, 8 << 20);
            cfg.uring_pbuf = 1; // force exhaustion under concurrency
            let listener = NetListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let sockbuf = crate::net::default_sockbuf(cfg.block_size, cfg.channel_depth);
            let mut src_cfg = cfg.clone();
            src_cfg.fault_drop_p = 0.2;
            let src = std::thread::spawn(move || {
                let t = connect_source_uring(addr, src_cfg.channels, sockbuf)?;
                crate::split::run_split_source(&src_cfg, t)
            });
            let (sess, first) = accept_source_uring(&listener, sockbuf).unwrap();
            let snk = run_uring_sink(&cfg, sess, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0, "output must be byte-identical");
            assert!(src.retransmits > 0, "fault injector must have fired");
            let stats = snk.uring.expect("uring report carries ring stats");
            assert!(stats.multishot);
            assert!(
                stats.pbuf_exhausted > 0,
                "a 1-buffer ring over 4 links must run dry: {stats:?}"
            );
            assert!(
                stats.multishot_rearms >= stats.pbuf_exhausted,
                "every parked link re-arms: {stats:?}"
            );
        }

        /// The capability probe must never panic, whatever the kernel.
        #[test]
        fn probe_is_total() {
            let _ = uring_supported();
        }

        /// Full uring↔uring loopback transfer: pattern data, checksum
        /// verified at the sink, one driver thread per side.
        #[test]
        fn uring_pattern_transfer_loopback() {
            if !uring_supported() {
                eprintln!("skipping: io_uring not supported by this kernel");
                return;
            }
            let cfg = LiveConfig::new(64 * 1024, 4, 8 << 20);
            let listener = NetListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let sockbuf = crate::net::default_sockbuf(cfg.block_size, cfg.channel_depth);
            let src_cfg = cfg.clone();
            let src = std::thread::spawn(move || {
                let t = connect_source_uring(addr, src_cfg.channels, sockbuf)?;
                crate::split::run_split_source(&src_cfg, t)
            });
            let (sess, first) = accept_source_uring(&listener, sockbuf).unwrap();
            let snk = run_uring_sink(&cfg, sess, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0);
            assert_eq!(
                snk.transport_threads, 1,
                "sink data path must be one thread"
            );
            assert_eq!(src.transport_threads, 1, "source adds one reaper thread");
            assert!(
                snk.ctrl_msgs_per_block <= 1.0,
                "control plane not coalesced: {:.2}/blk",
                snk.ctrl_msgs_per_block
            );
        }
    }
}

/// Portable stubs: the backend is Linux-only; every other platform
/// reports "unsupported" and the callers fall back to TCP.
#[cfg(not(target_os = "linux"))]
mod stub {
    use crate::net::NetListener;
    use crate::pipeline::{LiveConfig, LiveReport};
    use crate::transport::SourceTransport;
    use rftp_core::wire::CtrlMsg;
    use std::io;
    use std::net::ToSocketAddrs;

    /// Placeholder session handle; never constructible off-Linux.
    pub struct UringSinkSession(());

    impl UringSinkSession {
        pub(crate) fn from_streams(
            _streams: crate::net::SessionStreams,
        ) -> io::Result<UringSinkSession> {
            unsupported()
        }
    }

    pub fn uring_supported() -> bool {
        false
    }

    pub fn uring_multishot() -> bool {
        false
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "io_uring transport requires Linux",
        ))
    }

    pub fn connect_source_uring(
        _addr: impl ToSocketAddrs,
        _channels: usize,
        _sockbuf: usize,
    ) -> io::Result<SourceTransport> {
        unsupported()
    }

    pub fn accept_source_uring(
        _listener: &NetListener,
        _sockbuf: usize,
    ) -> io::Result<(UringSinkSession, CtrlMsg)> {
        unsupported()
    }

    pub fn run_uring_sink(
        _cfg: &LiveConfig,
        _session: UringSinkSession,
        _first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        unsupported()
    }

    pub(crate) fn run_uring_session(
        _cfg: &LiveConfig,
        _session: UringSinkSession,
        _first_ctrl: Option<CtrlMsg>,
        _snk_bufs: &[&parking_lot::Mutex<crate::store::SlotBuf>],
        _fair: crate::split::FairShare<'_>,
    ) -> io::Result<LiveReport> {
        unsupported()
    }

    /// Placeholder hub handle; never constructible off-Linux.
    pub(crate) struct UringHub(());

    impl UringHub {
        pub(crate) fn multishot(&self) -> bool {
            false
        }
        pub(crate) fn stop(&self) {}
    }

    pub(crate) fn spawn_shared_uring_driver<'scope, 'env>(
        _scope: &'scope std::thread::Scope<'scope, 'env>,
        _slots: &'env [parking_lot::Mutex<crate::store::SlotBuf>],
        _slot_cap: usize,
    ) -> io::Result<(
        std::sync::Arc<UringHub>,
        std::thread::ScopedJoinHandle<'scope, crate::transport::UringStats>,
    )> {
        unsupported()
    }

    pub(crate) fn run_shared_uring_session(
        _cfg: &LiveConfig,
        _streams: crate::net::SessionStreams,
        _first_ctrl: Option<CtrlMsg>,
        _snk_bufs: &[&parking_lot::Mutex<crate::store::SlotBuf>],
        _lease: &[u32],
        _hub: &UringHub,
        _fair: crate::split::FairShare<'_>,
    ) -> io::Result<LiveReport> {
        unsupported()
    }
}

#[cfg(not(target_os = "linux"))]
pub use stub::{
    accept_source_uring, connect_source_uring, run_uring_sink, uring_multishot, uring_supported,
    UringSinkSession,
};
#[cfg(not(target_os = "linux"))]
pub(crate) use stub::{
    run_shared_uring_session, run_uring_session, spawn_shared_uring_driver, UringHub,
};
