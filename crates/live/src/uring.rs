//! io_uring backend for the split pipeline: one ring per side.
//!
//! The TCP backend ([`crate::net`]) spends a thread per link — N
//! receivers plus a control pump at the sink, and a blocking `writev`
//! per block at the source. This module keeps the exact same wire
//! format (the hello exchange and the `[DataFrameHeader | wire image]`
//! stream records of PROTOCOL.md §7 — a uring source interoperates with
//! a TCP sink and vice versa) but drives all N+1 sockets of a session
//! through **one io_uring**:
//!
//! * the pinned slot pool is registered with the kernel once as *fixed
//!   buffers* (`IORING_REGISTER_BUFFERS`) — the userspace analogue of
//!   RDMA memory registration — so every data send/receive is
//!   `WRITE_FIXED`/`READ_FIXED` naming a buffer index instead of
//!   re-pinning pages per call;
//! * the source queues one `WRITE_FIXED` per block (frame header
//!   written into the slot's dead space, so header + wire image is a
//!   single contiguous SQE) and submits the whole dispatcher drain with
//!   one `io_uring_enter` — the doorbell ([`DataTx::kick`]); one reaper
//!   thread retires completions for every channel;
//! * the sink runs a **single driver thread** for all data links:
//!   header-first re-armed reads (16 bytes of `DataFrameHeader`, routed
//!   *before* the payload read is committed into the credited slot, or
//!   into a scratch buffer for duplicates), control frames read off the
//!   same ring, and the ack/credit dwell implemented with
//!   `IORING_ENTER_EXT_ARG` timed waits feeding the shared
//!   [`drain_coalesced`] loop;
//! * `IORING_SETUP_SQPOLL` and `IORING_OP_SEND_ZC` are probed at ring
//!   setup and used only when supported *and* opted into
//!   (`RFTP_URING_SQPOLL=1` / `RFTP_URING_ZC=1`), degrading cleanly to
//!   plain submission and `WRITE_FIXED` otherwise.
//!
//! Everything is raw syscalls (`io_uring_setup`/`enter`/`register` are
//! 425/426/427 on every Linux architecture) over `extern "C"` shims —
//! the workspace links no FFI crate, matching the raw `setsockopt` in
//! [`crate::net`]. [`uring_supported`] probes the running kernel; on
//! non-Linux targets or old kernels every entry point reports
//! `Unsupported` and callers fall back to the TCP backend.

#[cfg(target_os = "linux")]
pub(crate) use linux::run_uring_session;
#[cfg(target_os = "linux")]
pub use linux::{
    accept_source_uring, connect_source_uring, run_uring_sink, uring_supported, UringSinkSession,
};

#[cfg(target_os = "linux")]
mod linux {
    use crate::coalesce::{drain_coalesced, CoalescedSink, DrainEnd};
    use crate::hist::{NsHist, StageTails};
    use crate::net::{
        connect_streams, shutdown_all, NetCtrlRx, NetCtrlTx, NetListener, SessionStreams,
    };
    use crate::pipeline::{
        AtomicBitmap, LiveConfig, LiveReport, SnkBackend, StageBreakdown, SESSION,
    };
    use crate::split::{perr, Fail, SinkEvt, SinkHandler};
    use crate::store::SlotBuf;
    use crate::transport::{BufPool, DataTx, SourceTransport};
    use parking_lot::Mutex;
    use rftp_core::wire::{CtrlMsg, DataFrameHeader, DATA_FRAME_HEADER_LEN, PAYLOAD_HEADER_LEN};
    use rftp_core::{AtomicSinkPool, Granter, PoolGeometry};
    use std::collections::VecDeque;
    use std::io;
    use std::net::{Shutdown, TcpStream, ToSocketAddrs};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // -----------------------------------------------------------------
    // Raw io_uring ABI (uapi/linux/io_uring.h)
    // -----------------------------------------------------------------

    const SYS_IO_URING_SETUP: i64 = 425;
    const SYS_IO_URING_ENTER: i64 = 426;
    const SYS_IO_URING_REGISTER: i64 = 427;

    const IORING_OFF_SQ_RING: i64 = 0;
    const IORING_OFF_CQ_RING: i64 = 0x800_0000;
    const IORING_OFF_SQES: i64 = 0x1000_0000;

    const IORING_SETUP_SQPOLL: u32 = 1 << 1;
    /// Don't interrupt the ring owner signal-style to run completion
    /// task-work; batch it onto the next kernel transition (5.19+).
    const IORING_SETUP_COOP_TASKRUN: u32 = 1 << 8;
    const IORING_SETUP_SINGLE_ISSUER: u32 = 1 << 12;
    /// Run completion task-work only inside `GETEVENTS` enters — the
    /// strictest batching; requires `SINGLE_ISSUER` (6.1+).
    const IORING_SETUP_DEFER_TASKRUN: u32 = 1 << 13;

    const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
    const IORING_ENTER_SQ_WAKEUP: u32 = 1 << 1;
    const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

    const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;
    const IORING_FEAT_EXT_ARG: u32 = 1 << 8;

    const IORING_REGISTER_BUFFERS: u32 = 0;
    const IORING_REGISTER_PROBE: u32 = 8;

    const IORING_SQ_NEED_WAKEUP: u32 = 1 << 0;

    const IORING_CQE_F_MORE: u32 = 1 << 1;
    const IORING_CQE_F_NOTIF: u32 = 1 << 3;

    const IORING_OP_NOP: u8 = 0;
    const IORING_OP_READ_FIXED: u8 = 4;
    const IORING_OP_WRITE_FIXED: u8 = 5;
    const IORING_OP_READ: u8 = 22;
    const IORING_OP_WRITE: u8 = 23;
    const IORING_OP_SEND_ZC: u8 = 47;

    /// `SEND_ZC` flag in `Sqe::ioprio`: the buffer is a registered one,
    /// named by `buf_index`.
    const IORING_RECVSEND_FIXED_BUF: u16 = 1 << 2;

    const ETIME: i32 = 62;
    /// The kernel can drop a poll-armed socket op with `-ECANCELED`
    /// without transferring any bytes (poll races on busy streams).
    /// Such ops are resubmitted verbatim, not treated as link failure.
    const ECANCELED: i32 = 125;

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct SqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct CqringOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct IoUringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqringOffsets,
        cq_off: CqringOffsets,
    }

    /// One 64-byte submission queue entry (the non-`SQE128` layout).
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        op_flags: u32,
        user_data: u64,
        buf_index: u16,
        personality: u16,
        splice_fd_in: i32,
        addr3: u64,
        _pad2: u64,
    }

    /// One 16-byte completion queue entry.
    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    #[repr(C)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    /// `IORING_ENTER_EXT_ARG` payload: a timed `GETEVENTS` wait.
    #[repr(C)]
    struct GeteventsArg {
        sigmask: u64,
        sigmask_sz: u32,
        pad: u32,
        ts: u64,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    mod sys {
        use core::ffi::{c_long, c_void};
        extern "C" {
            pub fn syscall(num: c_long, ...) -> c_long;
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: i32,
                flags: i32,
                fd: i32,
                off: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        }
    }

    // -----------------------------------------------------------------
    // Ring core
    // -----------------------------------------------------------------

    struct MmapRegion {
        ptr: *mut u8,
        len: usize,
    }

    impl MmapRegion {
        fn map(fd: i32, len: usize, off: i64) -> io::Result<MmapRegion> {
            const PROT_RW: i32 = 0x3;
            const MAP_SHARED_POPULATE: i32 = 0x1 | 0x8000;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_RW,
                    MAP_SHARED_POPULATE,
                    fd,
                    off,
                )
            };
            if ptr as i64 == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion {
                ptr: ptr as *mut u8,
                len,
            })
        }

        /// # Safety
        /// `off` must lie inside the mapping (callers use kernel-supplied
        /// ring offsets, which do).
        unsafe fn at(&self, off: u32) -> *mut u8 {
            debug_assert!((off as usize) < self.len);
            self.ptr.add(off as usize)
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            unsafe {
                sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }

    /// One io_uring instance: fd, mapped rings, and raw pointers into
    /// them. SQ production must be externally serialized (the source
    /// holds its submit lock; the sink driver is single-threaded); CQ
    /// consumption is single-consumer (reaper thread / sink driver).
    /// Kernel-shared indices are accessed as atomics.
    ///
    /// The mappings are unmapped on drop — owners must quiesce first
    /// (no in-flight operations), or the kernel could complete an op
    /// into memory the allocator has already reused.
    struct Ring {
        fd: OwnedFd,
        features: u32,
        setup_flags: u32,
        sq_entries: u32,
        sq_mask: u32,
        cq_mask: u32,
        sq_khead: *const AtomicU32,
        sq_ktail: *const AtomicU32,
        sq_kflags: *const AtomicU32,
        sq_array: *mut u32,
        cq_khead: *const AtomicU32,
        cq_ktail: *const AtomicU32,
        cq_cqes: *const Cqe,
        sqes: *mut Sqe,
        /// `io_uring_enter` calls made (diagnostics; see
        /// `RFTP_URING_STATS`).
        enters: AtomicU64,
        /// CQEs reaped (diagnostics).
        reaped: AtomicU64,
        // Held for Drop; the raw pointers above point into these.
        _sq_map: MmapRegion,
        _cq_map: Option<MmapRegion>,
        _sqes_map: MmapRegion,
    }

    // SAFETY: see the struct docs — SQ writes are serialized by the
    // owners, CQ reads are single-consumer, and the shared head/tail
    // words are only touched through atomics.
    unsafe impl Send for Ring {}
    unsafe impl Sync for Ring {}

    impl Ring {
        fn new(entries: u32, setup_flags: u32) -> io::Result<Ring> {
            let mut p = IoUringParams {
                flags: setup_flags,
                ..Default::default()
            };
            if setup_flags & IORING_SETUP_SQPOLL != 0 {
                p.sq_thread_idle = 50; // ms before the poller thread sleeps
            }
            let r = unsafe {
                sys::syscall(
                    SYS_IO_URING_SETUP as core::ffi::c_long,
                    entries as usize,
                    &mut p as *mut IoUringParams,
                )
            };
            if r < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = unsafe { OwnedFd::from_raw_fd(r as i32) };
            let raw = fd.as_raw_fd();

            let sq_len = p.sq_off.array as usize + p.sq_entries as usize * 4;
            let cq_len =
                p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
            let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
            let sq_map = MmapRegion::map(
                raw,
                if single { sq_len.max(cq_len) } else { sq_len },
                IORING_OFF_SQ_RING,
            )?;
            let cq_map = if single {
                None
            } else {
                Some(MmapRegion::map(raw, cq_len, IORING_OFF_CQ_RING)?)
            };
            let sqes_map = MmapRegion::map(
                raw,
                p.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;

            let cq_base = cq_map.as_ref().unwrap_or(&sq_map);
            unsafe {
                Ok(Ring {
                    features: p.features,
                    setup_flags: p.flags,
                    sq_entries: p.sq_entries,
                    sq_mask: *(sq_map.at(p.sq_off.ring_mask) as *const u32),
                    cq_mask: *(cq_base.at(p.cq_off.ring_mask) as *const u32),
                    sq_khead: sq_map.at(p.sq_off.head) as *const AtomicU32,
                    sq_ktail: sq_map.at(p.sq_off.tail) as *const AtomicU32,
                    sq_kflags: sq_map.at(p.sq_off.flags) as *const AtomicU32,
                    sq_array: sq_map.at(p.sq_off.array) as *mut u32,
                    cq_khead: cq_base.at(p.cq_off.head) as *const AtomicU32,
                    cq_ktail: cq_base.at(p.cq_off.tail) as *const AtomicU32,
                    cq_cqes: cq_base.at(p.cq_off.cqes) as *const Cqe,
                    sqes: sqes_map.ptr as *mut Sqe,
                    fd,
                    enters: AtomicU64::new(0),
                    reaped: AtomicU64::new(0),
                    _sq_map: sq_map,
                    _cq_map: cq_map,
                    _sqes_map: sqes_map,
                })
            }
        }

        fn enter(
            &self,
            to_submit: u32,
            min_complete: u32,
            flags: u32,
            arg: *const core::ffi::c_void,
            argsz: usize,
        ) -> io::Result<u32> {
            self.enters.fetch_add(1, Ordering::Relaxed);
            loop {
                let r = unsafe {
                    sys::syscall(
                        SYS_IO_URING_ENTER as core::ffi::c_long,
                        self.fd.as_raw_fd() as usize,
                        to_submit as usize,
                        min_complete as usize,
                        flags as usize,
                        arg,
                        argsz,
                    )
                };
                if r >= 0 {
                    return Ok(r as u32);
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
        }

        fn register(&self, opcode: u32, arg: *const core::ffi::c_void, nr: u32) -> io::Result<()> {
            let r = unsafe {
                sys::syscall(
                    SYS_IO_URING_REGISTER as core::ffi::c_long,
                    self.fd.as_raw_fd() as usize,
                    opcode as usize,
                    arg,
                    nr as usize,
                )
            };
            if r < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Queue one SQE without telling the kernel (callers batch a
        /// [`Ring::submit`] per drain — the doorbell). Returns `false`
        /// when the SQ is full: submit, then retry.
        fn sq_push(&self, sqe: &Sqe) -> bool {
            unsafe {
                let head = (*self.sq_khead).load(Ordering::Acquire);
                let tail = (*self.sq_ktail).load(Ordering::Relaxed);
                if tail.wrapping_sub(head) >= self.sq_entries {
                    return false;
                }
                let idx = tail & self.sq_mask;
                *self.sqes.add(idx as usize) = *sqe;
                *self.sq_array.add(idx as usize) = idx;
                (*self.sq_ktail).store(tail.wrapping_add(1), Ordering::Release);
                true
            }
        }

        /// Hand `queued` SQEs to the kernel. With `SQPOLL` the poller
        /// thread picks them up on its own and this only rings the
        /// wakeup doorbell when it has gone to sleep.
        fn submit(&self, queued: u32) -> io::Result<()> {
            if self.setup_flags & IORING_SETUP_SQPOLL != 0 {
                let flags = unsafe { (*self.sq_kflags).load(Ordering::Acquire) };
                if flags & IORING_SQ_NEED_WAKEUP != 0 {
                    self.enter(0, 0, IORING_ENTER_SQ_WAKEUP, std::ptr::null(), 0)?;
                }
                return Ok(());
            }
            let mut left = queued;
            while left > 0 {
                left -= self.enter(left, 0, 0, std::ptr::null(), 0)?;
            }
            Ok(())
        }

        fn cq_ready(&self) -> u32 {
            unsafe {
                (*self.cq_ktail)
                    .load(Ordering::Acquire)
                    .wrapping_sub((*self.cq_khead).load(Ordering::Relaxed))
            }
        }

        /// Block until at least one CQE is available. `Ok(false)` means
        /// the `timeout` (an `EXT_ARG` timed wait) expired first.
        fn wait(&self, timeout: Option<Duration>) -> io::Result<bool> {
            if self.cq_ready() > 0 {
                return Ok(true);
            }
            match timeout {
                None => {
                    self.enter(0, 1, IORING_ENTER_GETEVENTS, std::ptr::null(), 0)?;
                    Ok(true)
                }
                Some(w) => {
                    let ts = Timespec {
                        tv_sec: w.as_secs() as i64,
                        tv_nsec: w.subsec_nanos() as i64,
                    };
                    let arg = GeteventsArg {
                        sigmask: 0,
                        sigmask_sz: 0,
                        pad: 0,
                        ts: &ts as *const Timespec as u64,
                    };
                    let r = self.enter(
                        0,
                        1,
                        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                        &arg as *const GeteventsArg as *const core::ffi::c_void,
                        std::mem::size_of::<GeteventsArg>(),
                    );
                    match r {
                        Ok(_) => Ok(true),
                        Err(e) if e.raw_os_error() == Some(ETIME) => Ok(false),
                        Err(e) => Err(e),
                    }
                }
            }
        }

        /// Hand `queued` SQEs to the kernel *and* block for at least one
        /// CQE with a single `io_uring_enter` — the hot-path doorbell
        /// and wakeup fused into one syscall. Timed (dwell) waits keep
        /// the two-syscall shape: a `-ETIME` return would leave the
        /// submitted count ambiguous.
        fn submit_and_wait(&self, queued: u32) -> io::Result<()> {
            if self.setup_flags & IORING_SETUP_SQPOLL != 0 {
                self.submit(queued)?;
                self.wait(None)?;
                return Ok(());
            }
            let mut left = queued;
            loop {
                let flags = if self.cq_ready() > 0 {
                    0 // nothing to wait for; just flush the SQ
                } else {
                    IORING_ENTER_GETEVENTS
                };
                if left == 0 && flags == 0 {
                    return Ok(());
                }
                left -= self.enter(left, 1, flags, std::ptr::null(), 0)?;
                if left == 0 {
                    return Ok(());
                }
            }
        }

        /// Drain every available CQE into `out`; returns how many.
        fn reap(&self, out: &mut Vec<Cqe>) -> usize {
            unsafe {
                let tail = (*self.cq_ktail).load(Ordering::Acquire);
                let mut head = (*self.cq_khead).load(Ordering::Relaxed);
                let n = tail.wrapping_sub(head);
                out.reserve(n as usize);
                for _ in 0..n {
                    out.push(*self.cq_cqes.add((head & self.cq_mask) as usize));
                    head = head.wrapping_add(1);
                }
                (*self.cq_khead).store(head, Ordering::Release);
                self.reaped.fetch_add(n as u64, Ordering::Relaxed);
                n as usize
            }
        }

        /// Register every slot of a pinned pool as a fixed buffer,
        /// indexed by pool block — the MR-registration analogue. Takes
        /// a borrowed buffer view so a daemon session can register the
        /// arena slots it leased rather than a pool it owns.
        fn register_pool(&self, bufs: &[&Mutex<SlotBuf>]) -> io::Result<()> {
            if bufs.len() >= OWNED_BUF as usize || bufs.len() > 1024 {
                return Err(perr(format!(
                    "pool of {} blocks exceeds the fixed-buffer limit",
                    bufs.len()
                )));
            }
            let iovecs: Vec<IoVec> = bufs
                .iter()
                .map(|b| {
                    let (base, len) = b.lock().registration_parts();
                    IoVec {
                        base: base as *mut core::ffi::c_void,
                        len,
                    }
                })
                .collect();
            self.register(
                IORING_REGISTER_BUFFERS,
                iovecs.as_ptr() as *const core::ffi::c_void,
                iovecs.len() as u32,
            )
        }

        /// Which opcodes the kernel supports (`IORING_REGISTER_PROBE`).
        fn probe_op_supported(&self, ops: &[u8]) -> io::Result<Vec<bool>> {
            const NOPS: usize = 64;
            // struct io_uring_probe: 16-byte header + 8 bytes per op.
            let mut raw = [0u8; 16 + NOPS * 8];
            self.register(
                IORING_REGISTER_PROBE,
                raw.as_mut_ptr() as *const core::ffi::c_void,
                NOPS as u32,
            )?;
            let last_op = raw[0] as usize;
            Ok(ops
                .iter()
                .map(|&op| {
                    let op = op as usize;
                    const IO_URING_OP_SUPPORTED: u8 = 1;
                    op <= last_op && op < NOPS && raw[16 + op * 8 + 2] & IO_URING_OP_SUPPORTED != 0
                })
                .collect())
        }
    }

    // -----------------------------------------------------------------
    // Capability probe
    // -----------------------------------------------------------------

    /// What the running kernel offers beyond the baseline.
    #[derive(Clone, Copy, Debug)]
    struct UringCaps {
        send_zc: bool,
        sqpoll: bool,
    }

    /// SQ depth for transfer rings: far above the in-flight ceiling of
    /// either side (one write per channel at the source, one read per
    /// link at the sink), so the only submit path is the batched kick.
    const RING_ENTRIES: u32 = 256;

    fn ring_caps() -> io::Result<UringCaps> {
        let ring = Ring::new(8, 0)?; // ENOSYS / EPERM land here
        if ring.features & IORING_FEAT_EXT_ARG == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "kernel io_uring lacks IORING_FEAT_EXT_ARG (needs 5.11+)",
            ));
        }
        let need = [
            IORING_OP_NOP,
            IORING_OP_READ_FIXED,
            IORING_OP_WRITE_FIXED,
            IORING_OP_READ,
            IORING_OP_WRITE,
            IORING_OP_SEND_ZC,
        ];
        let got = ring.probe_op_supported(&need)?;
        if got[..5].iter().any(|ok| !ok) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "kernel io_uring lacks fixed-buffer read/write opcodes",
            ));
        }
        // Fixed-buffer registration must actually work (memlock limits
        // can forbid it even when the opcodes exist).
        let probe_buf = Mutex::new(SlotBuf::new(4096));
        ring.register_pool(&[&probe_buf])?;
        let sqpoll = Ring::new(8, IORING_SETUP_SQPOLL).is_ok();
        Ok(UringCaps {
            send_zc: got[5],
            sqpoll,
        })
    }

    /// Whether this kernel can run the io_uring backend: ring setup,
    /// `EXT_ARG` timed waits, fixed-buffer registration, and the
    /// fixed-buffer read/write opcodes all probe healthy.
    pub fn uring_supported() -> bool {
        ring_caps().is_ok()
    }

    fn env_flag(name: &str) -> bool {
        std::env::var_os(name).is_some_and(|v| v != "0")
    }

    fn env_u32(name: &str, default: u32) -> u32 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Build a transfer ring, degrading `SQPOLL` (opt-in via
    /// `RFTP_URING_SQPOLL=1`) back to plain submission if setup fails.
    ///
    /// `single_issuer` promises every `io_uring_enter` comes from the
    /// thread that created the ring; that unlocks `DEFER_TASKRUN`, which
    /// keeps completion task-work out of signal context so it stops
    /// interrupting the driver mid-verify. The source ring submits from
    /// two threads (dispatcher + reaper), so it only gets `COOP_TASKRUN`.
    /// Each flag combination degrades to the next on older kernels.
    fn transfer_ring(caps: &UringCaps, single_issuer: bool) -> io::Result<Ring> {
        if caps.sqpoll && env_flag("RFTP_URING_SQPOLL") {
            if let Ok(r) = Ring::new(RING_ENTRIES, IORING_SETUP_SQPOLL) {
                return Ok(r);
            }
        }
        if single_issuer {
            let flags = IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_DEFER_TASKRUN;
            if let Ok(r) = Ring::new(RING_ENTRIES, flags) {
                return Ok(r);
            }
        }
        if let Ok(r) = Ring::new(RING_ENTRIES, IORING_SETUP_COOP_TASKRUN) {
            return Ok(r);
        }
        Ring::new(RING_ENTRIES, 0)
    }

    // -----------------------------------------------------------------
    // Source half
    // -----------------------------------------------------------------

    /// `buf_index` sentinel for [`WriteOp`]s that carry their own copy
    /// (the plain [`DataTx::send`] path) instead of a registered slot.
    const OWNED_BUF: u16 = u16::MAX;
    /// `user_data` of the wakeup NOP the teardown path submits.
    const UD_NOP: u64 = u64::MAX;

    /// One queued data-frame write: current wire position plus what is
    /// left, so short-write continuations just advance and resubmit.
    struct WriteOp {
        addr: u64,
        remaining: u32,
        buf_index: u16,
        /// Keep-alive for plain `send` copies (no registered buffer);
        /// `addr` points into it. Registered-slot ops carry `None` —
        /// the pool pin (block stays busy until its ack) is the
        /// lifetime guarantee.
        _own: Option<Box<[u8]>>,
    }

    /// Per-channel send state: at most one write in flight per socket
    /// (two concurrent writes to one stream would interleave bytes and
    /// corrupt the framing); the rest queue here in order.
    struct Chan {
        fd: i32,
        cur: Option<WriteOp>,
        queue: VecDeque<WriteOp>,
    }

    struct SubState {
        chans: Vec<Chan>,
        /// SQEs pushed since the last doorbell.
        queued: u32,
        /// Reap scratch — completions are drained under this lock (by
        /// the doorbell or the reaper, whoever gets there first).
        cq_scratch: Vec<Cqe>,
    }

    /// Everything the N channel handles, the reaper, and the teardown
    /// guard share.
    struct SrcRing {
        ring: Ring,
        sub: Mutex<SubState>,
        /// CQEs submitted but not yet reaped (NOPs and `SEND_ZC`
        /// notifications included) — the reaper exits only at zero, so
        /// no kernel op can outlive the ring mappings.
        inflight: AtomicI64,
        shutdown: AtomicBool,
        dead: AtomicBool,
        err: Mutex<Option<String>>,
        /// The data sockets the ring writes to (owners of the fds in
        /// [`Chan`]); the failure path shuts them down to flush
        /// in-flight ops out as errors.
        socks: Vec<TcpStream>,
        use_zc: bool,
    }

    impl SrcRing {
        fn stored_err(&self) -> io::Error {
            let msg = self
                .err
                .lock()
                .clone()
                .unwrap_or_else(|| "io_uring transport failed".into());
            io::Error::new(io::ErrorKind::BrokenPipe, msg)
        }

        /// First-error-wins: record, mark dead, and shut the data links
        /// so every in-flight op completes (as an error) promptly.
        fn fail(&self, msg: String) {
            {
                let mut slot = self.err.lock();
                if slot.is_none() {
                    if env_flag("RFTP_URING_STATS") {
                        eprintln!("uring source first error: {msg}");
                    }
                    *slot = Some(msg);
                }
            }
            self.dead.store(true, Ordering::Release);
            shutdown_all(&self.socks, Shutdown::Both);
        }

        fn push_sqe_locked(&self, st: &mut SubState, sqe: &Sqe) -> io::Result<()> {
            while !self.ring.sq_push(sqe) {
                // SQ full: flush what is queued to make room.
                self.ring.submit(st.queued)?;
                st.queued = 0;
            }
            st.queued += 1;
            self.inflight.fetch_add(1, Ordering::AcqRel);
            Ok(())
        }

        /// Queue the SQE for `chans[ch].cur` (which must be set).
        fn push_write_locked(&self, st: &mut SubState, ch: usize) -> io::Result<()> {
            let chan = &st.chans[ch];
            let op = chan.cur.as_ref().expect("push_write without a current op");
            let mut sqe = Sqe {
                fd: chan.fd,
                addr: op.addr,
                len: op.remaining,
                user_data: ch as u64,
                ..Default::default()
            };
            if op.buf_index == OWNED_BUF {
                sqe.opcode = IORING_OP_WRITE;
            } else if self.use_zc {
                sqe.opcode = IORING_OP_SEND_ZC;
                sqe.ioprio = IORING_RECVSEND_FIXED_BUF;
                sqe.buf_index = op.buf_index;
            } else {
                sqe.opcode = IORING_OP_WRITE_FIXED;
                sqe.buf_index = op.buf_index;
            }
            self.push_sqe_locked(st, &sqe)
        }

        /// Queue one frame on channel `ch`, keeping the one-in-flight-
        /// per-socket invariant.
        fn queue_op(&self, ch: usize, op: WriteOp) -> io::Result<()> {
            if self.dead.load(Ordering::Acquire) {
                return Err(self.stored_err());
            }
            let mut st = self.sub.lock();
            if st.chans[ch].cur.is_some() {
                st.chans[ch].queue.push_back(op);
                Ok(())
            } else {
                st.chans[ch].cur = Some(op);
                self.push_write_locked(&mut st, ch)
            }
        }

        /// Reap and retire every available completion: finished writes
        /// pop the next queued frame, short writes continue where they
        /// left off, errors trip the first-error-wins latch. Callers
        /// hold the submission lock — it doubles as the CQ consumer
        /// lock, so the doorbell and the reaper can both drain.
        fn drain_cqes_locked(&self, st: &mut SubState) {
            let mut cqes = std::mem::take(&mut st.cq_scratch);
            cqes.clear();
            self.ring.reap(&mut cqes);
            for c in &cqes {
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                if c.flags & IORING_CQE_F_MORE != 0 {
                    // A zero-copy send's result CQE; its NOTIF sibling
                    // is still owed.
                    self.inflight.fetch_add(1, Ordering::AcqRel);
                }
                if c.user_data == UD_NOP || c.flags & IORING_CQE_F_NOTIF != 0 {
                    continue;
                }
                let ch = c.user_data as usize;
                let resubmit = {
                    let chan = &mut st.chans[ch];
                    if c.res == -ECANCELED
                        && chan.cur.is_some()
                        && !self.dead.load(Ordering::Acquire)
                    {
                        // Dropped without side effects — retry in place.
                        true
                    } else if c.res < 0 {
                        if !self.dead.load(Ordering::Acquire) {
                            let e = io::Error::from_raw_os_error(-c.res);
                            self.fail(format!("data channel {ch} write: {e}"));
                        }
                        // Stragglers on a dead transport just drain.
                        chan.cur = None;
                        chan.queue.clear();
                        false
                    } else {
                        match chan.cur.as_mut() {
                            None => false, // cleared by the error path
                            Some(op) => {
                                let sent = c.res as u32;
                                if sent < op.remaining {
                                    op.addr += sent as u64;
                                    op.remaining -= sent;
                                    true
                                } else {
                                    chan.cur = chan.queue.pop_front();
                                    chan.cur.is_some()
                                }
                            }
                        }
                    }
                };
                if resubmit {
                    if let Err(e) = self.push_write_locked(st, ch) {
                        self.fail(format!("io_uring submit: {e}"));
                    }
                }
            }
            st.cq_scratch = cqes;
        }

        /// The doorbell: retire whatever has already completed (so
        /// short-write continuations resubmit on the dispatcher's
        /// schedule, not the reaper's), then submit everything queued
        /// since the last kick with one kernel crossing.
        fn kick(&self) -> io::Result<()> {
            if self.dead.load(Ordering::Acquire) {
                return Err(self.stored_err());
            }
            let mut st = self.sub.lock();
            self.drain_cqes_locked(&mut st);
            if st.queued > 0 {
                self.ring.submit(st.queued)?;
                st.queued = 0;
            }
            Ok(())
        }

        /// Wait until every queued data-frame write has fully left the
        /// ring. The write-side shutdown must run behind this: unlike
        /// the TCP backend's synchronous sends, a queued frame (e.g. a
        /// spurious retransmit whose original was acked in the
        /// meantime) can still be in flight when `DatasetComplete` goes
        /// out, and `SHUT_WR` would truncate it mid-frame — the sink
        /// sees a torn stream instead of a clean end-of-stream. Timed
        /// waits, because the reaper may consume the very CQE being
        /// waited on.
        fn drain_writes(&self) {
            loop {
                if self.dead.load(Ordering::Acquire) {
                    return; // the error path owns the links now
                }
                {
                    let mut st = self.sub.lock();
                    self.drain_cqes_locked(&mut st);
                    if st.queued > 0 {
                        if let Err(e) = self.ring.submit(st.queued) {
                            self.fail(format!("io_uring submit: {e}"));
                            return;
                        }
                        st.queued = 0;
                    }
                    if st
                        .chans
                        .iter()
                        .all(|c| c.cur.is_none() && c.queue.is_empty())
                    {
                        return;
                    }
                }
                if self.ring.wait(Some(Duration::from_millis(1))).is_err() {
                    return;
                }
            }
        }

        /// The reaper: the source's single transport thread, the
        /// backstop for completions that land while the dispatcher is
        /// blocked elsewhere. Exits once the teardown guard raises
        /// `shutdown` and every expected CQE has drained.
        fn reap_loop(self: &Arc<SrcRing>) {
            loop {
                if self.shutdown.load(Ordering::Acquire)
                    && self.inflight.load(Ordering::Acquire) == 0
                {
                    return;
                }
                if let Err(e) = self.ring.wait(None) {
                    self.fail(format!("io_uring wait: {e}"));
                    return;
                }
                let mut st = self.sub.lock();
                self.drain_cqes_locked(&mut st);
                // Continuations go out before the next block on the
                // wait — one crossing per batch.
                if st.queued > 0 {
                    if let Err(e) = self.ring.submit(st.queued) {
                        self.fail(format!("io_uring submit: {e}"));
                    }
                    st.queued = 0;
                }
            }
        }
    }

    /// One channel's send handle over the shared ring.
    struct UringDataTx {
        ch: usize,
        shared: Arc<SrcRing>,
    }

    impl DataTx for UringDataTx {
        fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
            // No registered slot backs this payload, so carry an owned
            // copy (exactly what the channel backend does) and kick
            // immediately — this path is control-scale, not bulk.
            let mut own = vec![0u8; DATA_FRAME_HEADER_LEN + wire.len()].into_boxed_slice();
            hdr.encode(&mut own[..DATA_FRAME_HEADER_LEN]);
            own[DATA_FRAME_HEADER_LEN..].copy_from_slice(wire);
            let op = WriteOp {
                addr: own.as_ptr() as u64,
                remaining: own.len() as u32,
                buf_index: OWNED_BUF,
                _own: Some(own),
            };
            self.shared.queue_op(self.ch, op)?;
            self.shared.kick()
        }

        fn send_block(
            &self,
            hdr: DataFrameHeader,
            bufs: &[Mutex<SlotBuf>],
            block: u32,
        ) -> io::Result<()> {
            // Write the frame header into the slot's dead space so
            // header + wire image is one contiguous fixed-buffer write
            // — no linked SQEs, no staging copy. The block stays pinned
            // until its ack, so the kernel always reads stable bytes (a
            // retransmit rewrites identical ones).
            let (addr, total) = {
                let mut buf = bufs[block as usize].lock();
                let frame = buf.framed_mut(DATA_FRAME_HEADER_LEN);
                hdr.encode(&mut frame[..DATA_FRAME_HEADER_LEN]);
                (
                    frame.as_ptr() as u64,
                    (DATA_FRAME_HEADER_LEN + hdr.wire_len()) as u32,
                )
            };
            self.shared.queue_op(
                self.ch,
                WriteOp {
                    addr,
                    remaining: total,
                    buf_index: block as u16,
                    _own: None,
                },
            )
        }

        fn kick(&self) -> io::Result<()> {
            self.shared.kick()
        }
    }

    /// Joins the reaper on drop (stashed in the transport's `abort`
    /// closure, so it lives exactly as long as the transport): raises
    /// `shutdown`, wakes the reaper with a NOP, and waits for it to
    /// drain every in-flight CQE before the ring can be unmapped.
    struct ReaperGuard {
        shared: Arc<SrcRing>,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl Drop for ReaperGuard {
        fn drop(&mut self) {
            self.shared.shutdown.store(true, Ordering::Release);
            {
                let mut st = self.shared.sub.lock();
                let nop = Sqe {
                    opcode: IORING_OP_NOP,
                    user_data: UD_NOP,
                    ..Default::default()
                };
                if self.shared.push_sqe_locked(&mut st, &nop).is_ok() {
                    let queued = st.queued;
                    st.queued = 0;
                    let _ = self.shared.ring.submit(queued);
                }
            }
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
            if env_flag("RFTP_URING_STATS") {
                eprintln!(
                    "uring source: {} enters, {} cqes",
                    self.shared.ring.enters.load(Ordering::Relaxed),
                    self.shared.ring.reaped.load(Ordering::Relaxed),
                );
            }
        }
    }

    /// Connect the source half to a sink listening at `addr`, like
    /// [`crate::net::connect_source`], but with every data link driven
    /// through one io_uring: same hello exchange, same wire bytes, one
    /// reaper thread instead of per-send blocking writes.
    pub fn connect_source_uring(
        addr: impl ToSocketAddrs + Copy,
        channels: usize,
        sockbuf: usize,
    ) -> io::Result<SourceTransport> {
        let caps = ring_caps()?;
        let SessionStreams {
            ctrl,
            data,
            token: _,
        } = connect_streams(addr, channels, sockbuf)?;
        let ring = transfer_ring(&caps, false)?;
        assert!(channels as u32 + 2 <= RING_ENTRIES);

        let mut handles = vec![ctrl.try_clone()?];
        for s in &data {
            handles.push(s.try_clone()?);
        }
        let handles = Arc::new(handles);
        let chans = data
            .iter()
            .map(|s| Chan {
                fd: s.as_raw_fd(),
                cur: None,
                queue: VecDeque::new(),
            })
            .collect();
        let shared = Arc::new(SrcRing {
            ring,
            sub: Mutex::new(SubState {
                chans,
                queued: 0,
                cq_scratch: Vec::with_capacity(64),
            }),
            inflight: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            err: Mutex::new(None),
            socks: data,
            use_zc: caps.send_zc && env_flag("RFTP_URING_ZC"),
        });
        let reaper = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rftp-uring-src".into())
                .spawn(move || shared.reap_loop())?
        };
        let guard = ReaperGuard {
            shared: shared.clone(),
            handle: Some(reaper),
        };

        let ctrl_rd = ctrl.try_clone()?;
        let data_tx: Vec<Box<dyn DataTx>> = (0..channels)
            .map(|ch| {
                Box::new(UringDataTx {
                    ch,
                    shared: shared.clone(),
                }) as Box<dyn DataTx>
            })
            .collect();
        let reg_shared = shared.clone();
        let shutdown_shared = shared.clone();
        let shutdown_handles = handles.clone();
        Ok(SourceTransport {
            ctrl_tx: Arc::new(NetCtrlTx(Mutex::new(ctrl))),
            ctrl_rx: Box::new(NetCtrlRx::new(ctrl_rd)),
            data: Arc::new(data_tx),
            register: Box::new(move |bufs: &BufPool| {
                let view: Vec<&Mutex<SlotBuf>> = bufs.iter().collect();
                reg_shared.ring.register_pool(&view)
            }),
            transport_threads: 1,
            shutdown_write: Box::new(move || {
                shutdown_shared.drain_writes();
                shutdown_all(&shutdown_handles, Shutdown::Write)
            }),
            abort: Arc::new(move || {
                // `guard` rides in this closure so the reaper is joined
                // exactly when the transport is dropped.
                let _keep = &guard;
                shared.fail("transport aborted".into());
                shutdown_all(&handles, Shutdown::Both);
            }),
        })
    }

    // -----------------------------------------------------------------
    // Sink half
    // -----------------------------------------------------------------

    /// Where one data link's framing state machine stands. Reads are
    /// header-first: the 16-byte [`DataFrameHeader`] is read and routed
    /// *before* the payload read is committed, into either the credited
    /// slot (`READ_FIXED`) or a scratch buffer (duplicate arrival).
    enum LinkPhase {
        Header {
            got: usize,
        },
        Place {
            hdr: DataFrameHeader,
            base: u64,
            got: usize,
            t0: Instant,
        },
        Discard {
            wire_len: usize,
            got: usize,
        },
        Eof,
    }

    struct DataLink {
        fd: i32,
        phase: LinkPhase,
        /// Boxed so its address is stable while a kernel read targets it.
        hdr_buf: Box<[u8; DATA_FRAME_HEADER_LEN]>,
        scratch: Vec<u8>,
    }

    struct CtrlLink {
        fd: i32,
        buf: Box<[u8; 4096]>,
        dec: rftp_core::wire::FrameDecoder,
        eof: bool,
    }

    /// The sink's single data-path thread: owns the ring, every link's
    /// state machine, and the placement/duplicate bookkeeping. Its
    /// [`SinkDriver::pump`] is the event source [`drain_coalesced`]
    /// drives the shared [`SinkHandler`] with — CQE batches in, a batch
    /// of [`SinkEvt`]s out, dwell waits as `EXT_ARG` ring timeouts.
    struct SinkDriver<'a> {
        ring: &'a Ring,
        links: Vec<DataLink>,
        ctrl: CtrlLink,
        snk_bufs: &'a [&'a Mutex<SlotBuf>],
        placed: &'a AtomicBitmap,
        backend: &'a SnkBackend,
        cfg: &'a LiveConfig,
        total_blocks: u64,
        inflight: u32,
        queued: u32,
        place_ns: u64,
        flush_ns: u64,
        duplicates: u64,
        place_hist: NsHist,
        /// Driver-side failure, surfaced after [`drain_coalesced`]
        /// reports `Closed` (its recv callback can only say "no more
        /// events").
        err: Option<io::Error>,
        cqes: Vec<Cqe>,
        /// Payload reads armed right now, bounded by `place_cap`.
        place_armed: u32,
        /// Links routed into `Place` whose read is deferred until a
        /// slot under the cap frees up. Safe to defer: a link in
        /// `Place` has already read its header, and the source wrote
        /// header + payload as one contiguous write, so the payload is
        /// on the wire (or in the socket buffer) no matter when the
        /// read is armed.
        place_pending: VecDeque<usize>,
        /// Cap on concurrently-armed payload reads. The kernel runs
        /// every ready socket→slot copy inside one `GETEVENTS` enter
        /// (`DEFER_TASKRUN`), so with all links armed a burst of
        /// sibling copies evicts a block from cache before the handler
        /// verifies it. A small cap keeps each copy adjacent to its
        /// verify — the single-thread analogue of the TCP sink's
        /// read-then-verify-while-hot receiver loop.
        place_cap: u32,
        /// The place-clock floor: the last instant this thread returned
        /// from a ring wait or finished retiring a completion. A
        /// block's place time clocks from `max(armed, floor)`, so it
        /// measures the driver's *observable wait* for that block's
        /// bytes — not the verify/ack work between pumps, and not
        /// sibling blocks retired earlier in the same batch. That makes
        /// it comparable to the TCP sink, where each per-channel
        /// receiver thread bills only its own blocking read.
        place_floor: Instant,
    }

    impl<'a> SinkDriver<'a> {
        fn push_read(
            &mut self,
            fd: i32,
            addr: u64,
            len: u32,
            fixed: Option<u16>,
            user_data: u64,
        ) -> io::Result<()> {
            let mut sqe = Sqe {
                fd,
                addr,
                len,
                user_data,
                ..Default::default()
            };
            match fixed {
                Some(ix) => {
                    sqe.opcode = IORING_OP_READ_FIXED;
                    sqe.buf_index = ix;
                }
                None => sqe.opcode = IORING_OP_READ,
            }
            while !self.ring.sq_push(&sqe) {
                self.ring.submit(self.queued)?;
                self.queued = 0;
            }
            self.queued += 1;
            self.inflight += 1;
            Ok(())
        }

        /// (Re-)arm the read the link's current phase calls for.
        fn arm(&mut self, i: usize) -> io::Result<()> {
            let fd = self.links[i].fd;
            let ud = i as u64;
            match &self.links[i].phase {
                LinkPhase::Header { got } => {
                    let got = *got;
                    let addr = self.links[i].hdr_buf.as_ptr() as u64 + got as u64;
                    self.push_read(fd, addr, (DATA_FRAME_HEADER_LEN - got) as u32, None, ud)
                }
                LinkPhase::Place { hdr, base, got, .. } => {
                    let (slot, wire_len) = (hdr.slot as u16, hdr.wire_len());
                    let (addr, len) = (*base + *got as u64, (wire_len - *got) as u32);
                    self.push_read(fd, addr, len, Some(slot), ud)
                }
                LinkPhase::Discard { wire_len, got } => {
                    let want = (*wire_len - *got).min(64 * 1024);
                    if self.links[i].scratch.len() < want {
                        self.links[i].scratch.resize(want, 0);
                    }
                    let addr = self.links[i].scratch.as_ptr() as u64;
                    self.push_read(fd, addr, want as u32, None, ud)
                }
                LinkPhase::Eof => Ok(()),
            }
        }

        /// Arm a `Place` read if the cap has room, else park the link.
        /// Resets the place clock at true arm time so a parked link
        /// doesn't bill its queue wait as placement.
        fn arm_place(&mut self, i: usize) -> io::Result<()> {
            if self.place_armed < self.place_cap {
                self.place_armed += 1;
                if let LinkPhase::Place { t0, .. } = &mut self.links[i].phase {
                    *t0 = Instant::now();
                }
                self.arm(i)
            } else {
                self.place_pending.push_back(i);
                Ok(())
            }
        }

        fn arm_ctrl(&mut self) -> io::Result<()> {
            let (fd, addr, len) = (
                self.ctrl.fd,
                self.ctrl.buf.as_ptr() as u64,
                self.ctrl.buf.len() as u32,
            );
            self.push_read(fd, addr, len, None, self.links.len() as u64)
        }

        /// Arm every link's opening read and ring the first doorbell.
        fn arm_initial(&mut self) -> io::Result<()> {
            for i in 0..self.links.len() {
                self.arm(i)?;
            }
            self.arm_ctrl()?;
            self.submit_queued()
        }

        fn submit_queued(&mut self) -> io::Result<()> {
            if self.queued > 0 {
                self.ring.submit(self.queued)?;
                self.queued = 0;
            }
            Ok(())
        }

        fn on_ctrl_cqe(&mut self, c: &Cqe, out: &mut Vec<SinkEvt>) -> io::Result<()> {
            if c.res == -ECANCELED {
                return self.arm_ctrl();
            }
            if c.res < 0 {
                return Err(io::Error::from_raw_os_error(-c.res));
            }
            if c.res == 0 {
                if self.ctrl.dec.pending_bytes() != 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "control stream closed mid-frame",
                    ));
                }
                self.ctrl.eof = true;
                out.push(SinkEvt::CtrlEof);
                return Ok(());
            }
            self.ctrl.dec.push(&self.ctrl.buf[..c.res as usize]);
            loop {
                match self.ctrl.dec.next_frame() {
                    Ok(Some(msg)) => out.push(SinkEvt::Ctrl(msg)),
                    Ok(None) => break,
                    Err(e) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad control frame: {e:?}"),
                        ))
                    }
                }
            }
            self.arm_ctrl()
        }

        fn on_cqe(&mut self, c: &Cqe, out: &mut Vec<SinkEvt>) -> io::Result<()> {
            self.inflight -= 1;
            let i = c.user_data as usize;
            if i == self.links.len() {
                return self.on_ctrl_cqe(c, out);
            }
            if c.res == -ECANCELED && !matches!(self.links[i].phase, LinkPhase::Eof) {
                // Re-arm the same phase: a `Place` link keeps the cap
                // slot it already holds, so this is `arm`, not
                // `arm_place`.
                return self.arm(i);
            }
            if c.res < 0 {
                return Err(io::Error::from_raw_os_error(-c.res));
            }
            let n = c.res as usize;
            match &mut self.links[i].phase {
                LinkPhase::Header { got } => {
                    if n == 0 {
                        if *got == 0 {
                            self.links[i].phase = LinkPhase::Eof;
                            out.push(SinkEvt::DataEof);
                            return Ok(());
                        }
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream closed mid-frame",
                        ));
                    }
                    *got += n;
                    if *got < DATA_FRAME_HEADER_LEN {
                        return self.arm(i);
                    }
                    let hdr = DataFrameHeader::decode(&self.links[i].hdr_buf[..])
                        .map_err(|e| perr(format!("bad data frame header: {e:?}")))?;
                    if hdr.session != SESSION
                        || hdr.slot >= self.cfg.pool_blocks
                        || hdr.len as usize > self.cfg.block_size
                        || hdr.seq as u64 >= self.total_blocks
                    {
                        return Err(perr(format!("bad data frame {hdr:?}")));
                    }
                    if !self.placed.claim(hdr.seq as u64) {
                        // Retransmit raced a slow ack; its slot may have
                        // been re-granted, so the bytes must be consumed
                        // without placing them.
                        self.duplicates += 1;
                        self.links[i].phase = LinkPhase::Discard {
                            wire_len: hdr.wire_len(),
                            got: 0,
                        };
                        return self.arm(i);
                    }
                    // Route on the header, then commit the payload read
                    // straight into the credited slot's registered
                    // buffer — the CQE is the placement.
                    let base = self.snk_bufs[hdr.slot as usize].lock().as_ptr() as u64;
                    self.links[i].phase = LinkPhase::Place {
                        hdr,
                        base,
                        got: 0,
                        t0: Instant::now(),
                    };
                    self.arm_place(i)
                }
                LinkPhase::Place { hdr, got, t0, .. } => {
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream closed mid-frame",
                        ));
                    }
                    *got += n;
                    if *got < hdr.wire_len() {
                        return self.arm(i);
                    }
                    let (hdr, t0) = (*hdr, *t0);
                    // Clock from max(armed, floor) — see `place_floor`.
                    let ns = t0.max(self.place_floor).elapsed().as_nanos() as u64;
                    self.place_ns += ns;
                    self.place_hist.record(ns);
                    if let SnkBackend::File(sink) = self.backend {
                        // Write-behind, exactly like the TCP receivers:
                        // the block lands at its final offset the moment
                        // it is placed.
                        let t1 = Instant::now();
                        let dst = self.snk_bufs[hdr.slot as usize].lock();
                        sink.write_block(
                            &dst[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + hdr.len as usize],
                            hdr.seq as u64 * self.cfg.block_size as u64,
                        )?;
                        self.flush_ns += t1.elapsed().as_nanos() as u64;
                    }
                    out.push(SinkEvt::Arrival {
                        seq: hdr.seq,
                        slot: hdr.slot,
                        len: hdr.len,
                    });
                    self.links[i].phase = LinkPhase::Header { got: 0 };
                    self.place_armed -= 1;
                    if let Some(j) = self.place_pending.pop_front() {
                        self.arm_place(j)?;
                    }
                    self.arm(i)
                }
                LinkPhase::Discard { wire_len, got } => {
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream closed mid-frame",
                        ));
                    }
                    *got += n;
                    if *got < *wire_len {
                        return self.arm(i);
                    }
                    self.links[i].phase = LinkPhase::Header { got: 0 };
                    self.arm(i)
                }
                LinkPhase::Eof => Ok(()),
            }
        }

        /// The recv callback for [`drain_coalesced`]: deliver at least
        /// one [`SinkEvt`] (`window: None` blocks; `Some(w)` is a dwell
        /// wait), or `false` when the wait timed out, every link is
        /// done, or the driver failed ([`SinkDriver::err`]).
        fn pump(&mut self, window: Option<Duration>, out: &mut Vec<SinkEvt>) -> bool {
            if self.err.is_some() {
                return false;
            }
            self.place_floor = Instant::now();
            loop {
                self.cqes.clear();
                self.ring.reap(&mut self.cqes);
                if self.cqes.is_empty() {
                    if self.inflight == 0 {
                        return false; // every link EOF — nothing can arrive
                    }
                    let flushed = match window {
                        // Hot path: hand re-armed reads to the kernel
                        // and wait for the next completion in ONE
                        // syscall.
                        None => {
                            let queued = std::mem::take(&mut self.queued);
                            self.ring.submit_and_wait(queued).map(|()| true)
                        }
                        // Dwell wait: flush first, then the timed wait
                        // (`-ETIME` and a fused submit don't mix).
                        Some(_) => self.submit_queued().and_then(|()| self.ring.wait(window)),
                    };
                    match flushed {
                        Ok(true) => {
                            self.place_floor = Instant::now();
                            continue;
                        }
                        Ok(false) => return false, // dwell window expired
                        Err(e) => {
                            self.err = Some(e);
                            return false;
                        }
                    }
                }
                let cqes = std::mem::take(&mut self.cqes);
                for c in &cqes {
                    let r = self.on_cqe(c, out);
                    self.place_floor = Instant::now();
                    if let Err(e) = r {
                        self.err = Some(e);
                        return false;
                    }
                }
                self.cqes = cqes;
                if !out.is_empty() {
                    // Flush the re-arms before handing the events over,
                    // so the kernel fills slots while the handler
                    // verifies and acks.
                    if let Err(e) = self.submit_queued() {
                        self.err = Some(e);
                        return false;
                    }
                    return true;
                }
                // Partial reads advanced without yielding an event;
                // keep draining (the empty-reap path flushes `queued`).
            }
        }

        /// Drain until no kernel op targets the slot buffers or ring —
        /// must run (after the sockets are shut down) before either is
        /// freed.
        fn quiesce(&mut self) {
            while self.inflight > 0 {
                if self.ring.wait(None).is_err() {
                    return; // ring is gone; nothing more to drain
                }
                self.cqes.clear();
                self.inflight -= self.ring.reap(&mut self.cqes).min(self.inflight as usize) as u32;
            }
        }
    }

    /// One accepted source connection set, ready for [`run_uring_sink`]
    /// — the uring counterpart of [`NetListener::accept_session`].
    pub struct UringSinkSession {
        streams: SessionStreams,
        caps: UringCaps,
    }

    impl UringSinkSession {
        /// Wrap an already-assembled connection set (the daemon's
        /// accept loop does its own stream assembly and first-frame
        /// read). Fails with `Unsupported` when the kernel cannot run
        /// the ring backend.
        pub(crate) fn from_streams(streams: SessionStreams) -> io::Result<UringSinkSession> {
            let caps = ring_caps()?;
            Ok(UringSinkSession { streams, caps })
        }
    }

    /// Accept one source's connection set for the io_uring sink and
    /// read the opening `SessionRequest` so the caller can size its
    /// half, mirroring [`NetListener::accept_session`]. Fails with
    /// `Unsupported` before accepting anything if the kernel cannot run
    /// the backend.
    pub fn accept_source_uring(
        listener: &NetListener,
        sockbuf: usize,
    ) -> io::Result<(UringSinkSession, CtrlMsg)> {
        let caps = ring_caps()?;
        let mut streams = listener.accept_streams(sockbuf)?;
        // Bounded like `accept_session`: a silent post-hello peer is a
        // timeout error, not a parked sink.
        streams
            .ctrl
            .set_read_timeout(Some(crate::net::HELLO_TIMEOUT))?;
        let first = crate::net::read_one_ctrl_frame(&mut streams.ctrl)?;
        streams.ctrl.set_read_timeout(None)?;
        Ok((UringSinkSession { streams, caps }, first))
    }

    /// Run the sink half over one io_uring: the protocol brain is the
    /// same [`SinkHandler`] + [`drain_coalesced`] pair as the TCP sink,
    /// but placement, control reads, and the ack/credit dwell all ride
    /// the ring on **one** thread — no per-channel receivers, no
    /// control pump.
    pub fn run_uring_sink(
        cfg: &LiveConfig,
        session: UringSinkSession,
        first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        let snk_bufs: Vec<Mutex<SlotBuf>> = (0..cfg.pool_blocks)
            .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
            .collect();
        let view: Vec<&Mutex<SlotBuf>> = snk_bufs.iter().collect();
        run_uring_session(cfg, session, first_ctrl, &view, None)
    }

    /// The per-session uring sink runner the daemon schedules: one ring
    /// per session over *borrowed* slot buffers (an arena lease, or the
    /// standalone wrapper's own pool), with grants optionally under a
    /// weighted-fair arbiter — the ring analogue of
    /// [`crate::split::run_sink_session`].
    pub(crate) fn run_uring_session(
        cfg: &LiveConfig,
        session: UringSinkSession,
        first_ctrl: Option<CtrlMsg>,
        snk_bufs: &[&Mutex<SlotBuf>],
        fair: crate::split::FairShare<'_>,
    ) -> io::Result<LiveReport> {
        assert!(cfg.channels >= 1 && cfg.total_bytes > 0);
        assert_eq!(
            snk_bufs.len(),
            cfg.pool_blocks as usize,
            "one buffer per pool block"
        );
        let UringSinkSession { streams, caps } = session;
        let SessionStreams {
            ctrl,
            data,
            token: _,
        } = streams;
        assert_eq!(data.len(), cfg.channels, "one data link per channel");
        assert!(cfg.channels as u32 + 2 <= RING_ENTRIES);
        let total_blocks = cfg.total_blocks();
        let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);
        let snk_backend = SnkBackend::open(cfg)?;
        let direct_io_active = snk_backend.direct_active();

        let snk_pool = AtomicSinkPool::new(geo);
        let granter = Mutex::new(Granter::new(
            rftp_core::CreditMode::Proactive,
            cfg.initial_credits,
            cfg.grant_per_completion,
            4,
        ));
        let placed = AtomicBitmap::new(total_blocks);

        let ring = transfer_ring(&caps, true)?;
        ring.register_pool(snk_bufs)?;

        let mut handles = vec![ctrl.try_clone()?];
        for s in &data {
            handles.push(s.try_clone()?);
        }
        let handles = Arc::new(handles);
        let fail_handles = handles.clone();
        let fail = Fail::new(Arc::new(move || {
            shutdown_all(&fail_handles, Shutdown::Both)
        }));
        let ctrl_wr = ctrl.try_clone()?;
        let ctrl_tx = NetCtrlTx(Mutex::new(ctrl_wr));

        let start = Instant::now();
        let mut h = SinkHandler::new(cfg, &ctrl_tx, &snk_pool, &granter, snk_bufs, fair);
        let mut drv = SinkDriver {
            ring: &ring,
            links: data
                .iter()
                .map(|s| DataLink {
                    fd: s.as_raw_fd(),
                    phase: LinkPhase::Header { got: 0 },
                    hdr_buf: Box::new([0u8; DATA_FRAME_HEADER_LEN]),
                    scratch: Vec::new(),
                })
                .collect(),
            ctrl: CtrlLink {
                fd: ctrl.as_raw_fd(),
                buf: Box::new([0u8; 4096]),
                dec: rftp_core::wire::FrameDecoder::new(),
                eof: false,
            },
            snk_bufs,
            placed: &placed,
            backend: &snk_backend,
            cfg,
            total_blocks,
            inflight: 0,
            queued: 0,
            place_ns: 0,
            flush_ns: 0,
            duplicates: 0,
            place_hist: NsHist::new(),
            err: None,
            cqes: Vec::with_capacity(64),
            place_armed: 0,
            place_pending: VecDeque::new(),
            place_cap: env_u32("RFTP_URING_PLACE_CAP", 1).max(1),
            place_floor: start,
        };

        let run = (|| -> io::Result<()> {
            if let Some(msg) = first_ctrl {
                h.handle(SinkEvt::Ctrl(msg))?;
            }
            drv.arm_initial()?;
            match drain_coalesced(&mut h, &mut |w, out| drv.pump(w, out), cfg.flush_window)? {
                DrainEnd::Done => Ok(()),
                DrainEnd::Closed => Err(drv
                    .err
                    .take()
                    .unwrap_or_else(|| perr("event pipeline stopped before transfer completed"))),
            }
        })();
        if let Err(e) = run {
            fail.set(e);
        }
        // Quiesce before the slot buffers or ring can be freed: shut
        // every link (the transfer is over either way — the final acks
        // are already flushed and ride out ahead of the FIN), then
        // drain the in-flight reads the shutdown completes.
        shutdown_all(&handles, Shutdown::Both);
        drv.quiesce();
        let (place_ns, flush_ns, duplicates, place_hist) =
            (drv.place_ns, drv.flush_ns, drv.duplicates, drv.place_hist);
        if env_flag("RFTP_URING_STATS") {
            eprintln!(
                "uring sink: {} enters, {} cqes, {} blocks",
                ring.enters.load(Ordering::Relaxed),
                ring.reaped.load(Ordering::Relaxed),
                total_blocks,
            );
        }
        drop(ring);

        if fail.is_set() {
            return Err(fail.into_err());
        }
        let mut sync_ns = 0u64;
        if let SnkBackend::File(sink) = &snk_backend {
            let t0 = Instant::now();
            sink.sync()?;
            sync_ns = t0.elapsed().as_nanos() as u64;
        }
        let elapsed = start.elapsed();
        assert_eq!(h.delivered, total_blocks, "blocks lost in the pipeline");
        snk_pool.check_invariants();
        let per_block = |ns: u64| ns as f64 / total_blocks as f64;
        Ok(LiveReport {
            bytes: cfg.total_bytes,
            blocks: total_blocks,
            elapsed,
            gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
            checksum_failures: h.checksum_failures,
            ooo_blocks: h.reorder.ooo_arrivals,
            ctrl_msgs: h.ctrl_msgs,
            ctrl_msgs_per_block: h.ctrl_msgs as f64 / total_blocks as f64,
            credit_requests: 0,
            dropped_payloads: 0,
            retransmits: 0,
            duplicate_payloads: duplicates,
            stages: StageBreakdown {
                place_ns: per_block(place_ns),
                verify_ns: per_block(h.verify_ns),
                flush_ns: per_block(flush_ns),
                sync_ns: per_block(sync_ns),
                ..Default::default()
            },
            tails: StageTails {
                place: place_hist,
                verify: h.verify_hist.clone(),
                ..Default::default()
            },
            // The whole data path — all N links, placement, control,
            // and the dwell — is this one driver thread.
            transport_threads: 1,
            direct_io_active,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The raw ABI structs must match uapi/linux/io_uring.h exactly
        /// — a silent size drift corrupts the rings.
        #[test]
        fn abi_struct_sizes_match_kernel() {
            assert_eq!(std::mem::size_of::<IoUringParams>(), 120);
            assert_eq!(std::mem::size_of::<Sqe>(), 64);
            assert_eq!(std::mem::size_of::<Cqe>(), 16);
            assert_eq!(std::mem::size_of::<SqringOffsets>(), 40);
            assert_eq!(std::mem::size_of::<CqringOffsets>(), 40);
        }

        /// The capability probe must never panic, whatever the kernel.
        #[test]
        fn probe_is_total() {
            let _ = uring_supported();
        }

        /// Full uring↔uring loopback transfer: pattern data, checksum
        /// verified at the sink, one driver thread per side.
        #[test]
        fn uring_pattern_transfer_loopback() {
            if !uring_supported() {
                eprintln!("skipping: io_uring not supported by this kernel");
                return;
            }
            let cfg = LiveConfig::new(64 * 1024, 4, 8 << 20);
            let listener = NetListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let sockbuf = crate::net::default_sockbuf(cfg.block_size, cfg.channel_depth);
            let src_cfg = cfg.clone();
            let src = std::thread::spawn(move || {
                let t = connect_source_uring(addr, src_cfg.channels, sockbuf)?;
                crate::split::run_split_source(&src_cfg, t)
            });
            let (sess, first) = accept_source_uring(&listener, sockbuf).unwrap();
            let snk = run_uring_sink(&cfg, sess, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0);
            assert_eq!(
                snk.transport_threads, 1,
                "sink data path must be one thread"
            );
            assert_eq!(src.transport_threads, 1, "source adds one reaper thread");
            assert!(
                snk.ctrl_msgs_per_block <= 1.0,
                "control plane not coalesced: {:.2}/blk",
                snk.ctrl_msgs_per_block
            );
        }
    }
}

/// Portable stubs: the backend is Linux-only; every other platform
/// reports "unsupported" and the callers fall back to TCP.
#[cfg(not(target_os = "linux"))]
mod stub {
    use crate::net::NetListener;
    use crate::pipeline::{LiveConfig, LiveReport};
    use crate::transport::SourceTransport;
    use rftp_core::wire::CtrlMsg;
    use std::io;
    use std::net::ToSocketAddrs;

    /// Placeholder session handle; never constructible off-Linux.
    pub struct UringSinkSession(());

    impl UringSinkSession {
        pub(crate) fn from_streams(
            _streams: crate::net::SessionStreams,
        ) -> io::Result<UringSinkSession> {
            unsupported()
        }
    }

    pub fn uring_supported() -> bool {
        false
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "io_uring transport requires Linux",
        ))
    }

    pub fn connect_source_uring(
        _addr: impl ToSocketAddrs,
        _channels: usize,
        _sockbuf: usize,
    ) -> io::Result<SourceTransport> {
        unsupported()
    }

    pub fn accept_source_uring(
        _listener: &NetListener,
        _sockbuf: usize,
    ) -> io::Result<(UringSinkSession, CtrlMsg)> {
        unsupported()
    }

    pub fn run_uring_sink(
        _cfg: &LiveConfig,
        _session: UringSinkSession,
        _first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        unsupported()
    }

    pub(crate) fn run_uring_session(
        _cfg: &LiveConfig,
        _session: UringSinkSession,
        _first_ctrl: Option<CtrlMsg>,
        _snk_bufs: &[&parking_lot::Mutex<crate::store::SlotBuf>],
        _fair: crate::split::FairShare<'_>,
    ) -> io::Result<LiveReport> {
        unsupported()
    }
}

#[cfg(not(target_os = "linux"))]
pub(crate) use stub::run_uring_session;
#[cfg(not(target_os = "linux"))]
pub use stub::{
    accept_source_uring, connect_source_uring, run_uring_sink, uring_supported, UringSinkSession,
};
