//! The pipeline split in two: a standalone source half and sink half
//! joined only by a [`crate::transport`].
//!
//! [`run_live`](crate::run_live) proves the protocol on shared memory —
//! both halves in one address space, placement a memcpy between pools.
//! This module is the same machinery with the address space cut down the
//! middle: [`run_split_source`] runs loaders → dispatcher → retransmit
//! watchdog against a [`SourceTransport`], [`run_split_sink`] runs
//! per-channel receivers → control handler against a [`SinkTransport`],
//! and nothing crosses except control frames and data frames. Over the
//! TCP backend ([`crate::net`]) the two halves are two OS processes.
//!
//! What changes against the shared-memory pipeline, and why:
//!
//! * **Arrivals are in-band.** An RDMA WRITE is invisible to the sink
//!   CPU, so the shared-memory sink needs the source's completion
//!   notification (or `notify_imm`) to learn a block landed. A stream
//!   transport delivers the bytes *through* the sink's receiver — every
//!   arrival is its own notification, exactly the WRITE-with-immediate
//!   analogue, so the split sink always runs imm-style.
//! * **Acks flow sink → source.** The shared-memory source sees its own
//!   "NIC completion" locally; a TCP send completing says nothing about
//!   remote placement. The sink acks placed blocks (coalesced
//!   [`CtrlMsg::AckBatch`], same cap and flush window as the main
//!   pipeline) and the source retires blocks on those acks.
//! * **Placement is the socket read.** The receiver reads each frame's
//!   wire image straight into the slot its credit named — the transport
//!   hands over the header first, then fills the credited buffer, so
//!   there is no intermediate copy on either side of the wire.
//!
//! Everything else — pools, credit granter, reorder buffer, first-
//! placement dedup bitmap, in-order dispatch, fault injection and the
//! retransmit watchdog — is the exact machinery of the main pipeline.

use crate::coalesce::{channel_events, drain_coalesced, CoalescedSink, DrainEnd};
use crate::hist::{NsHist, StageTails};
use crate::pipeline::{
    backoff, drop_roll, pattern_seed, AtomicBitmap, CreditSlots, InFlightInfo, LiveConfig,
    LiveReport, SnkBackend, SrcBackend, StageBreakdown, SESSION, SINK_RKEY,
};
use crate::store::{RatePacer, SlotBuf};
use crate::transport::{channel_transport, CtrlTx, SinkTransport, SourceTransport};
use crossbeam::channel::bounded;
use parking_lot::Mutex;
use rftp_core::engine::expected_checksum;
use rftp_core::pattern::{checksum, fill_pattern};
use rftp_core::wire::{BlockAck, CtrlMsg, DataFrameHeader, PayloadHeader, PAYLOAD_HEADER_LEN};
use rftp_core::{
    AtomicSinkPool, AtomicSourcePool, Granter, PoolGeometry, ReorderBuffer, WeightedFair,
};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Capacity of the source's credit ring. The peer's pool bounds how many
/// credits can be outstanding, and the source no longer knows its size —
/// so the ring is simply sized past any configurable sink pool.
const REMOTE_SLOT_RING: u32 = 4096;

pub(crate) fn perr(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, msg.into())
}

/// First-error-wins failure latch shared by every thread of a half.
/// Recording an error tears the transport down ([`SourceTransport::abort`]
/// / [`SinkTransport::abort`]), so peers and siblings blocked on a link
/// error out instead of hanging; lock-free waits poll [`Fail::is_set`].
pub(crate) struct Fail {
    flag: AtomicBool,
    err: Mutex<Option<io::Error>>,
    abort: Arc<dyn Fn() + Send + Sync>,
}

impl Fail {
    pub(crate) fn new(abort: Arc<dyn Fn() + Send + Sync>) -> Fail {
        Fail {
            flag: AtomicBool::new(false),
            err: Mutex::new(None),
            abort,
        }
    }

    pub(crate) fn set(&self, e: io::Error) {
        {
            let mut slot = self.err.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        self.flag.store(true, Ordering::Release);
        (self.abort)();
    }

    pub(crate) fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    pub(crate) fn into_err(self) -> io::Error {
        self.err
            .into_inner()
            .unwrap_or_else(|| perr("transfer failed"))
    }
}

// ---------------------------------------------------------------------------
// Adaptive controller
// ---------------------------------------------------------------------------

/// Per-session adaptive control: one RFC 6298 estimator behind a lock,
/// with every figure the hot paths consume (retransmit deadline, dwell
/// window, in-flight depth target) mirrored into atomics so the watchdog
/// and the coalescing loop read without contending on the estimator.
///
/// Each half runs its own controller off its own feedback loop:
///
/// * the **source** samples block-sent → ack-retired (Karn-filtered to
///   first-attempt acks) and drives the retransmit deadline from
///   `srtt + 4·rttvar` instead of the fixed `retx_timeout`, which fires
///   spuriously the moment the path RTT approaches it;
/// * the **sink** samples credit-granted → data-arrived per slot and
///   drives the coalescing dwell (~srtt/8 instead of the loopback-tuned
///   floor) and — when the offered path rate is known — a 2×BDP bound on
///   outstanding credits, so a short pipe is not flooded with the whole
///   pool and a long one is filled.
pub(crate) struct Controller {
    est: Mutex<rftp_core::RttEstimator>,
    /// Derived figures, 0 = no estimate yet (fall back to the static knob).
    rto_ns: AtomicU64,
    dwell_ns: AtomicU64,
    depth: AtomicU64,
    first_block_ns: AtomicU64,
    t0: Instant,
    rate_bps: Option<f64>,
    block_size: usize,
    depth_cap: u32,
    depth_floor: u32,
}

impl Controller {
    pub(crate) fn new(cfg: &LiveConfig) -> Controller {
        Controller {
            est: Mutex::new(rftp_core::RttEstimator::new()),
            rto_ns: AtomicU64::new(0),
            dwell_ns: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            first_block_ns: AtomicU64::new(0),
            t0: Instant::now(),
            rate_bps: cfg.wan_rate_bps,
            block_size: cfg.block_size,
            depth_cap: cfg.pool_blocks,
            // Never throttle below two blocks per channel — the BDP of a
            // LAN path rounds to almost nothing, but every channel still
            // needs work in flight to overlap with the credit loop.
            depth_floor: (cfg.channels as u32 * 2).min(cfg.pool_blocks),
        }
    }

    /// Fold in one clean feedback-loop sample and refresh the derived
    /// atomics. Callers apply Karn's rule (first-attempt acks only).
    pub(crate) fn on_rtt_sample(&self, rtt: std::time::Duration) {
        let mut est = self.est.lock();
        est.on_sample(rtt);
        if let Some(rto) = est.rto() {
            // The controller's own depth target keeps ~2×BDP in flight,
            // so a block lawfully waits ~3×min_rtt for its ack —
            // propagation plus a full window draining ahead of it. The
            // RFC 6298 deadline undershoots that during the ramp (srtt
            // lags the queue it is busy building), so floor it at
            // 4×min_rtt: by-design queueing must never read as loss.
            // LAN paths are unaffected (µs-scale min_rtt, the 10 ms
            // estimator floor dominates).
            let floor = est
                .min_rtt()
                .map_or(0, |m| 4 * m.as_nanos().min(u64::MAX as u128 / 4) as u64);
            self.rto_ns
                .store((rto.as_nanos() as u64).max(floor), Ordering::Relaxed);
        }
        if let Some(dwell) = est.dwell() {
            self.dwell_ns
                .store(dwell.as_nanos() as u64, Ordering::Relaxed);
        }
        // The BDP depth target only means something on a propagation-
        // dominated path: below ~1 ms the measured floor is mostly
        // per-block service time (placement, checksum, scheduling), and
        // a clamp computed from it starves the thread pipeline that the
        // pool was sized for. LAN-class paths keep the full pool.
        if let (Some(rate), Some(min_rtt)) = (self.rate_bps, est.min_rtt()) {
            if min_rtt >= std::time::Duration::from_millis(1) {
                if let Some(bdp) = est.bdp_blocks(rate, self.block_size) {
                    let d = (bdp.min(self.depth_cap as u64) as u32).max(self.depth_floor);
                    self.depth.store(d as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// A watchdog deadline expired: count it toward the loss rate.
    pub(crate) fn on_loss(&self) {
        self.est.lock().on_loss();
    }

    /// Current retransmit deadline; `initial` until the first sample.
    pub(crate) fn rto(&self, initial: std::time::Duration) -> std::time::Duration {
        match self.rto_ns.load(Ordering::Relaxed) {
            0 => initial,
            ns => std::time::Duration::from_nanos(ns),
        }
    }

    /// Current dwell window; `initial` until the first sample.
    pub(crate) fn dwell(&self, initial: std::time::Duration) -> std::time::Duration {
        match self.dwell_ns.load(Ordering::Relaxed) {
            0 => initial,
            ns => std::time::Duration::from_nanos(ns),
        }
    }

    /// BDP-derived bound on outstanding credits, once rate and RTT are
    /// both known; `None` = leave the pool-sized default alone.
    pub(crate) fn depth(&self) -> Option<u32> {
        match self.depth.load(Ordering::Relaxed) {
            0 => None,
            d => Some(d as u32),
        }
    }

    /// Record first-block placement latency (idempotent; the first call
    /// wins). Measured from controller construction, which both halves
    /// do before the session handshake.
    pub(crate) fn mark_first_block(&self) {
        let ns = self.t0.elapsed().as_nanos().max(1) as u64;
        let _ = self
            .first_block_ns
            .compare_exchange(0, ns, Ordering::Relaxed, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> rftp_core::AdaptSnapshot {
        let mut s = self.est.lock().snapshot();
        s.effective_depth = self.depth.load(Ordering::Relaxed) as u32;
        s.first_block_us = self.first_block_ns.load(Ordering::Relaxed) as f64 / 1e3;
        s
    }
}

// ---------------------------------------------------------------------------
// Source half
// ---------------------------------------------------------------------------

/// Run the source half of a transfer over `t`: negotiate, load blocks
/// (pattern or `src_file`), dispatch them in sequence order as data
/// frames, retire them on the sink's acks, send `DatasetComplete`, and
/// half-close. Returns this half's view of the transfer.
pub fn run_split_source(cfg: &LiveConfig, t: SourceTransport) -> io::Result<LiveReport> {
    assert!(cfg.channels >= 1 && cfg.loaders >= 1 && cfg.total_bytes > 0);
    let total_blocks = cfg.total_blocks();
    let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);
    let src_backend = SrcBackend::open(cfg)?;
    let direct_io_active = src_backend.direct_active();
    let ra_limit = (cfg.readahead.saturating_add(1)).min(cfg.pool_blocks) as usize;
    let pacer = match &src_backend {
        SrcBackend::File(_) => cfg.src_rate.map(RatePacer::new),
        SrcBackend::Pattern => None,
    };

    let src_pool = AtomicSourcePool::new(geo);
    // Arc'd so a completion-based transport can hold the pool across its
    // in-flight sends (the registered-buffer lifetime).
    let src_bufs: Arc<Vec<Mutex<SlotBuf>>> = Arc::new(
        (0..cfg.pool_blocks)
            .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
            .collect(),
    );
    let stock = CreditSlots::new(REMOTE_SLOT_RING);
    let inflight: Vec<Mutex<Option<InFlightInfo>>> =
        (0..cfg.pool_blocks).map(|_| Mutex::new(None)).collect();
    // Which pool block carries each in-flight sequence — the ack names a
    // sequence, and over a real wire the sink cannot name our block.
    let seq2block: Mutex<HashMap<u32, u32>> = Mutex::new(HashMap::new());

    let SourceTransport {
        ctrl_tx,
        mut ctrl_rx,
        data,
        register,
        transport_threads,
        shutdown_write,
        abort,
    } = t;
    // Pin the pool into the transport (fixed-buffer registration on
    // io_uring, no-op elsewhere) before anything is sent.
    register(&src_bufs)?;
    let fail = Fail::new(abort);
    let next_seq = AtomicU64::new(0);
    let done_flag = AtomicBool::new(false);
    let (loaded_tx, loaded_rx) = bounded::<u32>(cfg.pool_blocks as usize);
    // The ack-loop estimator: block sent → ack retired, Karn-filtered.
    let ctl = cfg.adaptive.then(|| Controller::new(cfg));

    let start = Instant::now();
    ctrl_tx.send(&CtrlMsg::SessionRequest {
        session: SESSION,
        block_size: cfg.block_size as u64,
        channels: cfg.channels as u16,
        total_bytes: cfg.total_bytes,
        notify_imm: true, // stream arrivals are inherently in-band
    })?;
    let mut ctrl_msgs = 1u64;

    #[derive(Default)]
    struct Tally {
        ctrl: u64,
        credit_requests: u64,
        dropped: u64,
        retransmits: u64,
        load_ns: u64,
        dispatch_ns: u64,
        load_hist: NsHist,
        dispatch_hist: NsHist,
    }
    let mut tally = Tally::default();

    std::thread::scope(|s| {
        // Loaders: identical to the main pipeline, plus the failure poll
        // in the free-wait so a dead transport releases them.
        let loader_handles: Vec<_> = (0..cfg.loaders)
            .map(|_| {
                let loaded_tx = loaded_tx.clone();
                let (src_pool, src_backend, pacer) = (&src_pool, &src_backend, &pacer);
                let (src_bufs, inflight, seq2block) = (&src_bufs, &inflight, &seq2block);
                let (next_seq, fail, cfg) = (&next_seq, &fail, &cfg);
                s.spawn(move || {
                    let mut load_ns = 0u64;
                    let mut load_hist = NsHist::new();
                    loop {
                        let mut spins = 0;
                        let block = loop {
                            if next_seq.load(Ordering::Relaxed) >= total_blocks || fail.is_set() {
                                return (load_ns, load_hist);
                            }
                            if src_pool.in_flight() < ra_limit {
                                if let Some(b) = src_pool.get_free() {
                                    break b;
                                }
                            }
                            backoff(&mut spins);
                        };
                        let seq = next_seq.fetch_add(1, Ordering::Relaxed);
                        if seq >= total_blocks {
                            src_pool.abandon(block).expect("FSM: abandon");
                            return (load_ns, load_hist);
                        }
                        let offset = seq * cfg.block_size as u64;
                        let len = (cfg.total_bytes - offset).min(cfg.block_size as u64) as u32;
                        let t0 = Instant::now();
                        {
                            let mut buf = src_bufs[block as usize].lock();
                            PayloadHeader {
                                session: SESSION,
                                seq: seq as u32,
                                offset,
                                len,
                            }
                            .encode(&mut buf[..PAYLOAD_HEADER_LEN]);
                            match src_backend {
                                SrcBackend::Pattern => fill_pattern(
                                    &mut buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize],
                                    pattern_seed(seq as u32),
                                ),
                                SrcBackend::File(f) => {
                                    if let Err(e) = f.read_block(
                                        &mut buf[PAYLOAD_HEADER_LEN..],
                                        len as usize,
                                        offset,
                                    ) {
                                        fail.set(e);
                                        return (load_ns, load_hist);
                                    }
                                    if let Some(p) = pacer {
                                        p.pace(len as usize);
                                    }
                                }
                            }
                        }
                        let ns = t0.elapsed().as_nanos() as u64;
                        load_ns += ns;
                        load_hist.record(ns);
                        *inflight[block as usize].lock() = Some(InFlightInfo {
                            seq: seq as u32,
                            slot: u32::MAX,
                            len,
                            sent_at: Instant::now(),
                            attempts: 0,
                        });
                        seq2block.lock().insert(seq as u32, block);
                        src_pool.loaded(block).expect("FSM: loaded");
                        if loaded_tx.send(block).is_err() {
                            return (load_ns, load_hist); // dispatcher bailed; fail is set
                        }
                    }
                })
            })
            .collect();
        drop(loaded_tx);

        // Dispatcher: in-order, credit-paired, one vectored send per
        // block straight from the pinned block buffer.
        let dispatcher = {
            let (data, ctrl_tx) = (data.clone(), ctrl_tx.clone());
            let (stock, src_pool, inflight, src_bufs) = (&stock, &src_pool, &inflight, &src_bufs);
            let (fail, cfg) = (&fail, &cfg);
            s.spawn(move || {
                let mut rr = 0usize;
                let mut fault_rng = cfg.fault_seed;
                let mut dispatch_ns = 0u64;
                let mut dispatch_hist = NsHist::new();
                let mut ctrl_sent = 0u64;
                let mut credit_requests = 0u64;
                let mut dropped = 0u64;
                // Dispatch must stay in sequence order (the head-of-line
                // invariant the main pipeline documents); loaders finish
                // out of order.
                let mut dispatch_order = ReorderBuffer::<u32>::new();
                let mut ready: std::collections::VecDeque<u32> = Default::default();
                let mut drain: Vec<u32> = Vec::with_capacity(cfg.pool_blocks as usize);
                while let Ok(_n) = loaded_rx.recv_batch(&mut drain, cfg.pool_blocks as usize) {
                    for block in drain.drain(..) {
                        let seq = inflight[block as usize]
                            .lock()
                            .as_ref()
                            .expect("loaded block untracked")
                            .seq;
                        for (_, b) in dispatch_order.push(seq, block) {
                            ready.push_back(b);
                        }
                    }
                    while let Some(block) = ready.pop_front() {
                        let slot = {
                            let mut spins = 0;
                            let mut starved_since: Option<Instant> = None;
                            let mut kicked = false;
                            loop {
                                if fail.is_set() {
                                    return (
                                        dispatch_ns,
                                        ctrl_sent,
                                        credit_requests,
                                        dropped,
                                        dispatch_hist,
                                    );
                                }
                                if let Some(s2) = stock.slots.try_pop() {
                                    break s2;
                                }
                                // Out of credits: before waiting on the
                                // sink's grants, make sure every queued
                                // send is actually on the wire — the
                                // grants we are waiting for are earned by
                                // arrivals.
                                if !kicked {
                                    kicked = true;
                                    if let Err(e) = data.iter().try_for_each(|d| d.kick()) {
                                        fail.set(e);
                                        return (
                                            dispatch_ns,
                                            ctrl_sent,
                                            credit_requests,
                                            dropped,
                                            dispatch_hist,
                                        );
                                    }
                                }
                                if !stock.request_outstanding.swap(true, Ordering::AcqRel) {
                                    credit_requests += 1;
                                    ctrl_sent += 1;
                                    if let Err(e) =
                                        ctrl_tx.send(&CtrlMsg::MrRequest { session: SESSION })
                                    {
                                        fail.set(e);
                                        return (
                                            dispatch_ns,
                                            ctrl_sent,
                                            credit_requests,
                                            dropped,
                                            dispatch_hist,
                                        );
                                    }
                                    starved_since = Some(Instant::now());
                                }
                                if starved_since.is_some_and(|t| {
                                    t.elapsed() > std::time::Duration::from_millis(20)
                                }) {
                                    stock.request_outstanding.store(false, Ordering::Release);
                                    starved_since = None;
                                }
                                backoff(&mut spins);
                            }
                        };
                        let t0 = Instant::now();
                        let info = {
                            let mut inf = inflight[block as usize].lock();
                            let i = inf.as_mut().expect("loaded block untracked");
                            i.slot = slot;
                            i.sent_at = Instant::now();
                            i.attempts = 1;
                            *i
                        };
                        src_pool.start_sending(block).expect("FSM: start_sending");
                        src_pool.posted(block).expect("FSM: posted");
                        let ch = rr % data.len();
                        rr += 1;
                        if cfg.fault_drop_p > 0.0 && drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            // The wire ate it; the watchdog re-sends.
                            dropped += 1;
                        } else {
                            let hdr = DataFrameHeader {
                                session: SESSION,
                                seq: info.seq,
                                slot,
                                len: info.len,
                            };
                            if let Err(e) = data[ch].send_block(hdr, src_bufs.as_slice(), block) {
                                fail.set(e);
                                return (
                                    dispatch_ns,
                                    ctrl_sent,
                                    credit_requests,
                                    dropped,
                                    dispatch_hist,
                                );
                            }
                        }
                        let ns = t0.elapsed().as_nanos() as u64;
                        dispatch_ns += ns;
                        dispatch_hist.record(ns);
                    }
                    // One doorbell per drain: submit the whole batch of
                    // queued sends with a single kernel crossing before
                    // blocking for the next load.
                    let t0 = Instant::now();
                    if let Err(e) = data.iter().try_for_each(|d| d.kick()) {
                        fail.set(e);
                        return (
                            dispatch_ns,
                            ctrl_sent,
                            credit_requests,
                            dropped,
                            dispatch_hist,
                        );
                    }
                    dispatch_ns += t0.elapsed().as_nanos() as u64;
                }
                if !fail.is_set() {
                    assert!(
                        dispatch_order.is_drained(),
                        "loads ended with a sequence gap"
                    );
                }
                (
                    dispatch_ns,
                    ctrl_sent,
                    credit_requests,
                    dropped,
                    dispatch_hist,
                )
            })
        };

        // Retransmit watchdog, as in the main pipeline: unacked past the
        // deadline goes back on the wire. Statically configured runs use
        // the fixed `retx_timeout`; adaptive runs start from a deadline
        // that cannot fire before the path is measured (a fixed 100 ms
        // default fires spuriously at WAN RTTs) and then track the
        // estimator's `srtt + 4·rttvar`.
        let retx_watchdog = (cfg.fault_drop_p > 0.0 || cfg.adaptive).then(|| {
            let data = data.clone();
            let (inflight, src_bufs) = (&inflight, &src_bufs);
            let (done_flag, fail, cfg, ctl) = (&done_flag, &fail, &cfg, &ctl);
            s.spawn(move || {
                let mut fault_rng = cfg.fault_seed ^ 0x5EED_5EED_5EED_5EED;
                let mut rr = 0usize;
                let mut retransmits = 0u64;
                let mut dropped = 0u64;
                let initial = match ctl {
                    Some(_) => cfg.retx_timeout.max(std::time::Duration::from_millis(100)),
                    None => cfg.retx_timeout,
                };
                while !done_flag.load(Ordering::Relaxed) && !fail.is_set() {
                    let deadline = ctl.as_ref().map_or(cfg.retx_timeout, |c| c.rto(initial));
                    std::thread::sleep(deadline / 4);
                    for block in 0..cfg.pool_blocks {
                        // Hold the entry across the re-send so a racing
                        // ack cannot retire the block mid-send.
                        let mut inf = inflight[block as usize].lock();
                        let Some(i) = inf.as_mut() else { continue };
                        if i.slot == u32::MAX {
                            continue;
                        }
                        // Karn's backoff: every unacked attempt doubles
                        // this block's own deadline. The RTO tracks
                        // *network* srtt, but the ack can also stall on
                        // receiver-side work (write-behind flush, CPU
                        // steal); without backoff one such stall expires
                        // the whole window, and the retransmits re-queue
                        // behind the stall and expire again — a storm
                        // that feeds the loss EWMA instead of the pipe.
                        let shift = i.attempts.saturating_sub(1).min(6);
                        if i.sent_at.elapsed() < deadline.saturating_mul(1 << shift) {
                            continue;
                        }
                        assert!(i.attempts < 64, "block seq {} will not go through", i.seq);
                        i.sent_at = Instant::now();
                        i.attempts += 1;
                        retransmits += 1;
                        if let Some(c) = ctl {
                            c.on_loss();
                        }
                        let ch = rr % data.len();
                        rr += 1;
                        if drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            dropped += 1;
                        } else {
                            let hdr = DataFrameHeader {
                                session: SESSION,
                                seq: i.seq,
                                slot: i.slot,
                                len: i.len,
                            };
                            // Queue + kick immediately: retransmits are
                            // rare and latency-bound, not batched.
                            if let Err(e) = data[ch]
                                .send_block(hdr, src_bufs.as_slice(), block)
                                .and_then(|()| data[ch].kick())
                            {
                                fail.set(e);
                                return (retransmits, dropped);
                            }
                        }
                    }
                }
                (retransmits, dropped)
            })
        });

        // Control thread: deposits credits, retires blocks on the sink's
        // acks, and runs the teardown — `DatasetComplete`, write
        // shutdown, then a drain to end-of-stream so the link closes
        // only after the sink has read everything.
        let ctrl = {
            let ctrl_tx = ctrl_tx.clone();
            let (stock, src_pool, inflight, seq2block) = (&stock, &src_pool, &inflight, &seq2block);
            let (done_flag, fail, ctl) = (&done_flag, &fail, &ctl);
            s.spawn(move || {
                let mut ctrl_count = 0u64;
                let mut completed = 0u64;
                let retire = |seq: u32| -> io::Result<()> {
                    let block = seq2block
                        .lock()
                        .remove(&seq)
                        .ok_or_else(|| perr(format!("ack for unknown seq {seq}")))?;
                    let info = inflight[block as usize]
                        .lock()
                        .take()
                        .ok_or_else(|| perr(format!("ack for idle block {block}")))?;
                    debug_assert_eq!(info.seq, seq);
                    // Karn's rule: a retransmitted block's ack cannot be
                    // attributed to an attempt, so only first-attempt
                    // acks feed the estimator.
                    if info.attempts == 1 {
                        if let Some(c) = ctl {
                            c.on_rtt_sample(info.sent_at.elapsed());
                        }
                    }
                    src_pool.complete(block).expect("FSM: complete");
                    Ok(())
                };
                while completed < total_blocks {
                    match ctrl_rx.recv() {
                        Ok(Some(msg)) => {
                            ctrl_count += 1;
                            let handled = match msg {
                                CtrlMsg::SessionAccept { session, .. } if session == SESSION => {
                                    Ok(())
                                }
                                CtrlMsg::Credits { session, credits } if session == SESSION => {
                                    for c in credits {
                                        stock.deposit(c.slot);
                                    }
                                    Ok(())
                                }
                                CtrlMsg::CreditBatch { session, slots, .. }
                                    if session == SESSION =>
                                {
                                    for slot in slots {
                                        stock.deposit(slot);
                                    }
                                    Ok(())
                                }
                                CtrlMsg::BlockComplete { session, seq, .. }
                                    if session == SESSION =>
                                {
                                    completed += 1;
                                    retire(seq)
                                }
                                CtrlMsg::AckBatch { session, acks } if session == SESSION => {
                                    completed += acks.len() as u64;
                                    acks.iter().try_for_each(|a| retire(a.seq))
                                }
                                // Typed admission outcomes: a busy sink
                                // names a retry delay (transient), a
                                // reject names a geometry the sink will
                                // never take. Distinct error kinds so
                                // callers can tell them apart.
                                CtrlMsg::SessionBusy { retry_after_ms, .. } => Err(io::Error::new(
                                    io::ErrorKind::ConnectionRefused,
                                    format!("sink is busy; retry after {retry_after_ms} ms"),
                                )),
                                CtrlMsg::SessionReject { reason, .. } => Err(io::Error::new(
                                    io::ErrorKind::InvalidInput,
                                    format!("sink rejected the session (reason {reason})"),
                                )),
                                other => Err(perr(format!("unexpected ctrl at source: {other:?}"))),
                            };
                            if let Err(e) = handled {
                                fail.set(e);
                                return ctrl_count;
                            }
                        }
                        Ok(None) => {
                            fail.set(perr("peer closed the control stream mid-transfer"));
                            return ctrl_count;
                        }
                        Err(e) => {
                            if !fail.is_set() {
                                fail.set(e);
                            }
                            return ctrl_count;
                        }
                    }
                }
                done_flag.store(true, Ordering::Relaxed);
                match ctrl_tx.send(&CtrlMsg::DatasetComplete {
                    session: SESSION,
                    total_blocks: total_blocks as u32,
                }) {
                    Ok(()) => ctrl_count += 1,
                    Err(e) => {
                        fail.set(e);
                        return ctrl_count;
                    }
                }
                shutdown_write();
                // Drain trailing frames (credits granted after our last
                // block freed) until the sink closes its side.
                while let Ok(Some(_)) = ctrl_rx.recv() {
                    ctrl_count += 1;
                }
                ctrl_count
            })
        };

        for h in loader_handles {
            let (load_ns, load_hist) = h.join().expect("loader panicked");
            tally.load_ns += load_ns;
            tally.load_hist.merge(&load_hist);
        }
        let (dispatch_ns, disp_ctrl, credit_requests, dropped, dispatch_hist) =
            dispatcher.join().expect("dispatcher panicked");
        tally.dispatch_ns = dispatch_ns;
        tally.dispatch_hist = dispatch_hist;
        tally.ctrl += disp_ctrl;
        tally.credit_requests = credit_requests;
        tally.dropped = dropped;
        if let Some(h) = retx_watchdog {
            let (retransmits, dropped) = h.join().expect("retx watchdog panicked");
            tally.retransmits = retransmits;
            tally.dropped += dropped;
        }
        tally.ctrl += ctrl.join().expect("source ctrl panicked");
    });

    if fail.is_set() {
        return Err(fail.into_err());
    }
    ctrl_msgs += tally.ctrl;
    let elapsed = start.elapsed();
    src_pool.check_invariants();
    let per_block = |ns: u64| ns as f64 / total_blocks as f64;
    Ok(LiveReport {
        bytes: cfg.total_bytes,
        blocks: total_blocks,
        elapsed,
        gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
        checksum_failures: 0,
        ooo_blocks: 0,
        ctrl_msgs,
        ctrl_msgs_per_block: ctrl_msgs as f64 / total_blocks as f64,
        credit_requests: tally.credit_requests,
        dropped_payloads: tally.dropped,
        retransmits: tally.retransmits,
        duplicate_payloads: 0,
        stages: StageBreakdown {
            load_ns: per_block(tally.load_ns),
            dispatch_ns: per_block(tally.dispatch_ns),
            ..Default::default()
        },
        tails: StageTails {
            load: tally.load_hist,
            dispatch: tally.dispatch_hist,
            ..Default::default()
        },
        transport_threads,
        direct_io_active,
        uring: None,
        adapt: ctl.as_ref().map(Controller::snapshot),
    })
}

// ---------------------------------------------------------------------------
// Sink half
// ---------------------------------------------------------------------------

/// Everything the sink's control handler reacts to, on one channel.
pub(crate) enum SinkEvt {
    /// A data frame placed into its credited slot.
    Arrival { seq: u32, slot: u32, len: u32 },
    /// A control frame from the peer.
    Ctrl(CtrlMsg),
    /// One data link reached clean end-of-stream.
    DataEof,
    /// The control link reached clean end-of-stream.
    CtrlEof,
}

/// The weighted-fair arbiter hook a daemon session runs under: grants
/// pass through `fair.allow(id, …)` before leaving, and every freed
/// block releases one outstanding credit back to the shared budget.
/// Standalone sinks run without one (no clamp).
pub(crate) type FairShare<'a> = Option<(&'a WeightedFair, u64)>;

/// The sink's protocol brain: negotiation, credit grants, in-order
/// verify-and-free, and the coalesced sink→source control traffic
/// (`AckBatch` for placements, `CreditBatch` for grants — same caps and
/// flush window as the main pipeline). Shared by the thread-per-channel
/// sink below and the io_uring sink driver ([`crate::uring`]).
///
/// Buffers arrive as a borrowed *view* (`&[&Mutex<SlotBuf>]`): a
/// standalone sink passes refs to its own pool, a daemon session passes
/// refs to the arena slots it leased — wire slot `i` is `snk_bufs[i]`
/// either way, so the protocol never sees the difference.
pub(crate) struct SinkHandler<'a> {
    cfg: &'a LiveConfig,
    ctrl_tx: &'a dyn CtrlTx,
    snk_pool: &'a AtomicSinkPool,
    granter: &'a Mutex<Granter>,
    snk_bufs: &'a [&'a Mutex<SlotBuf>],
    fair: FairShare<'a>,
    /// The grant-loop estimator (credit sent → data arrived), when this
    /// session runs adaptively. Drives the dwell window and the
    /// BDP-derived clamp on outstanding credits.
    ctl: Option<&'a Controller>,
    /// When each outstanding slot's grant left, for the grant-loop RTT
    /// sample its arrival closes. Only maintained under `ctl`.
    grant_at: HashMap<u32, Instant>,
    /// Grant opportunities the depth clamp withheld; retried as blocks
    /// free (a clamped completion grant must not evaporate, or the
    /// credit loop leaks and the source starves into `MrRequest`s).
    deferred: u32,
    verify_payload: bool,
    total_blocks: u64,
    pub(crate) reorder: ReorderBuffer<(u32, u32)>,
    expected_seq: u32,
    dc_seen: bool,
    eof_data: usize,
    pending_acks: Vec<BlockAck>,
    pending_credits: Vec<u32>,
    pub(crate) ctrl_msgs: u64,
    pub(crate) delivered: u64,
    pub(crate) checksum_failures: u64,
    pub(crate) verify_ns: u64,
    pub(crate) verify_hist: NsHist,
}

impl<'a> SinkHandler<'a> {
    pub(crate) fn new(
        cfg: &'a LiveConfig,
        ctrl_tx: &'a dyn CtrlTx,
        snk_pool: &'a AtomicSinkPool,
        granter: &'a Mutex<Granter>,
        snk_bufs: &'a [&'a Mutex<SlotBuf>],
        fair: FairShare<'a>,
        ctl: Option<&'a Controller>,
    ) -> SinkHandler<'a> {
        SinkHandler {
            cfg,
            ctrl_tx,
            snk_pool,
            granter,
            snk_bufs,
            fair,
            ctl,
            grant_at: HashMap::new(),
            deferred: 0,
            verify_payload: cfg.dst_file.is_none(),
            total_blocks: cfg.total_blocks(),
            reorder: ReorderBuffer::new(),
            expected_seq: 0,
            dc_seen: false,
            eof_data: 0,
            pending_acks: Vec::with_capacity(cfg.ack_batch()),
            pending_credits: Vec::with_capacity(cfg.pool_blocks as usize),
            ctrl_msgs: 0,
            delivered: 0,
            checksum_failures: 0,
            verify_ns: 0,
            verify_hist: NsHist::new(),
        }
    }
}

impl SinkHandler<'_> {
    fn idle(&self) -> bool {
        self.pending_acks.is_empty() && self.pending_credits.is_empty()
    }

    /// Pop up to `want` free slots into the pending grant batch. Under
    /// a daemon the arbiter clamps `want` to this session's fair share
    /// first; slots the pool could not actually supply are returned to
    /// the shared budget immediately. An adaptive session additionally
    /// clamps to the controller's BDP depth target — withheld grants are
    /// deferred, not dropped, and retried as blocks free.
    fn accumulate(&mut self, want: u32) {
        let want = match self.ctl.and_then(Controller::depth) {
            Some(depth) => {
                // Everything not free is on loan to the source (granted,
                // in flight, or awaiting in-order delivery) — including
                // the slots already batched in `pending_credits`.
                let outstanding =
                    (self.cfg.pool_blocks as usize - self.snk_pool.free_count()) as u32;
                let allowed = want.min(depth.saturating_sub(outstanding));
                self.deferred = (self.deferred + (want - allowed)).min(self.cfg.pool_blocks);
                allowed
            }
            None => want,
        };
        let want = match self.fair {
            Some((fair, id)) => fair.allow(id, want),
            None => want,
        };
        let before = self.pending_credits.len();
        self.pending_credits
            .extend((0..want).map_while(|_| self.snk_pool.grant()));
        let got = (self.pending_credits.len() - before) as u32;
        if got > 0 {
            self.granter.lock().note_granted(got);
        }
        if let Some((fair, id)) = self.fair {
            if got < want {
                fair.release(id, want - got);
            }
        }
    }

    fn flush_credits(&mut self) -> io::Result<()> {
        if self.pending_credits.is_empty() {
            return Ok(());
        }
        for chunk in self.pending_credits.chunks(self.cfg.credit_batch()) {
            self.ctrl_msgs += 1;
            self.ctrl_tx.send(&CtrlMsg::CreditBatch {
                session: SESSION,
                rkey: SINK_RKEY,
                slot_len: self.cfg.slot_bytes() as u32,
                slots: chunk.to_vec(),
            })?;
        }
        if self.ctl.is_some() {
            let now = Instant::now();
            for &slot in &self.pending_credits {
                self.grant_at.insert(slot, now);
            }
        }
        self.pending_credits.clear();
        Ok(())
    }

    fn flush_acks(&mut self) -> io::Result<()> {
        if self.pending_acks.is_empty() {
            return Ok(());
        }
        let msg = if self.pending_acks.len() == 1 && self.cfg.ctrl_batch <= 1 {
            let a = self.pending_acks[0];
            CtrlMsg::BlockComplete {
                session: SESSION,
                seq: a.seq,
                slot: a.slot,
                len: a.len,
            }
        } else {
            CtrlMsg::AckBatch {
                session: SESSION,
                acks: std::mem::take(&mut self.pending_acks),
            }
        };
        self.pending_acks.clear();
        self.ctrl_msgs += 1;
        self.ctrl_tx.send(&msg)
    }

    /// Verify and free one in-order delivery.
    fn deliver(&mut self, seq: u32, slot: u32, len: u32) -> io::Result<()> {
        assert_eq!(seq, self.expected_seq, "out-of-order delivery");
        if self.delivered == 0 {
            if let Some(c) = self.ctl {
                // First-block latency: the credit-ramp figure. Proactive
                // grants should land this inside 2·RTT of session start.
                c.mark_first_block();
            }
        }
        self.expected_seq += 1;
        let t0 = Instant::now();
        {
            let buf = self.snk_bufs[slot as usize].lock();
            let hdr = PayloadHeader::decode(&buf[..PAYLOAD_HEADER_LEN])
                .map_err(|e| perr(format!("bad payload header: {e:?}")))?;
            let ok = hdr.session == SESSION
                && hdr.seq == seq
                && hdr.len == len
                && (!self.verify_payload
                    || checksum(&buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize])
                        == expected_checksum(SESSION, seq, len));
            if !ok {
                self.checksum_failures += 1;
            }
        }
        let ns = t0.elapsed().as_nanos() as u64;
        self.verify_ns += ns;
        self.verify_hist.record(ns);
        self.snk_pool
            .put_free(slot)
            .map_err(|e| perr(format!("FSM put_free: {e:?}")))?;
        if let Some((fair, id)) = self.fair {
            fair.release(id, 1); // the credit this block rode came home
        }
        let owed = self.granter.lock().on_block_freed();
        if owed > 0 {
            // Answer a starved MrRequest immediately.
            self.accumulate(owed);
            self.flush_credits()?;
        }
        // A freed block opens depth-clamp headroom: retry withheld
        // grants (they ride the next batch flush, no urgency).
        let retry = std::mem::take(&mut self.deferred);
        if retry > 0 {
            self.accumulate(retry);
        }
        self.delivered += 1;
        Ok(())
    }
}

/// The shared [`drain_coalesced`] loop drives the handler — the same
/// dwell/flush shape as the main pipeline's control handlers, with
/// arrivals, peer control frames, and link EOFs as the event stream.
impl CoalescedSink<SinkEvt> for SinkHandler<'_> {
    type Err = io::Error;

    fn done(&self) -> bool {
        self.dc_seen && self.delivered == self.total_blocks
    }

    fn dwell(&self) -> bool {
        !self.idle()
    }

    fn window(&self) -> std::time::Duration {
        self.ctl
            .map_or(self.cfg.flush_window, |c| c.dwell(self.cfg.flush_window))
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_acks()?;
        self.flush_credits()
    }

    fn handle(&mut self, ev: SinkEvt) -> io::Result<()> {
        match ev {
            SinkEvt::Arrival { seq, slot, len } => {
                if let Some(c) = self.ctl {
                    if let Some(granted) = self.grant_at.remove(&slot) {
                        // Grant-loop sample: credit out → data in. A
                        // retransmitted block inflates this (no Karn
                        // attribution at the sink), which only widens
                        // the dwell — conservative by construction.
                        c.on_rtt_sample(granted.elapsed());
                    }
                }
                self.snk_pool
                    .ready(slot)
                    .map_err(|e| perr(format!("arrival in non-granted slot {slot}: {e:?}")))?;
                for (s2, (slot2, len2)) in self.reorder.push(seq, (slot, len)) {
                    self.deliver(s2, slot2, len2)?;
                }
                let want = self.granter.lock().on_completion();
                self.accumulate(want);
                self.pending_acks.push(BlockAck { seq, slot, len });
                if self.pending_acks.len() >= self.cfg.ack_batch() {
                    self.flush_acks()?;
                }
                if self.pending_credits.len() >= self.cfg.credit_batch() {
                    self.flush_credits()?;
                }
                Ok(())
            }
            SinkEvt::Ctrl(msg) => {
                self.ctrl_msgs += 1;
                match msg {
                    CtrlMsg::SessionRequest {
                        session,
                        block_size,
                        channels,
                        total_bytes,
                        ..
                    } => {
                        if session != SESSION
                            || block_size != self.cfg.block_size as u64
                            || channels != self.cfg.channels as u16
                            || total_bytes != self.cfg.total_bytes
                        {
                            return Err(perr(format!(
                                "SessionRequest disagrees with sink config: \
                                 {block_size}B × {channels}ch, {total_bytes} bytes vs \
                                 {}B × {}ch, {} bytes",
                                self.cfg.block_size, self.cfg.channels, self.cfg.total_bytes
                            )));
                        }
                        self.ctrl_msgs += 1;
                        self.ctrl_tx.send(&CtrlMsg::SessionAccept {
                            session: SESSION,
                            block_size: self.cfg.block_size as u64,
                            data_qpns: (0..self.cfg.channels as u32).collect(),
                        })?;
                        let want = self.granter.lock().on_accept();
                        self.accumulate(want);
                        self.flush_credits()
                    }
                    CtrlMsg::MrRequest { session } if session == SESSION => {
                        let free = self.snk_pool.free_count();
                        let want = self.granter.lock().on_request(free);
                        self.accumulate(want);
                        self.flush_credits()
                    }
                    CtrlMsg::DatasetComplete {
                        session,
                        total_blocks,
                    } if session == SESSION => {
                        if total_blocks as u64 != self.total_blocks {
                            return Err(perr(format!(
                                "DatasetComplete for {total_blocks} blocks, expected {}",
                                self.total_blocks
                            )));
                        }
                        self.dc_seen = true;
                        Ok(())
                    }
                    other => Err(perr(format!("unexpected ctrl at sink: {other:?}"))),
                }
            }
            SinkEvt::DataEof => {
                self.eof_data += 1;
                if self.eof_data == self.cfg.channels && self.delivered < self.total_blocks {
                    return Err(perr(format!(
                        "peer closed the data streams after {} of {} blocks",
                        self.delivered, self.total_blocks
                    )));
                }
                Ok(())
            }
            SinkEvt::CtrlEof => {
                if self.dc_seen {
                    Ok(())
                } else {
                    Err(perr("peer closed the control stream mid-transfer"))
                }
            }
        }
    }
}

/// Run the sink half of a transfer over `t`: grant credits, place
/// arriving frames into their credited slots (directly from the link —
/// the transport read *is* the placement), verify and free in order, ack
/// placed blocks back to the source, and finish on `DatasetComplete`.
///
/// `cfg` must agree with the source on `block_size`, `channels`, and
/// `total_bytes` (the handler checks the `SessionRequest` against it);
/// pool size, destination file, and I/O mode are this side's own.
/// `first_ctrl` is a frame already read off the control link during
/// session setup (the TCP listener consumes the `SessionRequest` to
/// build `cfg`), replayed to the handler before live traffic.
///
/// Without a `dst_file` the sink checksum-verifies against the pattern
/// generator — pair a file *source* with a file *sink*, or every block
/// counts as a checksum failure.
pub fn run_split_sink(
    cfg: &LiveConfig,
    t: SinkTransport,
    first_ctrl: Option<CtrlMsg>,
) -> io::Result<LiveReport> {
    let snk_bufs: Vec<Mutex<SlotBuf>> = (0..cfg.pool_blocks)
        .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
        .collect();
    let view: Vec<&Mutex<SlotBuf>> = snk_bufs.iter().collect();
    run_sink_session(cfg, t, first_ctrl, &view, None)
}

/// The reusable per-session sink runner the daemon schedules: exactly
/// [`run_split_sink`], but the slot buffers are borrowed (a lease from
/// the daemon's shared arena — or the standalone wrapper's own pool)
/// and grants can run under a [`WeightedFair`] arbiter. `bufs[i]` backs
/// wire slot `i`; its capacity may exceed `cfg.block_size` (arena slots
/// are sized for the largest admissible session — every access is a
/// `wire_len` prefix).
pub(crate) fn run_sink_session(
    cfg: &LiveConfig,
    t: SinkTransport,
    first_ctrl: Option<CtrlMsg>,
    snk_bufs: &[&Mutex<SlotBuf>],
    fair: FairShare<'_>,
) -> io::Result<LiveReport> {
    assert!(cfg.channels >= 1 && cfg.total_bytes > 0);
    assert_eq!(
        snk_bufs.len(),
        cfg.pool_blocks as usize,
        "one buffer per pool block"
    );
    let total_blocks = cfg.total_blocks();
    let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);
    let snk_backend = SnkBackend::open(cfg)?;
    let direct_io_active = snk_backend.direct_active();

    let snk_pool = AtomicSinkPool::new(geo);
    let granter = Mutex::new(Granter::new(
        rftp_core::CreditMode::Proactive,
        cfg.initial_credits,
        cfg.grant_per_completion,
        4,
    ));
    let placed = AtomicBitmap::new(total_blocks);

    let SinkTransport {
        ctrl_tx,
        mut ctrl_rx,
        data,
        abort,
    } = t;
    assert_eq!(data.len(), cfg.channels, "one data link per channel");
    let fail = Fail::new(abort);
    let (evt_tx, evt_rx) = bounded::<SinkEvt>(1024);
    // The grant-loop estimator: credit sent → data arrived, per slot.
    let ctl = cfg.adaptive.then(|| Controller::new(cfg));

    let start = Instant::now();
    let mut tally = (0u64, 0u64, 0u64); // place_ns, flush_ns, duplicates
    let mut place_tails = NsHist::new();
    let mut handler_out: Option<SinkHandler> = None;

    std::thread::scope(|s| {
        // Control pump: frames off the control link into the event
        // channel. Exits at end-of-stream (normal once DatasetComplete
        // has passed) or on a link error.
        let pump = {
            let evt_tx = evt_tx.clone();
            let fail = &fail;
            s.spawn(move || loop {
                match ctrl_rx.recv() {
                    Ok(Some(msg)) => {
                        if evt_tx.send(SinkEvt::Ctrl(msg)).is_err() {
                            return; // handler bailed; fail is set
                        }
                    }
                    Ok(None) => {
                        let _ = evt_tx.send(SinkEvt::CtrlEof);
                        return;
                    }
                    Err(e) => {
                        if !fail.is_set() {
                            fail.set(e);
                        }
                        return;
                    }
                }
            })
        };

        // Per-channel receivers: the "NIC". Each frame's wire image is
        // read straight into the slot its header names — the credited,
        // pre-registered buffer — or discarded unread if the sequence
        // was already placed (a retransmit raced a slow ack; its slot
        // may have been re-granted, so placing it would corrupt a newer
        // block).
        let receiver_handles: Vec<_> = data
            .into_iter()
            .map(|mut rx| {
                let evt_tx = evt_tx.clone();
                let (snk_bufs, placed, snk_backend) = (&snk_bufs, &placed, &snk_backend);
                let (fail, cfg) = (&fail, &cfg);
                s.spawn(move || {
                    let mut place_ns = 0u64;
                    let mut flush_ns = 0u64;
                    let mut duplicates = 0u64;
                    let mut place_hist = NsHist::new();
                    loop {
                        let hdr = match rx.recv_header() {
                            Ok(Some(hdr)) => hdr,
                            Ok(None) => {
                                let _ = evt_tx.send(SinkEvt::DataEof);
                                return (place_ns, flush_ns, duplicates, place_hist);
                            }
                            Err(e) => {
                                if !fail.is_set() {
                                    fail.set(e);
                                }
                                return (place_ns, flush_ns, duplicates, place_hist);
                            }
                        };
                        if hdr.session != SESSION
                            || hdr.slot >= cfg.pool_blocks
                            || hdr.len as usize > cfg.block_size
                            || hdr.seq as u64 >= total_blocks
                        {
                            fail.set(perr(format!("bad data frame {hdr:?}")));
                            return (place_ns, flush_ns, duplicates, place_hist);
                        }
                        if !placed.claim(hdr.seq as u64) {
                            duplicates += 1;
                            if let Err(e) = rx.discard_wire(hdr.wire_len()) {
                                fail.set(e);
                                return (place_ns, flush_ns, duplicates, place_hist);
                            }
                            continue;
                        }
                        let t0 = Instant::now();
                        {
                            let mut dst = snk_bufs[hdr.slot as usize].lock();
                            if let Err(e) = rx.recv_wire(&mut dst[..hdr.wire_len()]) {
                                fail.set(e);
                                return (place_ns, flush_ns, duplicates, place_hist);
                            }
                            let ns = t0.elapsed().as_nanos() as u64;
                            place_ns += ns;
                            place_hist.record(ns);
                            if let SnkBackend::File(sink) = snk_backend {
                                // Write-behind: the block lands at its
                                // final offset the moment it is placed;
                                // sparse placement is the reassembly.
                                let t1 = Instant::now();
                                if let Err(e) = sink.write_block(
                                    &dst[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + hdr.len as usize],
                                    hdr.seq as u64 * cfg.block_size as u64,
                                ) {
                                    fail.set(e);
                                    return (place_ns, flush_ns, duplicates, place_hist);
                                }
                                flush_ns += t1.elapsed().as_nanos() as u64;
                            }
                        }
                        if evt_tx
                            .send(SinkEvt::Arrival {
                                seq: hdr.seq,
                                slot: hdr.slot,
                                len: hdr.len,
                            })
                            .is_err()
                        {
                            return (place_ns, flush_ns, duplicates, place_hist);
                            // handler bailed
                        }
                    }
                })
            })
            .collect();
        drop(evt_tx);

        // The handler runs on the scope's own thread.
        let mut h = SinkHandler::new(
            cfg,
            ctrl_tx.as_ref(),
            &snk_pool,
            &granter,
            snk_bufs,
            fair,
            ctl.as_ref(),
        );
        let run = (|| -> io::Result<()> {
            if let Some(msg) = first_ctrl {
                h.handle(SinkEvt::Ctrl(msg))?;
            }
            match drain_coalesced(&mut h, &mut channel_events(&evt_rx, 64))? {
                DrainEnd::Done => Ok(()),
                DrainEnd::Closed => Err(perr("event pipeline stopped before transfer completed")),
            }
        })();
        if let Err(e) = run {
            if !fail.is_set() {
                fail.set(e);
            }
        }
        // Release any receiver blocked handing over an event, then join.
        drop(evt_rx);
        handler_out = Some(h);
        for rh in receiver_handles {
            let (place_ns, flush_ns, duplicates, place_hist) =
                rh.join().expect("receiver panicked");
            tally.0 += place_ns;
            tally.1 += flush_ns;
            tally.2 += duplicates;
            place_tails.merge(&place_hist);
        }
        pump.join().expect("ctrl pump panicked");
    });

    if fail.is_set() {
        return Err(fail.into_err());
    }
    let h = handler_out.expect("handler state");

    // Dataset-completion durability, inside the timing window.
    let mut sync_ns = 0u64;
    if let SnkBackend::File(sink) = &snk_backend {
        let t0 = Instant::now();
        sink.sync()?;
        sync_ns = t0.elapsed().as_nanos() as u64;
    }
    let elapsed = start.elapsed();
    assert_eq!(h.delivered, total_blocks, "blocks lost in the pipeline");
    snk_pool.check_invariants();
    let per_block = |ns: u64| ns as f64 / total_blocks as f64;
    Ok(LiveReport {
        bytes: cfg.total_bytes,
        blocks: total_blocks,
        elapsed,
        gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
        checksum_failures: h.checksum_failures,
        ooo_blocks: h.reorder.ooo_arrivals,
        ctrl_msgs: h.ctrl_msgs,
        ctrl_msgs_per_block: h.ctrl_msgs as f64 / total_blocks as f64,
        credit_requests: 0,
        dropped_payloads: 0,
        retransmits: 0,
        duplicate_payloads: tally.2,
        stages: StageBreakdown {
            place_ns: per_block(tally.0),
            verify_ns: per_block(h.verify_ns),
            flush_ns: per_block(tally.1),
            sync_ns: per_block(sync_ns),
            ..Default::default()
        },
        tails: StageTails {
            place: place_tails,
            verify: h.verify_hist,
            ..Default::default()
        },
        // Per-channel receivers plus the control pump — the O(channels)
        // thread zoo the ring backend collapses.
        transport_threads: cfg.channels + 1,
        direct_io_active,
        uring: None,
        adapt: ctl.as_ref().map(Controller::snapshot),
    })
}

/// Run both halves in this process over the in-proc channel transport —
/// the split pipeline's loopback. Source takes the `src_file`/fault side
/// of `cfg`, sink the `dst_file` side. Returns `(source, sink)` reports.
pub fn run_split_pair(cfg: &LiveConfig) -> io::Result<(LiveReport, LiveReport)> {
    run_split_pair_wan(cfg, &rftp_faults::WanProfile::clean())
}

/// [`run_split_pair`] with a WAN impairment shim between the halves —
/// the in-process form of a two-process `--wan` run: both directions of
/// the in-proc transport are wrapped, so control and data feel the
/// profile's full RTT, loss, and rate cap. A clean profile degenerates
/// to the plain pair.
pub fn run_split_pair_wan(
    cfg: &LiveConfig,
    wan: &rftp_faults::WanProfile,
) -> io::Result<(LiveReport, LiveReport)> {
    let pair = channel_transport(cfg.channels, cfg.channel_depth);
    let (st, kt) = crate::netem::wrap_pair(pair, wan);
    let mut src_cfg = cfg.clone();
    src_cfg.dst_file = None;
    let mut snk_cfg = cfg.clone();
    snk_cfg.src_file = None;
    snk_cfg.src_rate = None;
    snk_cfg.fault_drop_p = 0.0;
    std::thread::scope(|s| {
        let sink = s.spawn(|| run_split_sink(&snk_cfg, kt, None));
        let source = run_split_source(&src_cfg, st);
        let sink = sink.join().expect("sink half panicked");
        Ok((source?, sink?))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: u64 = if cfg!(debug_assertions) { 8 } else { 1 };

    #[test]
    fn split_pair_moves_pattern_data_exactly() {
        let mut cfg = LiveConfig::new(64 * 1024, 2, (8 << 20) / SCALE);
        cfg.pool_blocks = 16;
        let (src, snk) = run_split_pair(&cfg).expect("split transfer");
        assert_eq!(src.blocks, 128 / SCALE);
        assert_eq!(snk.blocks, 128 / SCALE);
        assert_eq!(snk.checksum_failures, 0);
        assert!(src.ctrl_msgs > 0 && snk.ctrl_msgs > 0);
    }

    #[test]
    fn split_pair_coalesces_control_traffic() {
        let mut cfg = LiveConfig::new(8 * 1024, 4, (8 << 20) / SCALE);
        cfg.pool_blocks = 32;
        cfg.flush_window = std::time::Duration::from_micros(500);
        let (src, snk) = run_split_pair(&cfg).expect("split transfer");
        assert_eq!(snk.checksum_failures, 0);
        assert!(
            src.ctrl_msgs_per_block < 1.0,
            "source saw {:.2} ctrl frames per block",
            src.ctrl_msgs_per_block
        );
        assert!(
            snk.ctrl_msgs_per_block < 1.0,
            "sink saw {:.2} ctrl frames per block",
            snk.ctrl_msgs_per_block
        );
    }

    #[test]
    fn split_pair_short_tail_and_single_block() {
        let cfg = LiveConfig::new(64 * 1024, 1, (64 << 10) * 3 + 777);
        let (src, snk) = run_split_pair(&cfg).expect("split transfer");
        assert_eq!(src.blocks, 4);
        assert_eq!(snk.checksum_failures, 0);

        let cfg = LiveConfig::new(4096, 1, 4096);
        let (_, snk) = run_split_pair(&cfg).expect("split transfer");
        assert_eq!(snk.blocks, 1);
        assert_eq!(snk.checksum_failures, 0);
    }

    #[test]
    fn split_pair_recovers_dropped_payloads() {
        let mut cfg = LiveConfig::new(32 * 1024, 2, (4 << 20) / SCALE);
        cfg.pool_blocks = 8;
        cfg.fault_drop_p = 0.2;
        cfg.fault_seed = 7;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let (src, snk) = run_split_pair(&cfg).expect("split transfer");
        assert_eq!(snk.checksum_failures, 0);
        assert!(src.dropped_payloads >= 1, "fault injector never fired");
        assert!(
            src.retransmits >= src.dropped_payloads,
            "every drop needs at least one re-send: {} drops, {} retransmits",
            src.dropped_payloads,
            src.retransmits
        );
    }

    #[test]
    fn split_pair_repeated_runs_are_clean() {
        for i in 0..6 {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (4 << 20) / SCALE);
            cfg.pool_blocks = 8;
            cfg.loaders = 3;
            let (_, snk) = run_split_pair(&cfg).expect("split transfer");
            assert_eq!(snk.checksum_failures, 0, "iteration {i}");
        }
    }

    /// Both halves over the in-proc transport with a WAN shim between
    /// them — the unit-test form of the two-process `--wan` runs.
    fn run_wan_pair(
        cfg: &LiveConfig,
        wan: &rftp_faults::WanProfile,
    ) -> io::Result<(LiveReport, LiveReport)> {
        let pair = channel_transport(cfg.channels, cfg.channel_depth);
        let (st, kt) = crate::netem::wrap_pair(pair, wan);
        let mut src_cfg = cfg.clone();
        src_cfg.dst_file = None;
        let mut snk_cfg = cfg.clone();
        snk_cfg.src_file = None;
        snk_cfg.fault_drop_p = 0.0;
        std::thread::scope(|s| {
            let sink = s.spawn(|| run_split_sink(&snk_cfg, kt, None));
            let source = run_split_source(&src_cfg, st);
            let sink = sink.join().expect("sink half panicked");
            Ok((source?, sink?))
        })
    }

    /// The watchdog regression ISSUE 10 names: at 49 ms RTT a clean
    /// transfer must finish with **zero** retransmits. A fixed 100 ms
    /// deadline survives this; the adaptive deadline must too, even
    /// after `rttvar` has decayed and the RTO has tightened onto `srtt`.
    #[test]
    fn adaptive_clean_wan_run_performs_zero_retransmits() {
        let wan = rftp_faults::WanProfile::parse("rtt=49ms").unwrap();
        let mut cfg = LiveConfig::new(64 * 1024, 2, 2 << 20);
        cfg.pool_blocks = 16;
        cfg.apply_wan(&wan);
        assert!(cfg.adaptive);
        let (src, snk) = run_wan_pair(&cfg, &wan).expect("wan transfer");
        assert_eq!(snk.checksum_failures, 0);
        assert_eq!(src.retransmits, 0, "clean 49 ms path must not retransmit");
        assert_eq!(snk.duplicate_payloads, 0);
        let adapt = src.adapt.expect("adaptive source reports its estimator");
        assert!(
            adapt.srtt_us > 44_000.0,
            "ack-loop srtt must see the path RTT: {} us",
            adapt.srtt_us
        );
        assert_eq!(adapt.loss_rate, 0.0);
        let snk_adapt = snk.adapt.expect("adaptive sink reports its estimator");
        assert!(
            snk_adapt.dwell_ns > 1_000_000,
            "dwell must scale with RTT (~srtt/8), got {} ns",
            snk_adapt.dwell_ns
        );
        assert!(
            snk_adapt.first_block_us > 0.0,
            "sink must record first-block latency"
        );
    }

    /// With the path rate known, the controller bounds outstanding
    /// credits to ~2×BDP instead of flooding the whole pool — and the
    /// deferred-grant path keeps the credit loop alive under the clamp.
    #[test]
    fn adaptive_depth_clamp_tracks_bdp_and_completes() {
        let wan = rftp_faults::WanProfile::parse("rtt=10ms,rate=80M").unwrap();
        let mut cfg = LiveConfig::new(64 * 1024, 1, 1 << 20);
        cfg.pool_blocks = 16;
        cfg.apply_wan(&wan);
        let (src, snk) = run_wan_pair(&cfg, &wan).expect("wan transfer");
        assert_eq!(snk.checksum_failures, 0);
        assert_eq!(src.retransmits, 0);
        let adapt = snk.adapt.expect("adaptive sink snapshot");
        // 80 Mbps × 10 ms = 100 KB BDP; 2× over 64 KiB blocks ≈ 4.
        assert!(
            adapt.effective_depth >= 2 && adapt.effective_depth < cfg.pool_blocks,
            "depth target must clamp below the pool: {}",
            adapt.effective_depth
        );
    }

    /// Static configurations must not grow a controller: `adapt` stays
    /// `None` and the fixed knobs keep running the transfer.
    #[test]
    fn static_runs_report_no_adapt_state() {
        let cfg = LiveConfig::new(64 * 1024, 1, 512 << 10);
        let (src, snk) = run_split_pair(&cfg).expect("split transfer");
        assert!(src.adapt.is_none() && snk.adapt.is_none());
    }

    #[test]
    fn sink_errors_when_source_vanishes_mid_transfer() {
        // Source half dies (simulated by aborting its transport after
        // the session opens); the sink must surface an error, not hang.
        let mut cfg = LiveConfig::new(64 * 1024, 2, 8 << 20);
        cfg.pool_blocks = 8;
        let (st, kt) = channel_transport(cfg.channels, cfg.channel_depth);
        let cfg2 = cfg.clone();
        let sink = std::thread::spawn(move || run_split_sink(&cfg2, kt, None));
        // Open the session by hand, then cut every link.
        st.ctrl_tx
            .send(&CtrlMsg::SessionRequest {
                session: SESSION,
                block_size: cfg.block_size as u64,
                channels: cfg.channels as u16,
                total_bytes: cfg.total_bytes,
                notify_imm: true,
            })
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        (st.abort)();
        drop(st);
        let err = sink.join().unwrap().expect_err("sink must fail");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe, "{err}");
    }
}
