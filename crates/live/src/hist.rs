//! Log-bucketed nanosecond histograms for per-stage tail latency.
//!
//! The stage clocks in [`crate::pipeline::StageBreakdown`] are sums —
//! they give a mean, and a mean hides exactly the thing a completion
//! batched backend changes: the shape of the tail. Each worker records
//! its per-block stage times into a local [`NsHist`] (one increment per
//! sample, no allocation), the histograms merge at join, and the report
//! carries p50/p99 alongside the mean.
//!
//! Buckets are powers of two: sample `ns` lands in bucket
//! `64 - leading_zeros(ns)`, so bucket `b` covers `[2^(b-1), 2^b)`.
//! Quantiles interpolate linearly inside the winning bucket, which keeps
//! the error within the bucket's factor-of-two width — plenty for
//! comparing a 3 µs tail against a 30 µs one.

/// A histogram of nanosecond samples with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct NsHist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for NsHist {
    fn default() -> NsHist {
        NsHist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl NsHist {
    pub fn new() -> NsHist {
        NsHist::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        let b = 64 - (ns.leading_zeros() as usize); // 0 lands in bucket 0
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += ns;
    }

    /// Fold another worker's histogram into this one.
    pub fn merge(&mut self, other: &NsHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, ns (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q` in [0, 1], interpolated inside the winning bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= target {
                // Bucket b covers [2^(b-1), 2^b); interpolate by the
                // fraction of the target inside it.
                let lo = if b == 0 {
                    0.0
                } else {
                    (1u64 << (b - 1)) as f64
                };
                let hi = if b == 0 {
                    1.0
                } else {
                    (1u64 << b.min(63)) as f64
                };
                let frac = (target - seen as f64) / n as f64;
                return lo + (hi - lo) * frac;
            }
            seen += n;
        }
        self.sum as f64 // unreachable with count > 0
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Per-stage tail histograms of a live transfer — the split pipeline
/// fills the side it runs (load/dispatch at the source, place/verify at
/// the sink); the in-process pipeline leaves them empty.
#[derive(Debug, Clone, Default)]
pub struct StageTails {
    pub load: NsHist,
    pub dispatch: NsHist,
    pub place: NsHist,
    pub verify: NsHist,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = NsHist::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.p50();
        let p99 = h.p99();
        // Power-of-two buckets: the estimate is within its bucket.
        assert!((256.0..=1024.0).contains(&p50), "p50 {p50}");
        assert!((512.0..=1024.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = NsHist::new();
        let mut b = NsHist::new();
        for ns in [10u64, 100, 1000] {
            a.record(ns);
            b.record(ns * 7);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 6);
        assert!(m.mean() > a.mean());
        assert!(m.p99() >= a.p99());
    }

    #[test]
    fn empty_hist_is_zero() {
        let h = NsHist::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }
}
