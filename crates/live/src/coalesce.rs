//! The control-plane coalescing loop, extracted once.
//!
//! Every control handler in the suite — the main pipeline's completion
//! handler and sink-control thread, the split sink's protocol brain, and
//! the io_uring sink driver — runs the same drain shape: block for a
//! batch of events, process it, then *dwell* up to the flush window for
//! more events while a partial ack/credit batch is pending, and flush
//! before the next unbounded wait so coalescing never costs latency.
//! This module is that shape, written once; the handlers implement
//! [`CoalescedSink`] and differ only in what an event is and what a
//! flush sends.

use std::time::Duration;

/// Why [`drain_coalesced`] returned.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum DrainEnd {
    /// The sink reported itself done after processing an event.
    Done,
    /// The event source closed (the recv callback returned `false` on an
    /// unbounded wait). Pending output was flushed first.
    Closed,
}

/// A control handler driven by [`drain_coalesced`]: processes events,
/// accumulates coalesced output (acks, credit grants), and flushes it at
/// drain boundaries.
pub(crate) trait CoalescedSink<T> {
    type Err;
    /// Process one event (may flush internally when a batch fills).
    fn handle(&mut self, ev: T) -> Result<(), Self::Err>;
    /// Whether a partial output batch is pending *and* the handler wants
    /// to dwell for more events before flushing it. Returning `false`
    /// flushes immediately (unbatched wire modes do exactly that).
    fn dwell(&self) -> bool;
    /// The dwell window: how long each bounded wait may linger for more
    /// events while a partial batch is pending. Re-read before every
    /// wait, so an adaptive handler can rescale it mid-run as its RTT
    /// estimate converges (~srtt/8 instead of the loopback-tuned floor).
    fn window(&self) -> Duration;
    /// Whether the handler has seen the end of its work. Checked before
    /// every unbounded wait and after every event.
    fn done(&self) -> bool;
    /// Send the pending output batch (no-op when empty).
    fn flush(&mut self) -> Result<(), Self::Err>;
}

/// Drive `sink` from an event source until it is [`CoalescedSink::done`]
/// or the source closes.
///
/// `recv(None, buf)` must block for at least one event; `recv(Some(w),
/// buf)` waits at most `w`. Both return `false` when the source is
/// closed (unbounded) or the wait timed out / closed (bounded) — a
/// bounded `false` just ends the dwell and flushes. The channel backends
/// adapt `recv_batch`/`recv_batch_timeout`; the io_uring sink adapts a
/// CQE drain with a timeout SQE.
pub(crate) fn drain_coalesced<T, S: CoalescedSink<T>>(
    sink: &mut S,
    recv: &mut dyn FnMut(Option<Duration>, &mut Vec<T>) -> bool,
) -> Result<DrainEnd, S::Err> {
    let mut events: Vec<T> = Vec::with_capacity(64);
    loop {
        if sink.done() {
            return Ok(DrainEnd::Done);
        }
        if !recv(None, &mut events) {
            sink.flush()?;
            return Ok(DrainEnd::Closed);
        }
        // Dwell for the flush window on a partial batch — the output
        // leaves before the next unbounded wait, so coalescing costs no
        // latency. Each wait gets the full window, so the dwell extends
        // while events keep arriving (adaptive batching under load) and
        // ends after one quiet window. The dwell-floor contract is on
        // `recv`: a bounded call returns `false` only once its window
        // has genuinely elapsed — a ring completion that yields no
        // handler event must keep waiting out the remainder, not cut
        // the dwell short (see the spurious-wakeup test). `true` with
        // no events re-enters the dwell without flushing.
        loop {
            for ev in events.drain(..) {
                sink.handle(ev)?;
            }
            if sink.done() || !sink.dwell() {
                break;
            }
            if !recv(Some(sink.window()), &mut events) {
                break;
            }
        }
        sink.flush()?;
    }
}

/// Adapt a crossbeam receiver to [`drain_coalesced`]'s recv callback:
/// unbounded waits are `recv_batch`, dwell waits are
/// `recv_batch_timeout`, and `cap` bounds each drain.
pub(crate) fn channel_events<'a, T>(
    rx: &'a crossbeam::channel::Receiver<T>,
    cap: usize,
) -> impl FnMut(Option<Duration>, &mut Vec<T>) -> bool + 'a {
    move |window, buf| match window {
        None => rx.recv_batch(buf, cap).is_ok(),
        Some(w) => rx.recv_batch_timeout(buf, cap, w).is_ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    /// A toy sink that batches integers and "flushes" them into sums.
    struct Summer {
        pending: Vec<u64>,
        flushed: Vec<u64>,
        seen: u64,
        target: u64,
        batch: usize,
        window: Duration,
    }

    impl CoalescedSink<u64> for Summer {
        type Err = std::convert::Infallible;
        fn handle(&mut self, ev: u64) -> Result<(), Self::Err> {
            self.seen += 1;
            self.pending.push(ev);
            if self.pending.len() >= self.batch {
                self.flush()?;
            }
            Ok(())
        }
        fn dwell(&self) -> bool {
            !self.pending.is_empty()
        }
        fn window(&self) -> Duration {
            self.window
        }
        fn done(&self) -> bool {
            self.seen >= self.target
        }
        fn flush(&mut self) -> Result<(), Self::Err> {
            if !self.pending.is_empty() {
                self.flushed.push(self.pending.drain(..).sum());
            }
            Ok(())
        }
    }

    #[test]
    fn drains_to_done_and_flushes_partials() {
        let (tx, rx) = bounded::<u64>(64);
        for v in 0..10u64 {
            tx.send(v).unwrap();
        }
        let mut s = Summer {
            pending: Vec::new(),
            flushed: Vec::new(),
            seen: 0,
            target: 10,
            batch: 4,
            window: Duration::from_micros(100),
        };
        let end = drain_coalesced(&mut s, &mut channel_events(&rx, 64)).unwrap();
        assert_eq!(end, DrainEnd::Done);
        assert_eq!(s.flushed.iter().sum::<u64>(), 45);
        assert!(s.pending.is_empty(), "partial batch must flush");
    }

    /// The dwell floor: a ring-style event source can wake with
    /// completions that yield no handler events (partial reads, control
    /// re-arms). Such spurious wakeups — `recv` returning `true` with
    /// an empty batch — must re-enter the dwell, not end it and flush a
    /// partial ack batch before the window has elapsed.
    #[test]
    fn spurious_wakeups_do_not_cut_the_dwell_short() {
        let mut calls = 0;
        let mut recv = |_w: Option<Duration>, buf: &mut Vec<u64>| -> bool {
            let n = calls;
            calls += 1;
            match n {
                0 => {
                    buf.push(1); // unbounded wait: first event
                    true
                }
                1..=3 => true, // dwell: spurious wakes, no events
                4 => {
                    buf.push(2); // dwell: second event joins the batch
                    true
                }
                _ => false, // source closes
            }
        };
        let mut s = Summer {
            pending: Vec::new(),
            flushed: Vec::new(),
            seen: 0,
            target: 100,
            batch: 64,
            window: Duration::from_millis(5),
        };
        let end = drain_coalesced(&mut s, &mut recv).unwrap();
        assert_eq!(end, DrainEnd::Closed);
        assert_eq!(s.flushed, vec![3], "both events coalesce into one flush");
    }

    #[test]
    fn close_flushes_and_reports_closed() {
        let (tx, rx) = bounded::<u64>(8);
        tx.send(7).unwrap();
        drop(tx);
        let mut s = Summer {
            pending: Vec::new(),
            flushed: Vec::new(),
            seen: 0,
            target: 100,
            batch: 4,
            window: Duration::from_micros(100),
        };
        let end = drain_coalesced(&mut s, &mut channel_events(&rx, 8)).unwrap();
        assert_eq!(end, DrainEnd::Closed);
        assert_eq!(s.flushed, vec![7]);
    }
}
