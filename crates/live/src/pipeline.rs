//! The native-thread transfer pipeline.
//!
//! Thread topology (arrows are bounded crossbeam channels):
//!
//! ```text
//!  SOURCE                                      SINK
//!  loaders ──▶ dispatcher ══ data[ch] ══▶ receivers ─┐ (placement memcpy)
//!     ▲            │                                 │ ack batches
//!     └── completion ◀────────────────────────────────┘
//!            │ AckBatch (coalesced ctrl)
//!            ▼
//!        sink events ───────────▶ sink-ctrl ──▶ consumer (verify, free)
//!        ctrl k→s  ◀─ CreditBatch ──┴──────────────┘
//! ```
//!
//! The control channels carry the *real* Fig. 7(a) encodings; payload
//! buffers carry the *real* Fig. 7(b) header plus pattern data, verified
//! at the sink. Pools, credit policy, and the reorder buffer are the
//! exact `rftp-core` types.
//!
//! The hot path is contention-free and batched, end to end:
//!
//! * **No shared locks per block.** Block handout and return go through
//!   the lock-free [`AtomicSourcePool`]/[`AtomicSinkPool`] (a Vyukov
//!   index ring plus per-block CAS state bytes); the source's credit
//!   stock is an [`IndexQueue`] of granted slots; the per-transfer
//!   duplicate-placement ledger is an atomic bitmap. The only mutexes
//!   left on the data path guard single-owner block buffers and are
//!   never contended.
//! * **One copy per block.** The receiver places payload straight from
//!   the source's registered block into the slot the credit named — the
//!   analogue of RDMA WRITE's single DMA from source MR to sink MR.
//!   (The block stays pinned, `Waiting`, until its ack retires it, so
//!   the buffer is stable for the whole flight, retransmits included.)
//! * **Batched crossings.** Every stage drains its input channel in
//!   batches (`recv_batch`: one wakeup, one lock round-trip per drain,
//!   not per block), and control traffic is coalesced: completions ride
//!   [`CtrlMsg::AckBatch`] and grants ride [`CtrlMsg::CreditBatch`], up
//!   to `ctrl_batch` entries per frame, flushed before every blocking
//!   wait so coalescing adds no latency. Each batched entry is processed
//!   exactly as its standalone message would be — the sink still grants
//!   per completion, so the proactive-credit exponential ramp-up is
//!   unchanged. `ctrl_batch = 1` reproduces the one-message-per-block
//!   wire behaviour for comparison.
//! * **No shared stats on the data path.** Worker threads count into
//!   locals (including per-stage nanosecond clocks) and the report
//!   merges them at join.

use crate::coalesce::{channel_events, drain_coalesced, CoalescedSink, DrainEnd};
use crate::store::{FileSink, FileSource, RatePacer, SlotBuf};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rftp_core::engine::{expected_checksum, pattern_seed as engine_pattern_seed};
use rftp_core::pattern::{checksum, fill_pattern};
use rftp_core::wire::{
    BlockAck, Credit, CtrlMsg, PayloadHeader, CTRL_SLOT_LEN, MAX_ACKS_PER_BATCH,
    MAX_CREDITS_PER_MSG, MAX_SLOTS_PER_CREDIT_BATCH, PAYLOAD_HEADER_LEN,
};
use rftp_core::{AtomicSinkPool, AtomicSourcePool, IndexQueue, PoolGeometry, ReorderBuffer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

pub(crate) const SESSION: u32 = 1;

/// The symbolic rkey of the sink pool's region (channels address slots
/// directly in this model).
pub(crate) const SINK_RKEY: u64 = 0x11FE;

/// Configuration of one live transfer.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Payload bytes per block.
    pub block_size: usize,
    /// Blocks in each endpoint's pool.
    pub pool_blocks: u32,
    /// Parallel data channels.
    pub channels: usize,
    /// Loader threads at the source.
    pub loaders: usize,
    /// Total payload bytes to move.
    pub total_bytes: u64,
    /// Per-channel queue depth (the "send queue"); also the receivers'
    /// batch-drain limit.
    pub channel_depth: usize,
    /// Credits granted per completion notification (paper: 2).
    pub grant_per_completion: u32,
    pub initial_credits: u32,
    /// Max control entries coalesced per frame: completions per
    /// `AckBatch`, grants per `CreditBatch`. 1 = the unbatched wire
    /// (one `BlockComplete`/`Credits` per event), for comparison runs.
    /// Clamped to the wire maxima.
    pub ctrl_batch: usize,
    /// Max-latency bound on coalescing: a partial control batch waits at
    /// most this long for more entries before it is flushed. Irrelevant
    /// at full throughput (batches fill first); bounds added latency
    /// when the pipeline trickles.
    pub flush_window: std::time::Duration,
    /// Notify the sink in the data path (the WRITE_WITH_IMM analogue):
    /// the receiving channel reports the arrival directly instead of the
    /// source sending a completion control message after its own
    /// completion — one less hop in the credit loop.
    pub notify_imm: bool,
    /// Fault injection: probability that a dispatched payload is dropped
    /// on the wire instead of reaching a receiver (0.0 = perfect
    /// fabric). Dropped blocks are recovered by the retransmit watchdog.
    pub fault_drop_p: f64,
    /// Seed for the drop RNG — same seed, same drop pattern.
    pub fault_seed: u64,
    /// A dispatched block still unacked after this long is retransmitted
    /// (the watchdog only runs when `fault_drop_p > 0`). Must comfortably
    /// exceed the pipeline's ack latency or healthy blocks are re-sent.
    pub retx_timeout: std::time::Duration,
    /// Source backend: read blocks from this file instead of filling
    /// pattern data. The file must hold at least `total_bytes`.
    pub src_file: Option<PathBuf>,
    /// Sink backend: `pwrite` placed blocks into this file (created and
    /// pre-sized) instead of checksum-verifying pattern data.
    pub dst_file: Option<PathBuf>,
    /// Open storage with `O_DIRECT` where the filesystem allows it
    /// (silently degrades to buffered I/O + `posix_fadvise` elsewhere).
    pub direct_io: bool,
    /// Model the source device's service rate, bytes/second: block reads
    /// are paced on a shared device timeline so a tmpfs- or page-cache-
    /// backed file behaves like the device a [`rftp_core::StoreConfig`]
    /// profile describes. `None` (default) reads at backing-store speed.
    pub src_rate: Option<f64>,
    /// Read-ahead depth: maximum source blocks in flight (loading →
    /// unacked) at once, i.e. how far the loaders may run ahead of the
    /// network. `0` serializes one block at a time (no disk/network
    /// overlap); `u32::MAX` (the default) lets the loaders fill the
    /// whole pool. Pacing keys off the source pool's free-depth
    /// watermark, so it costs nothing when the pool itself is the bound.
    pub readahead: u32,
    /// io_uring sink only: provided-buffer-ring depth for multishot
    /// receive. `0` (default) sizes it automatically (or from
    /// `RFTP_URING_PBUF_COUNT`); tests pin it low to force buffer
    /// exhaustion. Ignored by stream backends.
    pub uring_pbuf: u32,
    /// Run the adaptive controller: estimate RTT/loss from the live ack
    /// stream (RFC 6298) and derive the coalescing dwell window, the
    /// retransmit deadline, and — with [`LiveConfig::wan_rate_bps`] — a
    /// BDP-based in-flight depth target, instead of trusting the static
    /// `flush_window` / `retx_timeout` / pool-depth defaults that were
    /// tuned for loopback.
    pub adaptive: bool,
    /// Offered path rate in bits/s for the adaptive controller's BDP
    /// math (typically the `--wan` profile's rate cap). `None` disables
    /// the depth target; dwell and RTO still adapt.
    pub wan_rate_bps: Option<f64>,
}

impl LiveConfig {
    pub fn new(block_size: usize, channels: usize, total_bytes: u64) -> LiveConfig {
        LiveConfig {
            block_size,
            pool_blocks: 16,
            channels,
            loaders: 2,
            total_bytes,
            channel_depth: 8,
            grant_per_completion: 2,
            initial_credits: 2,
            ctrl_batch: MAX_ACKS_PER_BATCH,
            // Scale the dwell to the block service time (~block_size at
            // 2 GB/s): small blocks arrive microseconds apart and want a
            // short window; megabyte blocks are hundreds of microseconds
            // apart, and a window shorter than the gap never coalesces.
            // Capped at 1 ms — past that the dwell stops buying frames
            // and starts starving the credit loop (multi-MB blocks).
            flush_window: std::time::Duration::from_nanos(
                (block_size as u64 / 2).clamp(50_000, 1_000_000),
            ),
            notify_imm: false,
            fault_drop_p: 0.0,
            fault_seed: 0xFA_017,
            retx_timeout: std::time::Duration::from_millis(100),
            src_file: None,
            dst_file: None,
            direct_io: false,
            src_rate: None,
            readahead: u32::MAX,
            uring_pbuf: 0,
            adaptive: false,
            wan_rate_bps: None,
        }
    }

    /// Adopt a storage profile (the same [`rftp_core::StoreConfig`]s the
    /// simulated disk harness consumes): I/O mode, modeled device rate,
    /// and read-ahead depth.
    pub fn apply_store(&mut self, store: &rftp_core::StoreConfig) {
        self.direct_io = store.direct_io;
        self.src_rate = Some(store.rate.bits_per_sec() as f64 / 8.0);
        self.readahead = store.readahead;
    }

    /// Adopt a WAN profile: turn the adaptive controller on, feed it the
    /// path's rate cap, and widen the pool / queues / retransmit deadline
    /// so the BDP target has headroom to converge upward. Static knobs
    /// the caller pinned tighter are only ever widened, never shrunk.
    pub fn apply_wan(&mut self, wan: &rftp_faults::WanProfile) {
        self.adaptive = true;
        self.wan_rate_bps = wan.rate_bps;
        let bdp = wan.bdp_bytes();
        if bdp > 0 {
            // 2× BDP in blocks, so a full window can be in flight while
            // the previous window's acks are still returning.
            let want = ((2 * bdp).div_ceil(self.block_size as u64))
                .clamp(self.pool_blocks as u64, 4096) as u32;
            self.pool_blocks = want;
            self.initial_credits = self.initial_credits.max(want / 2);
            self.channel_depth = self
                .channel_depth
                .max((want as usize).div_ceil(self.channels.max(1)));
        }
        // A fixed 100 ms deadline fires spuriously past ~25 ms RTT; hold
        // a conservative floor until the estimator takes over.
        self.retx_timeout = self.retx_timeout.max(4 * wan.rtt());
    }

    pub(crate) fn total_blocks(&self) -> u64 {
        self.total_bytes.div_ceil(self.block_size as u64)
    }

    pub(crate) fn slot_bytes(&self) -> usize {
        self.block_size + PAYLOAD_HEADER_LEN
    }

    /// Completion entries per `AckBatch` frame.
    pub(crate) fn ack_batch(&self) -> usize {
        self.ctrl_batch.clamp(1, MAX_ACKS_PER_BATCH)
    }

    /// Slots per `CreditBatch` frame.
    pub(crate) fn credit_batch(&self) -> usize {
        self.ctrl_batch.clamp(1, MAX_SLOTS_PER_CREDIT_BATCH)
    }
}

/// Wall-clock nanoseconds per block spent in each pipeline stage, summed
/// across the threads that run the stage (loaders and receivers are
/// pools, so their clocks add).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageBreakdown {
    /// Header encode + pattern fill (or source-file read) at the loaders.
    pub load_ns: f64,
    /// Credit pairing, FSM transitions, and channel send at the dispatcher.
    pub dispatch_ns: f64,
    /// Placement memcpy at the receivers.
    pub place_ns: f64,
    /// Header + checksum verification at the consumer.
    pub verify_ns: f64,
    /// Write-behind `pwrite` to the sink file at the receivers (zero in
    /// pattern mode).
    pub flush_ns: f64,
    /// The dataset-completion `fdatasync`, amortized per block (zero in
    /// pattern mode).
    pub sync_ns: f64,
}

/// Results of a live transfer.
#[derive(Debug, Clone)]
pub struct LiveReport {
    pub bytes: u64,
    pub blocks: u64,
    pub elapsed: std::time::Duration,
    /// Real wall-clock payload throughput, GB/s.
    pub gbytes_per_sec: f64,
    pub checksum_failures: u64,
    /// Blocks that reached the sink ahead of sequence.
    pub ooo_blocks: u64,
    /// Control messages sent (both directions, counted once at the
    /// sender). Coalesced batches count as one message — that is the
    /// point of coalescing.
    pub ctrl_msgs: u64,
    /// Control messages per payload block — the coalescing figure of
    /// merit (< 1 means the control plane is off the per-block path).
    pub ctrl_msgs_per_block: f64,
    pub credit_requests: u64,
    /// Payloads the fault injector dropped on the wire.
    pub dropped_payloads: u64,
    /// Blocks the watchdog re-sent after an ack timeout.
    pub retransmits: u64,
    /// Arrivals the sink discarded as already-placed duplicates (a
    /// retransmit raced a slow ack).
    pub duplicate_payloads: u64,
    /// Per-stage cost of a block, merged from per-thread clocks at join.
    pub stages: StageBreakdown,
    /// Per-stage tail histograms (p50/p99), merged from per-thread
    /// histograms at join. Only the split pipeline fills these.
    pub tails: crate::hist::StageTails,
    /// Threads this side ran for the data path itself — per-channel
    /// senders/receivers on stream backends, ring driver(s) on io_uring.
    /// The O(channels) → O(1) collapse is this number.
    pub transport_threads: usize,
    /// Whether storage I/O actually went through `O_DIRECT` (false in
    /// pattern mode, or when the filesystem rejected the flag and the
    /// buffered fallback served the transfer).
    pub direct_io_active: bool,
    /// Ring counters when this side ran on the io_uring backend
    /// (`None` on stream backends).
    pub uring: Option<crate::transport::UringStats>,
    /// Adaptive-controller state at end of run (`None` when the static
    /// configuration ran). The source half reports the ack-loop
    /// estimator; the sink half reports the grant-loop estimator plus
    /// first-block latency.
    pub adapt: Option<rftp_core::AdaptSnapshot>,
}

/// Where the loaders get payload bytes.
pub(crate) enum SrcBackend {
    /// Synthetic seeded pattern (the memory-to-memory experiments).
    Pattern,
    /// Aligned block reads from a real file.
    File(FileSource),
}

impl SrcBackend {
    /// Open the backend `cfg` names, validating the source covers the
    /// transfer.
    pub(crate) fn open(cfg: &LiveConfig) -> std::io::Result<SrcBackend> {
        match &cfg.src_file {
            Some(path) => {
                let f = FileSource::open(path, cfg.direct_io)?;
                if f.len() < cfg.total_bytes {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!(
                            "source file {} holds {} bytes, transfer wants {}",
                            path.display(),
                            f.len(),
                            cfg.total_bytes
                        ),
                    ));
                }
                Ok(SrcBackend::File(f))
            }
            None => Ok(SrcBackend::Pattern),
        }
    }

    pub(crate) fn direct_active(&self) -> bool {
        matches!(self, SrcBackend::File(f) if f.direct_active())
    }
}

/// Where placed payload goes.
pub(crate) enum SnkBackend {
    /// Checksum-verify the pattern and discard.
    Verify,
    /// Write-behind `pwrite` into a real file at `seq * block_size`.
    File(FileSink),
}

impl SnkBackend {
    pub(crate) fn open(cfg: &LiveConfig) -> std::io::Result<SnkBackend> {
        match &cfg.dst_file {
            Some(path) => Ok(SnkBackend::File(FileSink::create(
                path,
                cfg.total_bytes,
                cfg.direct_io,
            )?)),
            None => Ok(SnkBackend::Verify),
        }
    }

    pub(crate) fn direct_active(&self) -> bool {
        matches!(self, SnkBackend::File(f) if f.direct_active())
    }
}

/// One in-flight data block on a channel. Carries the source block
/// index, not bytes: the receiver places directly from the source's
/// registered block into the credited sink slot — one copy per block,
/// the RDMA WRITE analogue (the block is pinned until its ack).
#[derive(Debug)]
struct DataMsg {
    src_block: u32,
    seq: u32,
    slot: u32,
    len: u32,
}

#[derive(Clone, Copy)]
pub(crate) struct InFlightInfo {
    pub(crate) seq: u32,
    pub(crate) slot: u32,
    pub(crate) len: u32,
    /// When the block last went onto the wire (dispatch or retransmit);
    /// the watchdog re-sends once `retx_timeout` passes without an ack.
    pub(crate) sent_at: Instant,
    /// Wire attempts so far — a runaway count means the recovery loop is
    /// broken, not that the fabric is unlucky.
    pub(crate) attempts: u32,
}

pub(crate) fn pattern_seed(seq: u32) -> u64 {
    engine_pattern_seed(SESSION, seq)
}

/// splitmix64 — the drop RNG. Self-contained so the fault injector adds
/// no dependency to the crate; determinism per seed is all it needs.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One uniform draw in [0, 1); drops fire when it lands below `p`.
pub(crate) fn drop_roll(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Backoff for lock-free waits. Escalates fast to `yield_now`: on a
/// saturated (or single-core) machine the event being waited on is
/// produced by another thread that needs this core, so burning cycles in
/// a spin loop delays the very thing being awaited. A short sleep caps
/// the cost of long waits without adding meaningful wakeup latency.
pub(crate) fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 4 {
        std::hint::spin_loop();
    } else if *spins < 64 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Lock-free source-side credit inventory: granted sink slots in a
/// Vyukov ring (every credit of a pool transfer shares rkey and length,
/// so the slot index is the whole credit), plus the MrRequest debounce
/// flag. The threaded replacement for `Mutex<CreditStock>` + condvar.
pub(crate) struct CreditSlots {
    pub(crate) slots: IndexQueue,
    /// True while an MrRequest is outstanding (at most one at a time).
    pub(crate) request_outstanding: AtomicBool,
}

impl CreditSlots {
    pub(crate) fn new(capacity: u32) -> CreditSlots {
        CreditSlots {
            slots: IndexQueue::new(capacity as usize),
            request_outstanding: AtomicBool::new(false),
        }
    }

    pub(crate) fn deposit(&self, slot: u32) {
        // The protocol bounds outstanding credits to the sink pool size,
        // so the ring can never actually overflow — but a dispatcher
        // preempted mid-pop can make it look transiently full to a
        // lapping deposit. push_must rides that window out.
        self.slots.push_must(slot);
        self.request_outstanding.store(false, Ordering::Release);
    }
}

/// First-placement ledger, one bit per sequence: receivers claim a
/// sequence before placing, so a retransmit that raced a slow ack is
/// discarded instead of overwriting a slot the sink has since freed and
/// re-granted. One bit per block of the whole transfer (the table this
/// replaced spent a mutex per block — 1 byte + state and a pointer-chase
/// per check).
pub(crate) struct AtomicBitmap {
    words: Vec<AtomicU64>,
}

impl AtomicBitmap {
    pub(crate) fn new(bits: u64) -> AtomicBitmap {
        AtomicBitmap {
            words: (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Atomically claim bit `i`; true if this caller newly set it.
    pub(crate) fn claim(&self, i: u64) -> bool {
        let mask = 1u64 << (i % 64);
        self.words[(i / 64) as usize].fetch_or(mask, Ordering::AcqRel) & mask == 0
    }
}

/// A control message in its on-wire form: one fixed slot passed by
/// value, no heap round trip per message.
#[derive(Debug, Clone, Copy)]
struct CtrlFrame {
    len: u16,
    buf: [u8; CTRL_SLOT_LEN],
}

impl CtrlFrame {
    fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

fn encode(msg: &CtrlMsg) -> Box<CtrlFrame> {
    let mut buf = [0u8; CTRL_SLOT_LEN];
    let n = msg.encode(&mut buf);
    Box::new(CtrlFrame { len: n as u16, buf })
}

/// Everything the sink's control handler reacts to, on one channel: the
/// control QP's frames and (in `notify_imm` mode) the receivers' in-band
/// arrival notifications. One blocking `recv` replaces a polling select.
#[derive(Debug)]
enum SinkEvent {
    // Boxed: control frames are rare (sub-one per block when batched)
    // while `Imm` is the hot variant in `notify_imm` mode, and an
    // unboxed 258-byte frame would inflate every queued event to match.
    Ctrl(Box<CtrlFrame>),
    Imm { seq: u32, slot: u32, len: u32 },
}

/// The source completion handler's state, as a [`CoalescedSink`]: ack
/// batches retire blocks immediately; the sink-bound completion
/// notifications coalesce into `AckBatch` frames (up to `ctrl_batch` per
/// frame), flushed at every drain boundary.
struct AckCoalescer<'a> {
    cfg: &'a LiveConfig,
    src_pool: &'a AtomicSourcePool,
    inflight: &'a [Mutex<Option<InFlightInfo>>],
    evt_tx: &'a Sender<SinkEvent>,
    total_blocks: u64,
    completed: u64,
    ctrl_sent: u64,
    pending: Vec<BlockAck>,
}

impl CoalescedSink<Vec<u32>> for AckCoalescer<'_> {
    type Err = std::convert::Infallible;

    fn handle(&mut self, batch: Vec<u32>) -> Result<(), Self::Err> {
        for block in batch {
            let info = self.inflight[block as usize]
                .lock()
                .take()
                .expect("ack for idle block");
            self.src_pool.complete(block).expect("FSM: complete");
            self.completed += 1;
            if !self.cfg.notify_imm {
                self.pending.push(BlockAck {
                    seq: info.seq,
                    slot: info.slot,
                    len: info.len,
                });
                if self.pending.len() >= self.cfg.ack_batch() {
                    self.flush()?;
                }
            }
        }
        Ok(())
    }

    // Max-latency dwell: a partial batch waits at most the flush window
    // for more acks (the blocks themselves were already retired — only
    // the sink-bound notification waits).
    fn dwell(&self) -> bool {
        !self.pending.is_empty()
    }

    fn window(&self) -> std::time::Duration {
        self.cfg.flush_window
    }

    fn done(&self) -> bool {
        self.completed >= self.total_blocks
    }

    fn flush(&mut self) -> Result<(), Self::Err> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let msg = if self.pending.len() == 1 && self.cfg.ctrl_batch <= 1 {
            let a = self.pending[0];
            CtrlMsg::BlockComplete {
                session: SESSION,
                seq: a.seq,
                slot: a.slot,
                len: a.len,
            }
        } else {
            CtrlMsg::AckBatch {
                session: SESSION,
                acks: std::mem::take(&mut self.pending),
            }
        };
        self.pending.clear();
        self.ctrl_sent += 1;
        self.evt_tx
            .send(SinkEvent::Ctrl(encode(&msg)))
            .expect("sink ctrl gone");
        Ok(())
    }
}

/// The sink control handler's state, as a [`CoalescedSink`]: arrivals in
/// one drain grant per completion (preserving the proactive ramp) but
/// the grants leave as coalesced `CreditBatch` frames — the credit
/// loop's message count scales with drains, not blocks. The *policy* is
/// untouched: every completion still earns its `grant_per_completion`
/// slots the moment it is processed, so the exponential ramp is the same
/// credits-per-arrival curve, just carried in fewer frames.
struct GrantCoalescer<'a> {
    cfg: &'a LiveConfig,
    snk_pool: &'a AtomicSinkPool,
    granter: &'a Mutex<rftp_core::Granter>,
    ctrl_tx: &'a Sender<Box<CtrlFrame>>,
    deliver_tx: &'a Sender<(u32, u32, u32)>,
    total_blocks: u64,
    reorder: ReorderBuffer<(u32, u32)>,
    // Slots granted (popped from the pool, counted by the granter) but
    // not yet on the wire. Grants accumulate across the events of a
    // drain — and across the flush window — so the credit loop pays one
    // message per batch, not per completion.
    pending: Vec<u32>,
    ctrl_sent: u64,
}

impl GrantCoalescer<'_> {
    /// Pop up to `want` free slots into the pending grant batch.
    fn accumulate(&mut self, want: u32) {
        let before = self.pending.len();
        self.pending
            .extend((0..want).map_while(|_| self.snk_pool.grant()));
        let got = (self.pending.len() - before) as u32;
        if got > 0 {
            self.granter.lock().note_granted(got);
        }
    }

    fn on_arrival(&mut self, seq: u32, slot: u32, len: u32) {
        self.snk_pool.ready(slot).expect("FSM: ready");
        for (s2, (slot2, len2)) in self.reorder.push(seq, (slot, len)) {
            self.deliver_tx
                .send((s2, slot2, len2))
                .expect("consumer gone");
        }
        let want = self.granter.lock().on_completion();
        self.accumulate(want);
    }
}

impl CoalescedSink<SinkEvent> for GrantCoalescer<'_> {
    type Err = std::convert::Infallible;

    fn handle(&mut self, ev: SinkEvent) -> Result<(), Self::Err> {
        match ev {
            SinkEvent::Ctrl(raw) => {
                match CtrlMsg::decode(raw.as_bytes()).expect("bad ctrl message") {
                    CtrlMsg::SessionRequest { session, .. } => {
                        assert_eq!(session, SESSION);
                        self.ctrl_sent += 1;
                        self.ctrl_tx
                            .send(encode(&CtrlMsg::SessionAccept {
                                session: SESSION,
                                block_size: self.cfg.block_size as u64,
                                data_qpns: (0..self.cfg.channels as u32).collect(),
                            }))
                            .expect("source ctrl gone");
                        let want = self.granter.lock().on_accept();
                        self.accumulate(want);
                    }
                    CtrlMsg::BlockComplete {
                        session,
                        seq,
                        slot,
                        len,
                    } => {
                        assert_eq!(session, SESSION);
                        self.on_arrival(seq, slot, len);
                    }
                    CtrlMsg::AckBatch { session, acks } => {
                        assert_eq!(session, SESSION);
                        for a in acks {
                            self.on_arrival(a.seq, a.slot, a.len);
                        }
                    }
                    CtrlMsg::MrRequest { session } => {
                        assert_eq!(session, SESSION);
                        let free = self.snk_pool.free_count();
                        let want = self.granter.lock().on_request(free);
                        self.accumulate(want);
                    }
                    CtrlMsg::DatasetComplete {
                        total_blocks: t, ..
                    } => {
                        assert_eq!(t as u64, self.total_blocks);
                    }
                    other => panic!("unexpected ctrl at sink: {other:?}"),
                }
            }
            SinkEvent::Imm { seq, slot, len } => self.on_arrival(seq, slot, len),
        }
        if self.pending.len() >= self.cfg.credit_batch() {
            self.flush()?;
        }
        Ok(())
    }

    // Dwell for the flush window on a partial grant batch (unbatched
    // mode flushes immediately — per-event grants ARE its wire
    // behaviour).
    fn dwell(&self) -> bool {
        !self.pending.is_empty() && self.cfg.ctrl_batch > 1
    }

    fn window(&self) -> std::time::Duration {
        self.cfg.flush_window
    }

    // Runs until the event channel closes at teardown.
    fn done(&self) -> bool {
        false
    }

    fn flush(&mut self) -> Result<(), Self::Err> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if self.cfg.ctrl_batch <= 1 {
            for chunk in self.pending.chunks(MAX_CREDITS_PER_MSG) {
                self.ctrl_sent += 1;
                self.ctrl_tx
                    .send(encode(&CtrlMsg::Credits {
                        session: SESSION,
                        credits: chunk
                            .iter()
                            .map(|&s2| Credit {
                                slot: s2,
                                rkey: SINK_RKEY,
                                offset: s2 as u64 * self.cfg.slot_bytes() as u64,
                                len: self.cfg.slot_bytes() as u32,
                            })
                            .collect(),
                    }))
                    .expect("source ctrl gone");
            }
        } else {
            for chunk in self.pending.chunks(self.cfg.credit_batch()) {
                self.ctrl_sent += 1;
                self.ctrl_tx
                    .send(encode(&CtrlMsg::CreditBatch {
                        session: SESSION,
                        rkey: SINK_RKEY,
                        slot_len: self.cfg.slot_bytes() as u32,
                        slots: chunk.to_vec(),
                    }))
                    .expect("source ctrl gone");
            }
        }
        self.pending.clear();
        Ok(())
    }
}

/// Run one transfer; blocks until completion and returns the report.
/// Panics on protocol violations (they are bugs, not runtime conditions)
/// *and* on storage errors — use [`try_run_live`] to surface the latter.
pub fn run_live(cfg: &LiveConfig) -> LiveReport {
    try_run_live(cfg).expect("storage backend failed")
}

/// [`run_live`], but storage errors (missing source file, unwritable
/// destination, short source) come back as `Err` instead of a panic.
pub fn try_run_live(cfg: &LiveConfig) -> std::io::Result<LiveReport> {
    assert!(cfg.channels >= 1 && cfg.loaders >= 1 && cfg.total_bytes > 0);
    let total_blocks = cfg.total_blocks();
    let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);

    // ---- storage backends ----
    let src_backend = SrcBackend::open(cfg)?;
    let snk_backend = SnkBackend::open(cfg)?;
    let direct_io_active = src_backend.direct_active() || snk_backend.direct_active();
    // Read-ahead limit: how many blocks the source side may hold
    // concurrently. +1 because "no read-ahead" still needs the block in
    // service; capped at the pool, where the existing free-list wait
    // already throttles.
    let ra_limit = (cfg.readahead.saturating_add(1)).min(cfg.pool_blocks) as usize;
    // Modeled-device pacing only applies where there is a device to
    // model: a pattern source has no read stage.
    let pacer = match &src_backend {
        SrcBackend::File(_) => cfg.src_rate.map(RatePacer::new),
        SrcBackend::Pattern => None,
    };

    // ---- shared source state ----
    let src_pool = AtomicSourcePool::new(geo);
    let src_bufs: Vec<Mutex<SlotBuf>> = (0..cfg.pool_blocks)
        .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
        .collect();
    let stock = CreditSlots::new(cfg.pool_blocks);
    let inflight: Vec<Mutex<Option<InFlightInfo>>> =
        (0..cfg.pool_blocks).map(|_| Mutex::new(None)).collect();

    // ---- shared sink state ----
    let snk_pool = AtomicSinkPool::new(geo);
    let granter = Mutex::new(rftp_core::Granter::new(
        rftp_core::CreditMode::Proactive,
        cfg.initial_credits,
        cfg.grant_per_completion,
        4,
    ));
    let snk_bufs: Vec<Mutex<SlotBuf>> = (0..cfg.pool_blocks)
        .map(|_| Mutex::new(SlotBuf::new(cfg.block_size)))
        .collect();
    let placed = AtomicBitmap::new(total_blocks);

    let next_seq = AtomicU64::new(0);
    let done_flag = AtomicBool::new(false);

    // ---- channels ----
    let (sink_evt_tx, sink_evt_rx) = bounded::<SinkEvent>(1024);
    let (ctrl_k2s_tx, ctrl_k2s_rx) = bounded::<Box<CtrlFrame>>(1024);
    let data: Vec<(Sender<DataMsg>, Receiver<DataMsg>)> = (0..cfg.channels)
        .map(|_| bounded(cfg.channel_depth))
        .collect();
    // Receivers ack in per-drain batches of source block indices.
    let (ack_tx, ack_rx) = bounded::<Vec<u32>>(1024);
    let (loaded_tx, loaded_rx) = bounded::<u32>(cfg.pool_blocks as usize);
    let (deliver_tx, deliver_rx) = bounded::<(u32, u32, u32)>(cfg.pool_blocks as usize);

    let start = Instant::now();
    // Phase 1: negotiation over the control channel, for real.
    sink_evt_tx
        .send(SinkEvent::Ctrl(encode(&CtrlMsg::SessionRequest {
            session: SESSION,
            block_size: cfg.block_size as u64,
            channels: cfg.channels as u16,
            total_bytes: cfg.total_bytes,
            notify_imm: cfg.notify_imm,
        })))
        .unwrap();
    let mut ctrl_sent_main = 1u64;

    struct Tally {
        ctrl_sent: u64,
        credit_requests: u64,
        dropped: u64,
        retransmits: u64,
        duplicates: u64,
        checksum_failures: u64,
        delivered: u64,
        ooo: u64,
        stage_ns: [u64; 5], // load, dispatch, place, verify, flush
    }
    let mut tally = Tally {
        ctrl_sent: 0,
        credit_requests: 0,
        dropped: 0,
        retransmits: 0,
        duplicates: 0,
        checksum_failures: 0,
        delivered: 0,
        ooo: 0,
        stage_ns: [0; 5],
    };

    std::thread::scope(|s| {
        // Watchdog (debug aid): with RFTP_LIVE_DEBUG set, dump pipeline
        // state every few seconds so stalls are diagnosable.
        if std::env::var_os("RFTP_LIVE_DEBUG").is_some() {
            let (src_pool, snk_pool, stock) = (&src_pool, &snk_pool, &stock);
            let (next_seq, done_flag) = (&next_seq, &done_flag);
            s.spawn(move || {
                for _ in 0..120 {
                    std::thread::sleep(std::time::Duration::from_secs(2));
                    if done_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    eprintln!(
                        "[watchdog] seq={} | src_free={} snk_free={} stock={} req_out={}",
                        next_seq.load(Ordering::Relaxed),
                        src_pool.free_count(),
                        snk_pool.free_count(),
                        stock.slots.len(),
                        stock.request_outstanding.load(Ordering::Relaxed),
                    );
                }
            });
        }

        // ---------------- SOURCE ----------------
        // Loader threads: claim sequence numbers, fill blocks with
        // header + pattern, hand them to the dispatcher.
        let loader_handles: Vec<_> = (0..cfg.loaders)
            .map(|_| {
                let loaded_tx = loaded_tx.clone();
                let src_pool = &src_pool;
                let (src_backend, pacer) = (&src_backend, &pacer);
                let (src_bufs, inflight, next_seq, cfg) = (&src_bufs, &inflight, &next_seq, &cfg);
                s.spawn(move || {
                    let mut load_ns = 0u64;
                    loop {
                        // Hold a block BEFORE claiming a sequence:
                        // claiming first would let sibling loaders absorb
                        // the whole pool for later sequences and starve
                        // the one the in-order pipeline needs next (the
                        // second face of the head-of-line hazard described
                        // at the dispatcher).
                        //
                        // Read-ahead pacing rides the same wait: a loader
                        // only prefetches while the source pool's
                        // free-depth watermark says fewer than `ra_limit`
                        // blocks are in flight. At the default (full-pool)
                        // depth the check is equivalent to the free-list
                        // wait below; at `readahead = 0` it serializes
                        // the transfer for overlap-ablation runs.
                        let mut spins = 0;
                        let block = loop {
                            if next_seq.load(Ordering::Relaxed) >= total_blocks {
                                return load_ns;
                            }
                            if src_pool.in_flight() < ra_limit {
                                if let Some(b) = src_pool.get_free() {
                                    break b;
                                }
                            }
                            backoff(&mut spins);
                        };
                        let seq = next_seq.fetch_add(1, Ordering::Relaxed);
                        if seq >= total_blocks {
                            // Lost the race for the final sequence.
                            src_pool.abandon(block).expect("FSM: abandon");
                            return load_ns;
                        }
                        let offset = seq * cfg.block_size as u64;
                        let len = (cfg.total_bytes - offset).min(cfg.block_size as u64) as u32;
                        let t0 = Instant::now();
                        {
                            let mut buf = src_bufs[block as usize].lock();
                            PayloadHeader {
                                session: SESSION,
                                seq: seq as u32,
                                offset,
                                len,
                            }
                            .encode(&mut buf[..PAYLOAD_HEADER_LEN]);
                            match src_backend {
                                SrcBackend::Pattern => fill_pattern(
                                    &mut buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize],
                                    pattern_seed(seq as u32),
                                ),
                                // The payload region of a SlotBuf starts
                                // on the 4 KiB boundary, so this read is
                                // O_DIRECT-eligible straight into the
                                // registered block.
                                SrcBackend::File(f) => {
                                    f.read_block(
                                        &mut buf[PAYLOAD_HEADER_LEN..],
                                        len as usize,
                                        offset,
                                    )
                                    .expect("source file read");
                                    if let Some(p) = pacer {
                                        p.pace(len as usize);
                                    }
                                }
                            }
                        }
                        load_ns += t0.elapsed().as_nanos() as u64;
                        *inflight[block as usize].lock() = Some(InFlightInfo {
                            seq: seq as u32,
                            slot: u32::MAX,
                            len,
                            sent_at: Instant::now(),
                            attempts: 0,
                        });
                        src_pool.loaded(block).expect("FSM: loaded");
                        loaded_tx.send(block).expect("dispatcher gone");
                    }
                })
            })
            .collect();
        drop(loaded_tx);

        // Dispatcher: pair each loaded block with a credit, ship it.
        let dispatcher = {
            let data_tx: Vec<Sender<DataMsg>> = data.iter().map(|(t, _)| t.clone()).collect();
            let evt_tx = sink_evt_tx.clone();
            let (stock, src_pool, inflight) = (&stock, &src_pool, &inflight);
            let cfg = &cfg;
            s.spawn(move || {
                let mut rr = 0usize;
                let mut fault_rng = cfg.fault_seed;
                let mut dispatch_ns = 0u64;
                let mut ctrl_sent = 0u64;
                let mut credit_requests = 0u64;
                let mut dropped = 0u64;
                // Blocks must be DISPATCHED in sequence order. Loaders
                // finish out of order, and if later sequences were allowed
                // to consume credits while an earlier one waits, the sink's
                // bounded pool could fill with blocks its in-order consumer
                // cannot accept — a head-of-line deadlock (found the hard
                // way; see DESIGN.md). Reordering here restores the
                // invariant that the oldest outstanding sequence always
                // owns a credit.
                let mut dispatch_order = ReorderBuffer::<u32>::new();
                let mut ready: std::collections::VecDeque<u32> = Default::default();
                let mut drain: Vec<u32> = Vec::with_capacity(cfg.pool_blocks as usize);
                while let Ok(_n) = loaded_rx.recv_batch(&mut drain, cfg.pool_blocks as usize) {
                    for block in drain.drain(..) {
                        let seq = inflight[block as usize]
                            .lock()
                            .as_ref()
                            .expect("loaded block untracked")
                            .seq;
                        for (_, b) in dispatch_order.push(seq, block) {
                            ready.push_back(b);
                        }
                    }
                    while let Some(block) = ready.pop_front() {
                        let slot = {
                            let mut spins = 0;
                            let mut starved_since: Option<Instant> = None;
                            loop {
                                if let Some(s2) = stock.slots.try_pop() {
                                    break s2;
                                }
                                if !stock.request_outstanding.swap(true, Ordering::AcqRel) {
                                    credit_requests += 1;
                                    ctrl_sent += 1;
                                    evt_tx
                                        .send(SinkEvent::Ctrl(encode(&CtrlMsg::MrRequest {
                                            session: SESSION,
                                        })))
                                        .expect("sink ctrl gone");
                                    starved_since = Some(Instant::now());
                                }
                                // A grant can race the sink's own
                                // bookkeeping (unlike the serialized
                                // simulator), so a starved request is
                                // eventually retried rather than trusted
                                // to be answered exactly once.
                                if starved_since.is_some_and(|t| {
                                    t.elapsed() > std::time::Duration::from_millis(20)
                                }) {
                                    stock.request_outstanding.store(false, Ordering::Release);
                                    starved_since = None;
                                }
                                backoff(&mut spins);
                            }
                        };
                        let t0 = Instant::now();
                        let info = {
                            let mut inf = inflight[block as usize].lock();
                            let i = inf.as_mut().expect("loaded block untracked");
                            i.slot = slot;
                            i.sent_at = Instant::now();
                            i.attempts = 1;
                            *i
                        };
                        assert!(
                            cfg.slot_bytes() >= info.len as usize + PAYLOAD_HEADER_LEN,
                            "credit too small"
                        );
                        src_pool.start_sending(block).expect("FSM: start_sending");
                        src_pool.posted(block).expect("FSM: posted");
                        let ch = rr % data_tx.len();
                        rr += 1;
                        if cfg.fault_drop_p > 0.0 && drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            // The wire ate it: the block stays Posted and
                            // unacked until the watchdog re-sends it.
                            dropped += 1;
                        } else {
                            data_tx[ch]
                                .send(DataMsg {
                                    src_block: block,
                                    seq: info.seq,
                                    slot,
                                    len: info.len,
                                })
                                .expect("receiver gone");
                        }
                        dispatch_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
                assert!(
                    dispatch_order.is_drained(),
                    "loads ended with a sequence gap"
                );
                (dispatch_ns, ctrl_sent, credit_requests, dropped)
            })
        };

        // Retransmit watchdog (fault injection only): any dispatched
        // block whose ack hasn't arrived within `retx_timeout` is put
        // back on the wire — the live analogue of the simulated engine's
        // TOK_RETX scan. Re-sends roll the same drop dice as first
        // sends, so a retransmit can itself be lost and retried.
        let retx_watchdog = (cfg.fault_drop_p > 0.0).then(|| {
            let data_tx: Vec<Sender<DataMsg>> = data.iter().map(|(t, _)| t.clone()).collect();
            let inflight = &inflight;
            let (done_flag, cfg) = (&done_flag, &cfg);
            s.spawn(move || {
                let mut fault_rng = cfg.fault_seed ^ 0x5EED_5EED_5EED_5EED;
                let mut rr = 0usize;
                let mut retransmits = 0u64;
                let mut dropped = 0u64;
                while !done_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.retx_timeout / 4);
                    for block in 0..cfg.pool_blocks {
                        // Hold the block's in-flight entry across the
                        // whole re-send so a concurrently arriving ack
                        // (which takes this same lock to retire the
                        // block) cannot interleave with it.
                        let mut inf = inflight[block as usize].lock();
                        let Some(i) = inf.as_mut() else { continue };
                        if i.slot == u32::MAX {
                            continue; // not dispatched yet
                        }
                        // Karn's backoff: each unacked attempt doubles
                        // the block's own deadline, so an ack stalled on
                        // receiver-side work cannot expire the same
                        // window round after round.
                        let shift = i.attempts.saturating_sub(1).min(6);
                        if i.sent_at.elapsed() < cfg.retx_timeout.saturating_mul(1 << shift) {
                            continue; // still fresh
                        }
                        assert!(i.attempts < 64, "block seq {} will not go through", i.seq);
                        i.sent_at = Instant::now();
                        i.attempts += 1;
                        retransmits += 1;
                        let ch = rr % data_tx.len();
                        rr += 1;
                        if drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            dropped += 1;
                        } else {
                            data_tx[ch]
                                .send(DataMsg {
                                    src_block: block,
                                    seq: i.seq,
                                    slot: i.slot,
                                    len: i.len,
                                })
                                .expect("receiver gone");
                        }
                    }
                }
                (retransmits, dropped)
            })
        });

        // Completion handler: ack batches retire blocks; completions are
        // coalesced into AckBatch control frames (up to `ctrl_batch` per
        // frame), flushed at every drain boundary — never held across a
        // blocking wait, so batching costs no latency. The final block
        // triggers teardown.
        let completion = {
            let evt_tx = sink_evt_tx.clone();
            let (src_pool, inflight) = (&src_pool, &inflight);
            let cfg = &cfg;
            s.spawn(move || {
                let mut h = AckCoalescer {
                    cfg,
                    src_pool,
                    inflight,
                    evt_tx: &evt_tx,
                    total_blocks,
                    completed: 0,
                    ctrl_sent: 0,
                    pending: Vec::with_capacity(cfg.ack_batch()),
                };
                let end = drain_coalesced(&mut h, &mut channel_events(&ack_rx, 64)).unwrap();
                assert_eq!(end, DrainEnd::Done, "ack channel closed early");
                let mut ctrl_sent = h.ctrl_sent;
                ctrl_sent += 1;
                evt_tx
                    .send(SinkEvent::Ctrl(encode(&CtrlMsg::DatasetComplete {
                        session: SESSION,
                        total_blocks: total_blocks as u32,
                    })))
                    .expect("sink ctrl gone");
                ctrl_sent
            })
        };

        // Source control handler: accepts and credits.
        let src_ctrl = {
            let stock = &stock;
            s.spawn(move || {
                for raw in ctrl_k2s_rx.iter() {
                    match CtrlMsg::decode(raw.as_bytes()).expect("bad ctrl message") {
                        CtrlMsg::SessionAccept { session, .. } => {
                            assert_eq!(session, SESSION);
                        }
                        CtrlMsg::Credits { session, credits } => {
                            assert_eq!(session, SESSION);
                            for c in credits {
                                stock.deposit(c.slot);
                            }
                        }
                        CtrlMsg::CreditBatch { session, slots, .. } => {
                            assert_eq!(session, SESSION);
                            for slot in slots {
                                stock.deposit(slot);
                            }
                        }
                        other => panic!("unexpected ctrl at source: {other:?}"),
                    }
                }
            })
        };

        // ---------------- SINK ----------------
        // Per-channel receivers: place payloads into the slots credits
        // named, then ack (the transport-level completion). Each wake
        // drains up to `channel_depth` messages and acks them as one
        // batch — one crossing per drain, not per block.
        let receiver_handles: Vec<_> = data
            .iter()
            .map(|(_, data_rx)| {
                let data_rx = data_rx.clone();
                let ack_tx = ack_tx.clone();
                let evt_tx = sink_evt_tx.clone();
                let (src_bufs, snk_bufs, placed) = (&src_bufs, &snk_bufs, &placed);
                let snk_backend = &snk_backend;
                let cfg = &cfg;
                s.spawn(move || {
                    let mut place_ns = 0u64;
                    let mut flush_ns = 0u64;
                    let mut duplicates = 0u64;
                    let mut batch: Vec<DataMsg> = Vec::with_capacity(cfg.channel_depth);
                    let mut acks: Vec<u32> = Vec::with_capacity(cfg.channel_depth);
                    while data_rx.recv_batch(&mut batch, cfg.channel_depth).is_ok() {
                        for msg in batch.drain(..) {
                            // Claim first placement of this sequence. A
                            // second copy means a retransmit raced a slow
                            // ack; its slot may already be freed and
                            // re-granted to a newer block, so placing it
                            // would corrupt that block — discard it (the
                            // paper-side duplicate-block rule).
                            if !placed.claim(msg.seq as u64) {
                                duplicates += 1;
                                continue;
                            }
                            let wire_len = msg.len as usize + PAYLOAD_HEADER_LEN;
                            let t0 = Instant::now();
                            {
                                let src = src_bufs[msg.src_block as usize].lock();
                                let mut dst = snk_bufs[msg.slot as usize].lock();
                                match snk_backend {
                                    SnkBackend::Verify => {
                                        // The RDMA WRITE: one copy,
                                        // registered source block →
                                        // credited sink slot.
                                        dst[..wire_len].copy_from_slice(&src[..wire_len]);
                                        place_ns += t0.elapsed().as_nanos() as u64;
                                    }
                                    SnkBackend::File(sink) => {
                                        // Write-behind placement: in file
                                        // mode the file page IS the sink
                                        // memory, so the WRITE goes
                                        // straight from the registered
                                        // source block to the block's
                                        // final offset — one copy per
                                        // block, same as pattern mode,
                                        // and sparse placement is the
                                        // reassembly. The credited slot
                                        // receives only the header, for
                                        // the consumer's in-order
                                        // validation. The source block
                                        // stays pinned (Waiting) until
                                        // the ack this placement
                                        // triggers, so the buffer is
                                        // stable for the whole pwrite.
                                        dst[..PAYLOAD_HEADER_LEN]
                                            .copy_from_slice(&src[..PAYLOAD_HEADER_LEN]);
                                        place_ns += t0.elapsed().as_nanos() as u64;
                                        let t1 = Instant::now();
                                        sink.write_block(
                                            &src[PAYLOAD_HEADER_LEN
                                                ..PAYLOAD_HEADER_LEN + msg.len as usize],
                                            msg.seq as u64 * cfg.block_size as u64,
                                        )
                                        .expect("sink file write");
                                        flush_ns += t1.elapsed().as_nanos() as u64;
                                    }
                                }
                            }
                            if cfg.notify_imm {
                                // The immediate: arrival notification
                                // in-band, one per WRITE by design.
                                evt_tx
                                    .send(SinkEvent::Imm {
                                        seq: msg.seq,
                                        slot: msg.slot,
                                        len: msg.len,
                                    })
                                    .expect("sink ctrl gone");
                            }
                            acks.push(msg.src_block);
                        }
                        if !acks.is_empty() {
                            ack_tx
                                .send(std::mem::replace(
                                    &mut acks,
                                    Vec::with_capacity(cfg.channel_depth),
                                ))
                                .expect("completion gone");
                        }
                    }
                    (place_ns, flush_ns, duplicates)
                })
            })
            .collect();
        drop(ack_tx);

        // Sink control handler: negotiation, arrivals, credits. Arrivals
        // in one event grant per completion (preserving the proactive
        // ramp) but the grants leave as one CreditBatch per event — the
        // credit loop's message count scales with drains, not blocks.
        let sink_ctrl = {
            let ctrl_tx = ctrl_k2s_tx.clone();
            let deliver_tx = deliver_tx.clone();
            let (snk_pool, granter) = (&snk_pool, &granter);
            let cfg = &cfg;
            s.spawn(move || {
                let mut h = GrantCoalescer {
                    cfg,
                    snk_pool,
                    granter,
                    ctrl_tx: &ctrl_tx,
                    deliver_tx: &deliver_tx,
                    total_blocks,
                    reorder: ReorderBuffer::new(),
                    pending: Vec::with_capacity(cfg.pool_blocks as usize),
                    ctrl_sent: 0,
                };
                let end = drain_coalesced(&mut h, &mut channel_events(&sink_evt_rx, 64)).unwrap();
                assert_eq!(end, DrainEnd::Closed, "sink ctrl never reports done");
                (h.ctrl_sent, h.reorder.ooo_arrivals)
            })
        };
        drop(deliver_tx);

        // Consumer: verify and free, in order.
        let consumer = {
            let ctrl_tx = ctrl_k2s_tx.clone();
            let (snk_pool, granter, snk_bufs) = (&snk_pool, &granter, &snk_bufs);
            // Payload checksum verification needs pattern data in the
            // sink slot: a file source carries arbitrary bytes, and a
            // file sink places payload in the file, not the slot. In
            // either file mode the consumer checks the header invariants
            // (session, sequence, length) and leaves byte integrity to
            // the file itself (the e2e tests compare source and
            // destination).
            let file_mode = matches!(snk_backend, SnkBackend::File(_))
                || matches!(src_backend, SrcBackend::File(_));
            let cfg = &cfg;
            s.spawn(move || {
                let mut verify_ns = 0u64;
                let mut checksum_failures = 0u64;
                let mut ctrl_sent = 0u64;
                let mut delivered = 0u64;
                let mut expected_seq = 0u32;
                let mut drain: Vec<(u32, u32, u32)> = Vec::with_capacity(cfg.pool_blocks as usize);
                'outer: while deliver_rx
                    .recv_batch(&mut drain, cfg.pool_blocks as usize)
                    .is_ok()
                {
                    for (seq, slot, len) in drain.drain(..) {
                        assert_eq!(seq, expected_seq, "consumer saw out-of-order delivery");
                        expected_seq += 1;
                        let t0 = Instant::now();
                        {
                            let buf = snk_bufs[slot as usize].lock();
                            let hdr = PayloadHeader::decode(&buf[..PAYLOAD_HEADER_LEN]).unwrap();
                            let ok = hdr.session == SESSION
                                && hdr.seq == seq
                                && hdr.len == len
                                && (file_mode
                                    || checksum(
                                        &buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize],
                                    ) == expected_checksum(SESSION, seq, len));
                            if !ok {
                                checksum_failures += 1;
                            }
                        }
                        verify_ns += t0.elapsed().as_nanos() as u64;
                        snk_pool.put_free(slot).expect("FSM: put_free");
                        let owed = granter.lock().on_block_freed();
                        if owed > 0 {
                            // Answer a starved MrRequest immediately.
                            match snk_pool.grant() {
                                Some(s2) => {
                                    granter.lock().note_granted(1);
                                    ctrl_sent += 1;
                                    let msg = if cfg.ctrl_batch <= 1 {
                                        CtrlMsg::Credits {
                                            session: SESSION,
                                            credits: vec![Credit {
                                                slot: s2,
                                                rkey: SINK_RKEY,
                                                offset: s2 as u64 * cfg.slot_bytes() as u64,
                                                len: cfg.slot_bytes() as u32,
                                            }],
                                        }
                                    } else {
                                        CtrlMsg::CreditBatch {
                                            session: SESSION,
                                            rkey: SINK_RKEY,
                                            slot_len: cfg.slot_bytes() as u32,
                                            slots: vec![s2],
                                        }
                                    };
                                    let _ = ctrl_tx.send(encode(&msg));
                                }
                                None => {
                                    // The freed block was granted by the
                                    // ctrl thread in between: the request
                                    // is still owed, keep it pending for
                                    // the next free.
                                    granter.lock().pending_request = true;
                                }
                            }
                        }
                        delivered += 1;
                        if delivered == total_blocks {
                            break 'outer;
                        }
                    }
                }
                (delivered, checksum_failures, verify_ns, ctrl_sent)
            })
        };

        // Close the scope-level clones so channel hangup propagates once
        // the worker threads drop theirs.
        drop(sink_evt_tx);
        drop(ctrl_k2s_tx);
        drop(data);

        let (delivered, checksum_failures, verify_ns, consumer_ctrl) =
            consumer.join().expect("consumer panicked");
        done_flag.store(true, Ordering::Relaxed);
        tally.delivered = delivered;
        tally.checksum_failures = checksum_failures;
        tally.stage_ns[3] = verify_ns;
        tally.ctrl_sent = ctrl_sent_main + consumer_ctrl;
        ctrl_sent_main = 0;

        for h in loader_handles {
            tally.stage_ns[0] += h.join().expect("loader panicked");
        }
        let (dispatch_ns, disp_ctrl, credit_requests, disp_dropped) =
            dispatcher.join().expect("dispatcher panicked");
        tally.stage_ns[1] = dispatch_ns;
        tally.ctrl_sent += disp_ctrl;
        tally.credit_requests = credit_requests;
        tally.dropped = disp_dropped;
        if let Some(h) = retx_watchdog {
            let (retransmits, dropped) = h.join().expect("retx watchdog panicked");
            tally.retransmits = retransmits;
            tally.dropped += dropped;
        }
        tally.ctrl_sent += completion.join().expect("completion panicked");
        for h in receiver_handles {
            let (place_ns, flush_ns, duplicates) = h.join().expect("receiver panicked");
            tally.stage_ns[2] += place_ns;
            tally.stage_ns[4] += flush_ns;
            tally.duplicates += duplicates;
        }
        let (sink_ctrl_sent, ooo) = sink_ctrl.join().expect("sink ctrl panicked");
        tally.ctrl_sent += sink_ctrl_sent;
        tally.ooo = ooo;
        src_ctrl.join().expect("source ctrl panicked");
    });

    // Dataset-completion durability: one batched fdatasync for the whole
    // transfer, inside the timing window — disk-to-disk throughput is
    // honest only if it includes getting the bytes to the platter.
    let mut sync_ns = 0u64;
    if let SnkBackend::File(sink) = &snk_backend {
        let t0 = Instant::now();
        sink.sync()?;
        sync_ns = t0.elapsed().as_nanos() as u64;
    }
    let elapsed = start.elapsed();
    assert_eq!(tally.delivered, total_blocks, "blocks lost in the pipeline");
    src_pool.check_invariants();
    snk_pool.check_invariants();
    let per_block = |ns: u64| ns as f64 / total_blocks as f64;
    Ok(LiveReport {
        bytes: cfg.total_bytes,
        blocks: total_blocks,
        elapsed,
        gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
        checksum_failures: tally.checksum_failures,
        ooo_blocks: tally.ooo,
        ctrl_msgs: tally.ctrl_sent,
        ctrl_msgs_per_block: tally.ctrl_sent as f64 / total_blocks as f64,
        credit_requests: tally.credit_requests,
        dropped_payloads: tally.dropped,
        retransmits: tally.retransmits,
        duplicate_payloads: tally.duplicates,
        stages: StageBreakdown {
            load_ns: per_block(tally.stage_ns[0]),
            dispatch_ns: per_block(tally.stage_ns[1]),
            place_ns: per_block(tally.stage_ns[2]),
            verify_ns: per_block(tally.stage_ns[3]),
            flush_ns: per_block(tally.stage_ns[4]),
            sync_ns: per_block(sync_ns),
        },
        tails: Default::default(),
        transport_threads: cfg.channels,
        direct_io_active,
        uring: None,
        adapt: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug builds run the pattern/checksum word loops and copies far
    /// slower than release; scale test volumes so `cargo test` stays
    /// snappy while `cargo test --release` exercises the full sizes.
    const SCALE: u64 = if cfg!(debug_assertions) { 8 } else { 1 };

    #[test]
    fn small_transfer_is_exact() {
        let cfg = LiveConfig::new(64 * 1024, 2, (8 << 20) / SCALE);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 128 / SCALE);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.ctrl_msgs > 0, "control traffic must flow");
    }

    #[test]
    fn batched_mode_coalesces_below_one_ctrl_per_block() {
        // Needs a transfer long enough that the steady state dominates
        // the credit ramp-up (during which messages are small and
        // frequent by design).
        let mut cfg = LiveConfig::new(8 * 1024, 8, (16 << 20) / SCALE);
        cfg.pool_blocks = 32;
        cfg.loaders = 2;
        // Debug builds run ~10× slower, so stretch the dwell to keep the
        // inter-ack gap inside the window (the default is tuned for
        // release-speed service times).
        cfg.flush_window = std::time::Duration::from_micros(500);
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert!(
            r.ctrl_msgs_per_block < 1.0,
            "batched mode must coalesce control traffic below one message \
             per block, got {:.2} ({} msgs / {} blocks)",
            r.ctrl_msgs_per_block,
            r.ctrl_msgs,
            r.blocks
        );
    }

    #[test]
    fn unbatched_mode_sends_per_block_control() {
        let mut cfg = LiveConfig::new(64 * 1024, 2, (8 << 20) / SCALE);
        cfg.ctrl_batch = 1;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        // One BlockComplete per block plus credit grants.
        assert!(
            r.ctrl_msgs as f64 >= 1.5 * r.blocks as f64,
            "unbatched wire must pay per-block control: {} msgs for {} blocks",
            r.ctrl_msgs,
            r.blocks
        );
    }

    #[test]
    fn batched_and_unbatched_deliver_identical_bytes() {
        // Coalescing is a wire-format change only: both modes must
        // byte-verify every block and deliver the same count.
        let mk = |batch: usize| {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (6 << 20) / SCALE);
            cfg.pool_blocks = 8;
            cfg.ctrl_batch = batch;
            run_live(&cfg)
        };
        let batched = mk(MAX_ACKS_PER_BATCH);
        let unbatched = mk(1);
        assert_eq!(batched.checksum_failures, 0);
        assert_eq!(unbatched.checksum_failures, 0);
        assert_eq!(batched.blocks, unbatched.blocks);
        assert!(
            batched.ctrl_msgs < unbatched.ctrl_msgs,
            "coalescing must cut message count: {} vs {}",
            batched.ctrl_msgs,
            unbatched.ctrl_msgs
        );
    }

    #[test]
    fn short_tail_block() {
        let cfg = LiveConfig::new(64 * 1024, 1, (64 << 10) * 3 + 777);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 4);
        assert_eq!(r.checksum_failures, 0);
    }

    #[test]
    fn single_block() {
        let cfg = LiveConfig::new(4096, 1, 4096);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.checksum_failures, 0);
    }

    #[test]
    fn many_channels_and_loaders_verify() {
        let mut cfg = LiveConfig::new(128 * 1024, 8, (64 << 20) / SCALE);
        cfg.loaders = 4;
        cfg.pool_blocks = 32;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert_eq!(r.blocks, 512 / SCALE);
    }

    #[test]
    fn tiny_pool_forces_credit_cycling() {
        let mut cfg = LiveConfig::new(256 * 1024, 2, (32 << 20) / SCALE);
        cfg.pool_blocks = 4;
        cfg.initial_credits = 1;
        cfg.grant_per_completion = 1;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert_eq!(r.blocks, 128 / SCALE);
    }

    #[test]
    fn throughput_is_real() {
        // The full pipeline: loaders pattern-fill, one placement copy per
        // block, checksum verification. Release builds should beat
        // 0.2 GB/s on any machine; debug builds run a reduced volume with
        // a token floor (the word loops are unoptimized there).
        let mut cfg = LiveConfig::new(1 << 20, 4, (256 << 20) / SCALE);
        cfg.pool_blocks = 32;
        cfg.loaders = 4;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        let floor = if cfg!(debug_assertions) { 0.005 } else { 0.2 };
        assert!(
            r.gbytes_per_sec > floor,
            "pipeline too slow: {:.3} GB/s",
            r.gbytes_per_sec
        );
        // The per-stage clocks must account for real work.
        assert!(r.stages.load_ns > 0.0);
        assert!(r.stages.place_ns > 0.0);
        assert!(r.stages.verify_ns > 0.0);
    }

    #[test]
    fn notify_imm_mode_verifies_and_saves_ctrl_messages() {
        let mk = |imm: bool| {
            let mut cfg = LiveConfig::new(64 * 1024, 4, (16 << 20) / SCALE);
            cfg.pool_blocks = 16;
            cfg.notify_imm = imm;
            run_live(&cfg)
        };
        // Message counts wobble by a frame or two with scheduler timing
        // (a slow flush coalesces what two fast ones would split), and
        // the structural saving at this volume is only a handful of
        // frames — compare best-of-3 per mode so a loaded test host
        // can't flip the margin.
        let run3 = |imm: bool| {
            (0..3)
                .map(|_| {
                    let r = mk(imm);
                    assert_eq!(r.checksum_failures, 0);
                    r.ctrl_msgs
                })
                .min()
                .unwrap()
        };
        let ctrl = mk(false);
        let imm = mk(true);
        assert_eq!(ctrl.checksum_failures, 0);
        assert_eq!(imm.checksum_failures, 0);
        assert_eq!(ctrl.blocks, imm.blocks);
        assert!(
            run3(true) < run3(false),
            "in-band notification must cut control traffic"
        );
    }

    #[test]
    fn notify_imm_repeated_runs() {
        for i in 0..6 {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (4 << 20) / SCALE);
            cfg.pool_blocks = 6;
            cfg.loaders = 3;
            cfg.notify_imm = true;
            let r = run_live(&cfg);
            assert_eq!(r.checksum_failures, 0, "iteration {i}");
        }
    }

    #[test]
    fn dropped_payloads_are_retransmitted_end_to_end() {
        // One in five payloads vanishes on the wire; the watchdog must
        // re-send until every block lands, byte-verified and in order —
        // with control coalescing enabled (the default).
        let mut cfg = LiveConfig::new(32 * 1024, 2, (4 << 20) / SCALE);
        cfg.pool_blocks = 8;
        cfg.loaders = 2;
        cfg.fault_drop_p = 0.2;
        cfg.fault_seed = 7;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 128 / SCALE);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.dropped_payloads >= 1, "fault injector never fired");
        assert!(
            r.retransmits >= r.dropped_payloads,
            "every drop needs at least one re-send: {} drops, {} retransmits",
            r.dropped_payloads,
            r.retransmits
        );
    }

    #[test]
    fn dropped_payloads_recover_in_unbatched_mode() {
        let mut cfg = LiveConfig::new(32 * 1024, 2, (2 << 20) / SCALE);
        cfg.pool_blocks = 6;
        cfg.ctrl_batch = 1;
        cfg.fault_drop_p = 0.15;
        cfg.fault_seed = 3;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.dropped_payloads >= 1, "fault injector never fired");
    }

    #[test]
    fn dropped_payloads_recover_in_notify_imm_mode() {
        let mut cfg = LiveConfig::new(32 * 1024, 2, (2 << 20) / SCALE);
        cfg.pool_blocks = 6;
        cfg.notify_imm = true;
        cfg.fault_drop_p = 0.15;
        cfg.fault_seed = 11;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.dropped_payloads >= 1, "fault injector never fired");
    }

    #[test]
    fn repeated_runs_are_clean() {
        // Shake out nondeterministic deadlocks/races by iterating.
        for i in 0..10 {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (4 << 20) / SCALE);
            cfg.pool_blocks = 6;
            cfg.loaders = 3;
            let r = run_live(&cfg);
            assert_eq!(r.checksum_failures, 0, "iteration {i}");
        }
    }

    #[test]
    fn atomic_bitmap_claims_each_bit_once() {
        let bm = AtomicBitmap::new(130);
        assert!(bm.claim(0));
        assert!(!bm.claim(0));
        assert!(bm.claim(64));
        assert!(bm.claim(129));
        assert!(!bm.claim(64));
        assert!(!bm.claim(129));
        assert!(bm.claim(63));
    }
}
