//! The native-thread transfer pipeline.
//!
//! Thread topology (arrows are bounded crossbeam channels):
//!
//! ```text
//!  SOURCE                                      SINK
//!  loaders ──▶ dispatcher ══ data[ch] ══▶ receivers ─┐ (placement memcpy)
//!     ▲            │                                 │ acks
//!     └── completion ◀────────────────────────────────┘
//!            │ BlockComplete (encoded ctrl)
//!            ▼
//!        ctrl s→k  ─────────────▶ sink-ctrl ──▶ consumer (verify, free)
//!        ctrl k→s  ◀──── Credits ──┴──────────────┘
//! ```
//!
//! The control channels carry the *real* Fig. 7(a) encodings; payload
//! buffers carry the *real* Fig. 7(b) header plus pattern data, verified
//! at the sink. Pools, credit stock/granter, and the reorder buffer are
//! the exact `rftp-core` types, shared behind `parking_lot` locks.
//!
//! The data path allocates nothing per block: wire payloads travel
//! through a [`WireSlab`] of pre-sized recycled slots (the analogue of
//! reusing registered MRs instead of re-registering per transfer — the
//! paper's buffer-pool argument applied to the pipeline's own wire
//! stage), and control messages ride fixed [`CtrlFrame`] slots by value.
//! Pattern fill and checksum verification run word-at-a-time via the
//! shared [`rftp_core::pattern`] kernels.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rftp_core::engine::{expected_checksum, pattern_seed as engine_pattern_seed};
use rftp_core::pattern::{checksum, fill_pattern};
use rftp_core::wire::{Credit, CtrlMsg, PayloadHeader, CTRL_SLOT_LEN, PAYLOAD_HEADER_LEN};
use rftp_core::{CreditStock, Granter, PoolGeometry, ReorderBuffer, SinkPool, SourcePool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SESSION: u32 = 1;

/// Configuration of one live transfer.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Payload bytes per block.
    pub block_size: usize,
    /// Blocks in each endpoint's pool.
    pub pool_blocks: u32,
    /// Parallel data channels.
    pub channels: usize,
    /// Loader threads at the source.
    pub loaders: usize,
    /// Total payload bytes to move.
    pub total_bytes: u64,
    /// Per-channel queue depth (the "send queue").
    pub channel_depth: usize,
    /// Credits granted per completion notification (paper: 2).
    pub grant_per_completion: u32,
    pub initial_credits: u32,
    /// Notify the sink in the data path (the WRITE_WITH_IMM analogue):
    /// the receiving channel reports the arrival directly instead of the
    /// source sending a `BlockComplete` control message after its
    /// completion — one less hop in the credit loop.
    pub notify_imm: bool,
    /// Fault injection: probability that a dispatched payload is dropped
    /// on the wire instead of reaching a receiver (0.0 = perfect
    /// fabric). Dropped blocks are recovered by the retransmit watchdog.
    pub fault_drop_p: f64,
    /// Seed for the drop RNG — same seed, same drop pattern.
    pub fault_seed: u64,
    /// A dispatched block still unacked after this long is retransmitted
    /// (the watchdog only runs when `fault_drop_p > 0`). Must comfortably
    /// exceed the pipeline's ack latency or healthy blocks are re-sent.
    pub retx_timeout: std::time::Duration,
}

impl LiveConfig {
    pub fn new(block_size: usize, channels: usize, total_bytes: u64) -> LiveConfig {
        LiveConfig {
            block_size,
            pool_blocks: 16,
            channels,
            loaders: 2,
            total_bytes,
            channel_depth: 8,
            grant_per_completion: 2,
            initial_credits: 2,
            notify_imm: false,
            fault_drop_p: 0.0,
            fault_seed: 0xFA_017,
            retx_timeout: std::time::Duration::from_millis(100),
        }
    }

    fn total_blocks(&self) -> u64 {
        self.total_bytes.div_ceil(self.block_size as u64)
    }

    fn slot_bytes(&self) -> usize {
        self.block_size + PAYLOAD_HEADER_LEN
    }
}

/// Results of a live transfer.
#[derive(Debug, Clone)]
pub struct LiveReport {
    pub bytes: u64,
    pub blocks: u64,
    pub elapsed: std::time::Duration,
    /// Real wall-clock payload throughput, GB/s.
    pub gbytes_per_sec: f64,
    pub checksum_failures: u64,
    /// Blocks that reached the sink ahead of sequence.
    pub ooo_blocks: u64,
    /// Control messages exchanged (both directions).
    pub ctrl_msgs: u64,
    pub credit_requests: u64,
    /// Payloads the fault injector dropped on the wire.
    pub dropped_payloads: u64,
    /// Blocks the watchdog re-sent after an ack timeout.
    pub retransmits: u64,
    /// Arrivals the sink discarded as already-placed duplicates (a
    /// retransmit raced a slow ack).
    pub duplicate_payloads: u64,
}

/// One in-flight data block on a channel. Carries a [`WireSlab`] slot
/// index, not bytes: the payload stays in pre-registered memory.
#[derive(Debug)]
struct DataMsg {
    src_block: u32,
    seq: u32,
    slot: u32,
    len: u32,
    wire: u32,
}

#[derive(Clone, Copy)]
struct InFlightInfo {
    seq: u32,
    slot: u32,
    len: u32,
    /// When the block last went onto the wire (dispatch or retransmit);
    /// the watchdog re-sends once `retx_timeout` passes without an ack.
    sent_at: Instant,
    /// Wire attempts so far — a runaway count means the recovery loop is
    /// broken, not that the fabric is unlucky.
    attempts: u32,
}

fn pattern_seed(seq: u32) -> u64 {
    engine_pattern_seed(SESSION, seq)
}

/// splitmix64 — the drop RNG. Self-contained so the fault injector adds
/// no dependency to the crate; determinism per seed is all it needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One uniform draw in [0, 1); drops fire when it lands below `p`.
fn drop_roll(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A recycling pool of pre-sized wire buffers — the stand-in for a set of
/// registered MRs reused across the whole transfer. The dispatcher
/// acquires a slot (blocking while all are in flight, the send-queue
/// backpressure analogue), fills it, and ships its index; the receiver
/// releases it after placement. No per-block heap allocation ever occurs.
struct WireSlab {
    slots: Vec<Mutex<Box<[u8]>>>,
    free: Mutex<Vec<u32>>,
    freed: Condvar,
}

impl WireSlab {
    fn new(count: u32, bytes: usize) -> WireSlab {
        WireSlab {
            slots: (0..count)
                .map(|_| Mutex::new(vec![0u8; bytes].into_boxed_slice()))
                .collect(),
            free: Mutex::new((0..count).rev().collect()),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) -> u32 {
        let mut free = self.free.lock();
        loop {
            if let Some(i) = free.pop() {
                return i;
            }
            self.freed.wait(&mut free);
        }
    }

    fn release(&self, i: u32) {
        self.free.lock().push(i);
        self.freed.notify_one();
    }
}

/// A control message in its on-wire form: one fixed ring slot passed by
/// value, no heap round trip per message.
#[derive(Debug, Clone, Copy)]
struct CtrlFrame {
    len: u16,
    buf: [u8; CTRL_SLOT_LEN],
}

impl CtrlFrame {
    fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

fn encode(msg: &CtrlMsg) -> CtrlFrame {
    let mut buf = [0u8; CTRL_SLOT_LEN];
    let n = msg.encode(&mut buf);
    CtrlFrame { len: n as u16, buf }
}

/// Run one transfer; blocks until completion and returns the report.
/// Panics on protocol violations (they are bugs, not runtime conditions).
pub fn run_live(cfg: &LiveConfig) -> LiveReport {
    assert!(cfg.channels >= 1 && cfg.loaders >= 1 && cfg.total_bytes > 0);
    let total_blocks = cfg.total_blocks();
    let geo = PoolGeometry::new(cfg.block_size as u64, cfg.pool_blocks);

    // ---- shared source state ----
    let src_pool = Mutex::new(SourcePool::new(geo));
    let src_pool_cv = Condvar::new();
    let src_bufs: Vec<Mutex<Box<[u8]>>> = (0..cfg.pool_blocks)
        .map(|_| Mutex::new(vec![0u8; cfg.slot_bytes()].into_boxed_slice()))
        .collect();
    let stock = Mutex::new(CreditStock::new());
    let stock_cv = Condvar::new();
    let inflight: Vec<Mutex<Option<InFlightInfo>>> =
        (0..cfg.pool_blocks).map(|_| Mutex::new(None)).collect();

    // ---- shared sink state ----
    let snk_pool = Mutex::new(SinkPool::new(geo));
    let granter = Mutex::new(Granter::new(
        rftp_core::CreditMode::Proactive,
        cfg.initial_credits,
        cfg.grant_per_completion,
        4,
    ));
    let snk_bufs: Vec<Mutex<Box<[u8]>>> = (0..cfg.pool_blocks)
        .map(|_| Mutex::new(vec![0u8; cfg.slot_bytes()].into_boxed_slice()))
        .collect();
    let reorder = Mutex::new(ReorderBuffer::<(u32, u32)>::new());

    // ---- the wire itself: recycled, pre-registered payload slots ----
    let wire_slab = WireSlab::new(cfg.pool_blocks, cfg.slot_bytes());

    // ---- counters ----
    let checksum_failures = AtomicU64::new(0);
    let ctrl_msgs = AtomicU64::new(0);
    let credit_requests = AtomicU64::new(0);
    let dropped_payloads = AtomicU64::new(0);
    let retransmits = AtomicU64::new(0);
    let duplicate_payloads = AtomicU64::new(0);
    // First-placement ledger, indexed by sequence: receivers claim a
    // sequence here before placing, so a retransmit that raced a slow ack
    // is discarded instead of overwriting a slot the sink has since freed
    // and re-granted to a newer block.
    let placed: Vec<Mutex<bool>> = (0..total_blocks).map(|_| Mutex::new(false)).collect();
    let next_seq = AtomicU64::new(0);
    let dispatched = AtomicU64::new(0);
    let acked = AtomicU64::new(0);
    let delivered_ctr = AtomicU64::new(0);
    let done_flag = std::sync::atomic::AtomicBool::new(false);

    // ---- channels ----
    let (ctrl_s2k_tx, ctrl_s2k_rx) = bounded::<CtrlFrame>(1024);
    let (ctrl_k2s_tx, ctrl_k2s_rx) = bounded::<CtrlFrame>(1024);
    let data: Vec<(Sender<DataMsg>, Receiver<DataMsg>)> = (0..cfg.channels)
        .map(|_| bounded(cfg.channel_depth))
        .collect();
    let (ack_tx, ack_rx) = bounded::<u32>(1024);
    // Data-path arrival notifications (notify_imm mode): receiver →
    // sink-ctrl, carrying (seq, slot, len) like an immediate would.
    let (imm_tx, imm_rx) = bounded::<(u32, u32, u32)>(1024);
    let (loaded_tx, loaded_rx) = bounded::<u32>(cfg.pool_blocks as usize);
    let (deliver_tx, deliver_rx) = bounded::<(u32, u32, u32)>(cfg.pool_blocks as usize);

    let start = Instant::now();
    // Phase 1: negotiation over the control channel, for real.
    ctrl_s2k_tx
        .send(encode(&CtrlMsg::SessionRequest {
            session: SESSION,
            block_size: cfg.block_size as u64,
            channels: cfg.channels as u16,
            total_bytes: cfg.total_bytes,
            notify_imm: cfg.notify_imm,
        }))
        .unwrap();
    ctrl_msgs.fetch_add(1, Ordering::Relaxed);

    let (ooo_blocks, delivered_blocks) = std::thread::scope(|s| {
        // Watchdog (debug aid): with RFTP_LIVE_DEBUG set, dump pipeline
        // state every few seconds so stalls are diagnosable.
        if std::env::var_os("RFTP_LIVE_DEBUG").is_some() {
            let (src_pool, snk_pool, stock, reorder, granter) =
                (&src_pool, &snk_pool, &stock, &reorder, &granter);
            let (next_seq, dispatched, acked, delivered_ctr, done_flag) =
                (&next_seq, &dispatched, &acked, &delivered_ctr, &done_flag);
            s.spawn(move || {
                for _ in 0..120 {
                    std::thread::sleep(std::time::Duration::from_secs(2));
                    if done_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let st = stock.lock();
                    let ro = reorder.lock();
                    eprintln!(
                        "[watchdog] seq={} dispatched={} acked={} delivered={} | src_free={} snk_free={} stock={} req_out={} pending={} | reorder: expected={} held={}",
                        next_seq.load(Ordering::Relaxed),
                        dispatched.load(Ordering::Relaxed),
                        acked.load(Ordering::Relaxed),
                        delivered_ctr.load(Ordering::Relaxed),
                        src_pool.lock().free_count(),
                        snk_pool.lock().free_count(),
                        st.available(),
                        st.request_outstanding,
                        granter.lock().pending_request,
                        ro.expected(),
                        ro.held(),
                    );
                }
            });
        }
        // ---------------- SOURCE ----------------
        // Loader threads: claim sequence numbers, fill blocks with
        // header + pattern, hand them to the dispatcher.
        for _ in 0..cfg.loaders {
            let loaded_tx = loaded_tx.clone();
            let (src_pool, src_pool_cv) = (&src_pool, &src_pool_cv);
            let (src_bufs, inflight, next_seq, cfg) = (&src_bufs, &inflight, &next_seq, &cfg);
            s.spawn(move || loop {
                // Claim (block, sequence) atomically under the pool lock:
                // claiming a sequence before holding a block would let
                // sibling loaders absorb the whole pool for later
                // sequences and starve the one the in-order pipeline
                // needs next (the second face of the head-of-line hazard
                // described at the dispatcher).
                let (block, seq) = {
                    let mut pool = src_pool.lock();
                    loop {
                        if next_seq.load(Ordering::Relaxed) >= total_blocks {
                            return;
                        }
                        if let Some(b) = pool.get_free() {
                            break (b, next_seq.fetch_add(1, Ordering::Relaxed));
                        }
                        src_pool_cv.wait(&mut pool);
                    }
                };
                let offset = seq * cfg.block_size as u64;
                let len = (cfg.total_bytes - offset).min(cfg.block_size as u64) as u32;
                {
                    let mut buf = src_bufs[block as usize].lock();
                    PayloadHeader {
                        session: SESSION,
                        seq: seq as u32,
                        offset,
                        len,
                    }
                    .encode(&mut buf[..PAYLOAD_HEADER_LEN]);
                    fill_pattern(
                        &mut buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize],
                        pattern_seed(seq as u32),
                    );
                }
                *inflight[block as usize].lock() = Some(InFlightInfo {
                    seq: seq as u32,
                    slot: u32::MAX,
                    len,
                    sent_at: Instant::now(),
                    attempts: 0,
                });
                src_pool.lock().loaded(block).expect("FSM: loaded");
                loaded_tx.send(block).expect("dispatcher gone");
            });
        }
        drop(loaded_tx);

        // Dispatcher: pair each loaded block with a credit, ship it.
        {
            let data_tx: Vec<Sender<DataMsg>> = data.iter().map(|(t, _)| t.clone()).collect();
            let ctrl_tx = ctrl_s2k_tx.clone();
            let (stock, stock_cv) = (&stock, &stock_cv);
            let (src_pool, src_bufs, inflight) = (&src_pool, &src_bufs, &inflight);
            let wire_slab = &wire_slab;
            let (ctrl_msgs, credit_requests, cfg) = (&ctrl_msgs, &credit_requests, &cfg);
            let (dispatched, dropped_payloads) = (&dispatched, &dropped_payloads);
            s.spawn(move || {
                let mut rr = 0usize;
                let mut fault_rng = cfg.fault_seed;
                // Blocks must be DISPATCHED in sequence order. Loaders
                // finish out of order, and if later sequences were allowed
                // to consume credits while an earlier one waits, the sink's
                // bounded pool could fill with blocks its in-order consumer
                // cannot accept — a head-of-line deadlock (found the hard
                // way; see DESIGN.md). Reordering here restores the
                // invariant that the oldest outstanding sequence always
                // owns a credit.
                let mut dispatch_order = ReorderBuffer::<u32>::new();
                let mut ready: std::collections::VecDeque<u32> = Default::default();
                for block in loaded_rx.iter() {
                    let seq = inflight[block as usize]
                        .lock()
                        .as_ref()
                        .expect("loaded block untracked")
                        .seq;
                    for (_, b) in dispatch_order.push(seq, block) {
                        ready.push_back(b);
                    }
                    while let Some(block) = ready.pop_front() {
                        let credit: Credit = {
                            let mut st = stock.lock();
                            loop {
                                if let Some(c) = st.take() {
                                    break c;
                                }
                                if st.should_request() {
                                    credit_requests.fetch_add(1, Ordering::Relaxed);
                                    ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                                    ctrl_tx
                                        .send(encode(&CtrlMsg::MrRequest { session: SESSION }))
                                        .expect("sink ctrl gone");
                                }
                                // Timed wait: in the threaded pipeline a grant
                                // can race the sink's own bookkeeping (unlike
                                // the serialized simulator), so a starved
                                // request is retried rather than trusted to
                                // be answered exactly once.
                                if stock_cv
                                    .wait_for(&mut st, std::time::Duration::from_millis(20))
                                    .timed_out()
                                {
                                    st.request_outstanding = false;
                                }
                            }
                        };
                        let info = {
                            let mut inf = inflight[block as usize].lock();
                            let i = inf.as_mut().expect("loaded block untracked");
                            i.slot = credit.slot;
                            i.sent_at = Instant::now();
                            i.attempts = 1;
                            *i
                        };
                        let wire_len = info.len as usize + PAYLOAD_HEADER_LEN;
                        assert!(credit.len as usize >= wire_len, "credit too small");
                        // "DMA read": copy the block out of registered memory
                        // into a recycled wire slot — no allocation.
                        let wire = wire_slab.acquire();
                        {
                            let buf = src_bufs[block as usize].lock();
                            wire_slab.slots[wire as usize].lock()[..wire_len]
                                .copy_from_slice(&buf[..wire_len]);
                        }
                        {
                            let mut pool = src_pool.lock();
                            pool.start_sending(block).expect("FSM: start_sending");
                            pool.posted(block).expect("FSM: posted");
                        }
                        let ch = rr % data_tx.len();
                        rr += 1;
                        dispatched.fetch_add(1, Ordering::Relaxed);
                        if cfg.fault_drop_p > 0.0 && drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            // The wire ate it: the block stays Posted and
                            // unacked until the watchdog re-sends it.
                            dropped_payloads.fetch_add(1, Ordering::Relaxed);
                            wire_slab.release(wire);
                        } else {
                            data_tx[ch]
                                .send(DataMsg {
                                    src_block: block,
                                    seq: info.seq,
                                    slot: credit.slot,
                                    len: info.len,
                                    wire,
                                })
                                .expect("receiver gone");
                        }
                    }
                }
                assert!(
                    dispatch_order.is_drained(),
                    "loads ended with a sequence gap"
                );
                // loaded channel closed: every block dispatched.
            });
        }

        // Retransmit watchdog (fault injection only): any dispatched
        // block whose ack hasn't arrived within `retx_timeout` is put
        // back on the wire — the live analogue of the simulated engine's
        // TOK_RETX scan. Re-sends roll the same drop dice as first
        // sends, so a retransmit can itself be lost and retried.
        if cfg.fault_drop_p > 0.0 {
            let data_tx: Vec<Sender<DataMsg>> = data.iter().map(|(t, _)| t.clone()).collect();
            let (src_bufs, inflight, wire_slab) = (&src_bufs, &inflight, &wire_slab);
            let (retransmits, dropped_payloads) = (&retransmits, &dropped_payloads);
            let (done_flag, cfg) = (&done_flag, &cfg);
            s.spawn(move || {
                let mut fault_rng = cfg.fault_seed ^ 0x5EED_5EED_5EED_5EED;
                let mut rr = 0usize;
                while !done_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(cfg.retx_timeout / 4);
                    for block in 0..cfg.pool_blocks {
                        // Hold the block's in-flight entry across the
                        // whole re-send so a concurrently arriving ack
                        // (which takes this same lock to retire the
                        // block) cannot interleave with it.
                        let mut inf = inflight[block as usize].lock();
                        let Some(i) = inf.as_mut() else { continue };
                        if i.slot == u32::MAX || i.sent_at.elapsed() < cfg.retx_timeout {
                            continue; // not dispatched yet, or still fresh
                        }
                        assert!(i.attempts < 64, "block seq {} will not go through", i.seq);
                        i.sent_at = Instant::now();
                        i.attempts += 1;
                        retransmits.fetch_add(1, Ordering::Relaxed);
                        let wire_len = i.len as usize + PAYLOAD_HEADER_LEN;
                        let wire = wire_slab.acquire();
                        {
                            let buf = src_bufs[block as usize].lock();
                            wire_slab.slots[wire as usize].lock()[..wire_len]
                                .copy_from_slice(&buf[..wire_len]);
                        }
                        let ch = rr % data_tx.len();
                        rr += 1;
                        if drop_roll(&mut fault_rng) < cfg.fault_drop_p {
                            dropped_payloads.fetch_add(1, Ordering::Relaxed);
                            wire_slab.release(wire);
                        } else {
                            data_tx[ch]
                                .send(DataMsg {
                                    src_block: block,
                                    seq: i.seq,
                                    slot: i.slot,
                                    len: i.len,
                                    wire,
                                })
                                .expect("receiver gone");
                        }
                    }
                }
            });
        }

        // Completion handler: acks retire blocks and emit BlockComplete
        // notifications; the final block triggers teardown.
        {
            let ctrl_tx = ctrl_s2k_tx.clone();
            let (src_pool, src_pool_cv, inflight) = (&src_pool, &src_pool_cv, &inflight);
            let ctrl_msgs = &ctrl_msgs;
            let acked = &acked;
            let cfg = &cfg;
            s.spawn(move || {
                let mut completed = 0u64;
                while completed < total_blocks {
                    let block = ack_rx.recv().expect("ack channel closed early");
                    acked.fetch_add(1, Ordering::Relaxed);
                    let info = inflight[block as usize]
                        .lock()
                        .take()
                        .expect("ack for idle block");
                    {
                        let mut pool = src_pool.lock();
                        pool.complete(block).expect("FSM: complete");
                    }
                    src_pool_cv.notify_all();
                    if !cfg.notify_imm {
                        ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                        ctrl_tx
                            .send(encode(&CtrlMsg::BlockComplete {
                                session: SESSION,
                                seq: info.seq,
                                slot: info.slot,
                                len: info.len,
                            }))
                            .expect("sink ctrl gone");
                    }
                    completed += 1;
                }
                ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                ctrl_tx
                    .send(encode(&CtrlMsg::DatasetComplete {
                        session: SESSION,
                        total_blocks: total_blocks as u32,
                    }))
                    .expect("sink ctrl gone");
            });
        }

        // Source control handler: accepts and credits.
        {
            let (stock, stock_cv) = (&stock, &stock_cv);
            let ctrl_msgs = &ctrl_msgs;
            s.spawn(move || {
                for raw in ctrl_k2s_rx.iter() {
                    ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                    match CtrlMsg::decode(raw.as_bytes()).expect("bad ctrl message") {
                        CtrlMsg::SessionAccept { session, .. } => {
                            assert_eq!(session, SESSION);
                        }
                        CtrlMsg::Credits { session, credits } => {
                            assert_eq!(session, SESSION);
                            stock.lock().deposit(credits);
                            stock_cv.notify_all();
                        }
                        other => panic!("unexpected ctrl at source: {other:?}"),
                    }
                }
            });
        }

        // ---------------- SINK ----------------
        // Per-channel receivers: place payloads into the slots credits
        // named, then ack (the transport-level completion).
        for (_, data_rx) in &data {
            let data_rx = data_rx.clone();
            let ack_tx = ack_tx.clone();
            let imm_tx = imm_tx.clone();
            let (snk_bufs, wire_slab) = (&snk_bufs, &wire_slab);
            let (placed, duplicate_payloads) = (&placed, &duplicate_payloads);
            let notify_imm = cfg.notify_imm;
            s.spawn(move || {
                for msg in data_rx.iter() {
                    // Claim first placement of this sequence. A second
                    // copy means a retransmit raced a slow ack; its slot
                    // may already be freed and re-granted to a newer
                    // block, so placing it would corrupt that block —
                    // discard it (the paper-side duplicate-block rule).
                    if std::mem::replace(&mut *placed[msg.seq as usize].lock(), true) {
                        duplicate_payloads.fetch_add(1, Ordering::Relaxed);
                        wire_slab.release(msg.wire);
                        continue;
                    }
                    let wire_len = msg.len as usize + PAYLOAD_HEADER_LEN;
                    {
                        let wire = wire_slab.slots[msg.wire as usize].lock();
                        let mut slot = snk_bufs[msg.slot as usize].lock();
                        slot[..wire_len].copy_from_slice(&wire[..wire_len]);
                    }
                    wire_slab.release(msg.wire);
                    if notify_imm {
                        // The immediate: arrival notification in-band.
                        imm_tx
                            .send((msg.seq, msg.slot, msg.len))
                            .expect("sink ctrl gone");
                    }
                    ack_tx.send(msg.src_block).expect("completion gone");
                }
            });
        }
        drop(ack_tx);
        drop(imm_tx);

        // Sink control handler: negotiation, arrivals, credits.
        {
            let ctrl_tx = ctrl_k2s_tx.clone();
            let deliver_tx = deliver_tx.clone();
            let (snk_pool, granter, reorder) = (&snk_pool, &granter, &reorder);
            let ctrl_msgs = &ctrl_msgs;
            let cfg = &cfg;
            s.spawn(move || {
                let grant = |want: u32| -> Option<CtrlMsg> {
                    if want == 0 {
                        return None;
                    }
                    let mut pool = snk_pool.lock();
                    let credits: Vec<Credit> = (0..want)
                        .map_while(|_| {
                            pool.grant().map(|slot| Credit {
                                slot,
                                rkey: 0x11FE, // symbolic: channels address slots directly
                                offset: slot as u64 * cfg.slot_bytes() as u64,
                                len: cfg.slot_bytes() as u32,
                            })
                        })
                        .collect();
                    drop(pool);
                    if credits.is_empty() {
                        None
                    } else {
                        granter.lock().note_granted(credits.len() as u32);
                        Some(CtrlMsg::Credits {
                            session: SESSION,
                            credits,
                        })
                    }
                };
                let on_arrival = |seq: u32, slot: u32, len: u32| -> Option<CtrlMsg> {
                    snk_pool.lock().ready(slot).expect("FSM: ready");
                    for (s2, (slot2, len2)) in reorder.lock().push(seq, (slot, len)) {
                        deliver_tx.send((s2, slot2, len2)).expect("consumer gone");
                    }
                    let want = granter.lock().on_completion();
                    grant(want)
                };
                // Select over the control channel and (in notify_imm
                // mode) the in-band arrival stream. A closed channel is
                // swapped for `never()` so the loop blocks instead of
                // spinning on its Err.
                let never_ctrl = crossbeam::channel::never::<CtrlFrame>();
                let never_imm = crossbeam::channel::never::<(u32, u32, u32)>();
                let mut ctrl_src = &ctrl_s2k_rx;
                let mut imm_src = &imm_rx;
                let mut ctrl_open = true;
                let mut imm_open = true;
                while ctrl_open || imm_open {
                    crossbeam::channel::select! {
                        recv(ctrl_src) -> raw => {
                            let Ok(raw) = raw else {
                                ctrl_open = false;
                                ctrl_src = &never_ctrl;
                                continue;
                            };
                    ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                    let reply = match CtrlMsg::decode(raw.as_bytes()).expect("bad ctrl message") {
                        CtrlMsg::SessionRequest { session, .. } => {
                            assert_eq!(session, SESSION);
                            ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                            ctrl_tx
                                .send(encode(&CtrlMsg::SessionAccept {
                                    session: SESSION,
                                    block_size: cfg.block_size as u64,
                                    data_qpns: (0..cfg.channels as u32).collect(),
                                }))
                                .expect("source ctrl gone");
                            let want = granter.lock().on_accept();
                            grant(want)
                        }
                        CtrlMsg::BlockComplete {
                            session,
                            seq,
                            slot,
                            len,
                        } => {
                            assert_eq!(session, SESSION);
                            on_arrival(seq, slot, len)
                        }
                        CtrlMsg::MrRequest { session } => {
                            assert_eq!(session, SESSION);
                            let free = snk_pool.lock().free_count();
                            let want = granter.lock().on_request(free);
                            grant(want)
                        }
                        CtrlMsg::DatasetComplete { total_blocks: t, .. } => {
                            assert_eq!(t as u64, total_blocks);
                            None
                        }
                        other => panic!("unexpected ctrl at sink: {other:?}"),
                    };
                    if let Some(msg) = reply {
                        ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                        ctrl_tx.send(encode(&msg)).expect("source ctrl gone");
                    }
                        }
                        recv(imm_src) -> arrival => {
                            let Ok((seq, slot, len)) = arrival else {
                                imm_open = false;
                                imm_src = &never_imm;
                                continue;
                            };
                            if let Some(msg) = on_arrival(seq, slot, len) {
                                ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                                ctrl_tx.send(encode(&msg)).expect("source ctrl gone");
                            }
                        }
                    }
                }
            });
        }
        drop(deliver_tx);

        // Consumer: verify and free, in order.
        let consumer = {
            let ctrl_tx = ctrl_k2s_tx.clone();
            let (snk_pool, granter, snk_bufs) = (&snk_pool, &granter, &snk_bufs);
            let (checksum_failures, ctrl_msgs, cfg) = (&checksum_failures, &ctrl_msgs, &cfg);
            let delivered_ctr = &delivered_ctr;
            s.spawn(move || {
                let mut delivered = 0u64;
                let mut expected_seq = 0u32;
                #[allow(clippy::explicit_counter_loop)] // the counter IS the protocol invariant
                for (seq, slot, len) in deliver_rx.iter() {
                    assert_eq!(seq, expected_seq, "consumer saw out-of-order delivery");
                    expected_seq += 1;
                    {
                        let buf = snk_bufs[slot as usize].lock();
                        let hdr = PayloadHeader::decode(&buf[..PAYLOAD_HEADER_LEN]).unwrap();
                        let ok = hdr.session == SESSION
                            && hdr.seq == seq
                            && hdr.len == len
                            && checksum(
                                &buf[PAYLOAD_HEADER_LEN..PAYLOAD_HEADER_LEN + len as usize],
                            ) == expected_checksum(SESSION, seq, len);
                        if !ok {
                            checksum_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    snk_pool.lock().put_free(slot).expect("FSM: put_free");
                    let owed = granter.lock().on_block_freed();
                    if owed > 0 {
                        // Answer a starved MrRequest immediately.
                        let credit = {
                            let mut pool = snk_pool.lock();
                            pool.grant().map(|s2| Credit {
                                slot: s2,
                                rkey: 0x11FE,
                                offset: s2 as u64 * cfg.slot_bytes() as u64,
                                len: cfg.slot_bytes() as u32,
                            })
                        };
                        match credit {
                            Some(c) => {
                                granter.lock().note_granted(1);
                                ctrl_msgs.fetch_add(1, Ordering::Relaxed);
                                let _ = ctrl_tx.send(encode(&CtrlMsg::Credits {
                                    session: SESSION,
                                    credits: vec![c],
                                }));
                            }
                            None => {
                                // The freed block was granted by the ctrl
                                // thread in between: the request is still
                                // owed, keep it pending for the next free.
                                granter.lock().pending_request = true;
                            }
                        }
                    }
                    delivered += 1;
                    delivered_ctr.fetch_add(1, Ordering::Relaxed);
                    if delivered == total_blocks {
                        break;
                    }
                }
                delivered
            })
        };

        // Close the scope-level clones so channel hangup propagates once
        // the worker threads drop theirs.
        drop(ctrl_s2k_tx);
        drop(ctrl_k2s_tx);
        drop(data);

        let delivered = consumer.join().expect("consumer panicked");
        done_flag.store(true, Ordering::Relaxed);
        let ooo = reorder.lock().ooo_arrivals;
        (ooo, delivered)
    });

    let elapsed = start.elapsed();
    assert_eq!(
        delivered_blocks, total_blocks,
        "blocks lost in the pipeline"
    );
    src_pool.lock().check_invariants();
    snk_pool.lock().check_invariants();
    LiveReport {
        bytes: cfg.total_bytes,
        blocks: total_blocks,
        elapsed,
        gbytes_per_sec: cfg.total_bytes as f64 / 1e9 / elapsed.as_secs_f64().max(1e-9),
        checksum_failures: checksum_failures.load(Ordering::Relaxed),
        ooo_blocks,
        ctrl_msgs: ctrl_msgs.load(Ordering::Relaxed),
        credit_requests: credit_requests.load(Ordering::Relaxed),
        dropped_payloads: dropped_payloads.load(Ordering::Relaxed),
        retransmits: retransmits.load(Ordering::Relaxed),
        duplicate_payloads: duplicate_payloads.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug builds run the pattern/checksum word loops and copies far
    /// slower than release; scale test volumes so `cargo test` stays
    /// snappy while `cargo test --release` exercises the full sizes.
    const SCALE: u64 = if cfg!(debug_assertions) { 8 } else { 1 };

    #[test]
    fn small_transfer_is_exact() {
        let cfg = LiveConfig::new(64 * 1024, 2, (8 << 20) / SCALE);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 128 / SCALE);
        assert_eq!(r.checksum_failures, 0);
        assert!(
            r.ctrl_msgs > 2 * r.blocks,
            "notifications + credits must flow"
        );
    }

    #[test]
    fn short_tail_block() {
        let cfg = LiveConfig::new(64 * 1024, 1, (64 << 10) * 3 + 777);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 4);
        assert_eq!(r.checksum_failures, 0);
    }

    #[test]
    fn single_block() {
        let cfg = LiveConfig::new(4096, 1, 4096);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.checksum_failures, 0);
    }

    #[test]
    fn many_channels_and_loaders_verify() {
        let mut cfg = LiveConfig::new(128 * 1024, 8, (64 << 20) / SCALE);
        cfg.loaders = 4;
        cfg.pool_blocks = 32;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert_eq!(r.blocks, 512 / SCALE);
    }

    #[test]
    fn tiny_pool_forces_credit_cycling() {
        let mut cfg = LiveConfig::new(256 * 1024, 2, (32 << 20) / SCALE);
        cfg.pool_blocks = 4;
        cfg.initial_credits = 1;
        cfg.grant_per_completion = 1;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert_eq!(r.blocks, 128 / SCALE);
    }

    #[test]
    fn throughput_is_real() {
        // The full pipeline: loaders pattern-fill, two copies per block
        // (both through recycled slots), checksum verification. Release
        // builds should beat 0.2 GB/s on any machine; debug builds run a
        // reduced volume with a token floor (the word loops are
        // unoptimized there).
        let mut cfg = LiveConfig::new(1 << 20, 4, (256 << 20) / SCALE);
        cfg.pool_blocks = 32;
        cfg.loaders = 4;
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        let floor = if cfg!(debug_assertions) { 0.005 } else { 0.2 };
        assert!(
            r.gbytes_per_sec > floor,
            "pipeline too slow: {:.3} GB/s",
            r.gbytes_per_sec
        );
    }

    #[test]
    fn notify_imm_mode_verifies_and_saves_ctrl_messages() {
        let mk = |imm: bool| {
            let mut cfg = LiveConfig::new(64 * 1024, 4, (16 << 20) / SCALE);
            cfg.pool_blocks = 16;
            cfg.notify_imm = imm;
            run_live(&cfg)
        };
        let ctrl = mk(false);
        let imm = mk(true);
        assert_eq!(ctrl.checksum_failures, 0);
        assert_eq!(imm.checksum_failures, 0);
        assert_eq!(ctrl.blocks, imm.blocks);
        assert!(
            imm.ctrl_msgs < ctrl.ctrl_msgs,
            "in-band notification must cut control traffic: {} vs {}",
            imm.ctrl_msgs,
            ctrl.ctrl_msgs
        );
    }

    #[test]
    fn notify_imm_repeated_runs() {
        for i in 0..6 {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (4 << 20) / SCALE);
            cfg.pool_blocks = 6;
            cfg.loaders = 3;
            cfg.notify_imm = true;
            let r = run_live(&cfg);
            assert_eq!(r.checksum_failures, 0, "iteration {i}");
        }
    }

    #[test]
    fn dropped_payloads_are_retransmitted_end_to_end() {
        // One in five payloads vanishes on the wire; the watchdog must
        // re-send until every block lands, byte-verified and in order.
        let mut cfg = LiveConfig::new(32 * 1024, 2, (4 << 20) / SCALE);
        cfg.pool_blocks = 8;
        cfg.loaders = 2;
        cfg.fault_drop_p = 0.2;
        cfg.fault_seed = 7;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let r = run_live(&cfg);
        assert_eq!(r.blocks, 128 / SCALE);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.dropped_payloads >= 1, "fault injector never fired");
        assert!(
            r.retransmits >= r.dropped_payloads,
            "every drop needs at least one re-send: {} drops, {} retransmits",
            r.dropped_payloads,
            r.retransmits
        );
    }

    #[test]
    fn dropped_payloads_recover_in_notify_imm_mode() {
        let mut cfg = LiveConfig::new(32 * 1024, 2, (2 << 20) / SCALE);
        cfg.pool_blocks = 6;
        cfg.notify_imm = true;
        cfg.fault_drop_p = 0.15;
        cfg.fault_seed = 11;
        cfg.retx_timeout = std::time::Duration::from_millis(25);
        let r = run_live(&cfg);
        assert_eq!(r.checksum_failures, 0);
        assert!(r.dropped_payloads >= 1, "fault injector never fired");
    }

    #[test]
    fn repeated_runs_are_clean() {
        // Shake out nondeterministic deadlocks/races by iterating.
        for i in 0..10 {
            let mut cfg = LiveConfig::new(32 * 1024, 3, (4 << 20) / SCALE);
            cfg.pool_blocks = 6;
            cfg.loaders = 3;
            let r = run_live(&cfg);
            assert_eq!(r.checksum_failures, 0, "iteration {i}");
        }
    }
}
