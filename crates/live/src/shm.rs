//! Shared-memory one-sided transport: the sink's credited slot pool
//! *is* a memfd window both processes map, and a source "send" is a
//! store into the credited slot's memory — a real one-sided WRITE with
//! zero receiver-side payload copies. Only three things ever cross a
//! socket:
//!
//! * **control** (`UnixStream`) — the exact length-prefixed control
//!   frames every other backend speaks (credits, acks, session setup;
//!   PROTOCOL.md is byte-identical on this plane), plus a one-shot
//!   *window descriptor* preamble that also ferries the memfd file
//!   descriptor via `SCM_RIGHTS`;
//! * **notify** (`UnixStream`) — 16-byte [`DataFrameHeader`] records,
//!   source → sink: the WRITE-with-notification doorbell. The payload
//!   itself never touches this stream;
//! * **the window** — payload bytes, written exactly once, by the
//!   source, directly into the slot the credit named.
//!
//! ## Window descriptor
//!
//! Sent by the sink on the control socket before any control frame,
//! with the memfd attached to the same `sendmsg`:
//!
//! ```text
//! offset  0..2    magic    0xFFFF (impossible frame length: control
//!                          frame bodies are capped at MAX_FRAME_BODY,
//!                          so a source reading the control stream can
//!                          always tell descriptor from frame)
//!         2..4    version  1
//!         4..8    slots    credited slot count (BE)
//!         8..16   stride   bytes per slot in the window (BE)
//!         16..24  len      total window length in bytes (BE)
//!         24..28  cap      max payload bytes per block (BE)
//!         28..    offsets  slots × u64 BE — window byte offset of each
//!                          wire slot index (the "rkey table"; every
//!                          sink here emits 0,stride,2·stride…, but any
//!                          non-overlapping in-window table is legal)
//! ```
//!
//! A daemon that *rejects* a session (busy/geometry) replies with an
//! ordinary control frame and no descriptor — the source's control
//! reader sees a legal frame prefix instead of 0xFFFF and falls back to
//! plain frame decoding, so rejection needs no shared memory at all.
//!
//! ## Publication protocol (per slot)
//!
//! The first 8 bytes of each slot's stride are dead space on the wire
//! (the wire image starts at `STORE_ALIGN - PAYLOAD_HEADER_LEN`; see
//! [`SlotBuf::external`]) and hold one `AtomicU64` generation word:
//! `(epoch << 2) | state`, state ∈ {GRANTED=0, WRITING=1,
//! PUBLISHED=2}. Ownership alternates one-sidedly:
//!
//! * **sink, at credit time**: bump the epoch and release-store
//!   `(e, GRANTED)` — the slot now belongs to the source;
//! * **source, at place time**: acquire-load the word, require
//!   `GRANTED`, CAS to `(e, WRITING)`, copy the wire image in, then
//!   release-store `(e, PUBLISHED)` — the fence that replaces the
//!   receiver copy — and write one notify record;
//! * **sink, at notify time**: acquire-load and require exactly
//!   `(e, PUBLISHED)` for the epoch it granted — anything else means a
//!   stale or torn write and fails the session loudly instead of
//!   verifying garbage.
//!
//! A retransmitted duplicate can therefore never tear a slot under
//! verification: the source keeps a per-slot `(last seq, epoch)` record
//! and a resend of an already-placed seq re-notifies without touching
//! memory, while a *stale* resend (the slot was since re-credited to a
//! newer block) is dropped entirely — see [`SrcWindow::place`].
//!
//! ## Trust model
//!
//! Same-host, same trust domain as the hello token (net.rs): the peer
//! holds a writable mapping of **its own session's window** — one memfd
//! created for that session alone ([`SessionWindow`]), so under the
//! daemon a tenant can scribble its own in-flight payloads (per-block
//! checksums detect that, as with an RDMA rkey holder writing your
//! pinned memory) but can never see or corrupt another session's. The
//! unix sockets are created owner-only (0600): admission itself is
//! limited to the daemon's uid.

#[cfg(target_os = "linux")]
mod imp {
    use crate::net::{
        self, proto_err, read_exact_or_eof, read_one_ctrl_frame, retry_interrupted, write_hello,
        HELLO_TIMEOUT, KIND_CTRL, KIND_DATA, STALE_SESSION_TIMEOUT,
    };
    use crate::split::run_sink_session;
    use crate::store::{SlotBuf, STORE_ALIGN};
    use crate::transport::{CtrlRx, CtrlTx, DataRx, DataTx, SinkTransport, SourceTransport};
    use crate::{LiveConfig, LiveReport};
    use parking_lot::Mutex;
    use rftp_core::wire::{
        CtrlMsg, DataFrameHeader, FrameDecoder, DATA_FRAME_HEADER_LEN, PAYLOAD_HEADER_LEN,
    };
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::net::Shutdown;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::unix::fs::PermissionsExt;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::time::{Duration, Instant};

    // -----------------------------------------------------------------
    // Raw syscall shims (no libc dep; precedent: net.rs, uring.rs)
    // -----------------------------------------------------------------

    #[cfg(target_arch = "x86_64")]
    const SYS_MEMFD_CREATE: i64 = 319;
    #[cfg(target_arch = "aarch64")]
    const SYS_MEMFD_CREATE: i64 = 279;

    const MFD_CLOEXEC: u32 = 1;
    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_SHARED: i32 = 1;
    const MSG_NOSIGNAL: i32 = 0x4000;
    const MSG_CMSG_CLOEXEC: i32 = 0x4000_0000;
    const SOL_SOCKET: i32 = 1;
    const SCM_RIGHTS: i32 = 1;

    #[repr(C)]
    struct IoVec {
        base: *mut core::ffi::c_void,
        len: usize,
    }

    /// 64-bit Linux `struct msghdr` — `repr(C)` field order matches the
    /// kernel/glibc layout (natural alignment inserts the same padding
    /// after `namelen` and `flags` as the C definition).
    #[repr(C)]
    struct MsgHdr {
        name: *mut core::ffi::c_void,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut core::ffi::c_void,
        controllen: usize,
        flags: i32,
    }

    /// 64-bit Linux `struct cmsghdr`: 16-byte header, data follows.
    /// For one fd: CMSG_LEN(4) = 20, CMSG_SPACE(4) = 24.
    const CMSG_HDR: usize = 16;
    const CMSG_LEN_ONE_FD: usize = CMSG_HDR + 4;
    const CMSG_SPACE_ONE_FD: usize = 24;

    extern "C" {
        fn syscall(num: i64, ...) -> i64;
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn ftruncate(fd: i32, len: i64) -> i32;
        fn sendmsg(fd: i32, msg: *const MsgHdr, flags: i32) -> isize;
        fn recvmsg(fd: i32, msg: *mut MsgHdr, flags: i32) -> isize;
        fn close(fd: i32) -> i32;
        fn lseek(fd: i32, offset: i64, whence: i32) -> i64;
    }

    const SEEK_END: i32 = 2;

    fn memfd_create(len: usize) -> io::Result<OwnedFd> {
        let name = b"rftp-shm-window\0";
        let fd = unsafe { syscall(SYS_MEMFD_CREATE, name.as_ptr(), MFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = unsafe { OwnedFd::from_raw_fd(fd as RawFd) };
        let rc = unsafe { ftruncate(fd.as_raw_fd(), len as i64) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// A `MAP_SHARED` mapping of the window fd. Unmapped on drop; the
    /// raw pointer is shared across threads (`Send + Sync`) because
    /// every access goes through the per-slot atomic publication
    /// protocol in the module docs.
    pub(crate) struct Mapping {
        base: *mut u8,
        len: usize,
    }

    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map `len` bytes of `fd` shared read+write. A failed map is a
        /// typed error, never a raw `MAP_FAILED` pointer escaping — this
        /// is the guard that turns "sink died, fd truncated" into a
        /// session abort instead of a later SIGBUS at a wild address.
        pub(crate) fn map_shared(fd: RawFd, len: usize) -> io::Result<Mapping> {
            if len == 0 {
                return Err(proto_err("shm window has zero length"));
            }
            // mmap happily maps beyond a short file and delivers the
            // SIGBUS at first touch instead — the one failure mode a
            // one-sided writer cannot recover from. Check the fd really
            // backs the claimed length (a sink that died mid-setup, or
            // a hostile descriptor, leaves it short) and fail typed. An
            // fd whose size cannot even be read (a pipe, a socket) is
            // refused outright — mapping it blind would forfeit exactly
            // the guard this check exists for.
            let size = unsafe { lseek(fd, 0, SEEK_END) };
            if size < 0 {
                return Err(proto_err(format!(
                    "shm window fd size unreadable ({}) — refusing to map an \
                     unverifiable length",
                    io::Error::last_os_error()
                )));
            }
            if (size as u64) < len as u64 {
                return Err(proto_err(format!(
                    "shm window fd holds {size} bytes but the descriptor claims {len} — \
                     refusing a mapping that would fault on first write"
                )));
            }
            let p = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_SHARED,
                    fd,
                    0,
                )
            };
            if p as isize == -1 || p.is_null() {
                return Err(io::Error::other(format!(
                    "mmap of shm window failed: {}",
                    io::Error::last_os_error()
                )));
            }
            Ok(Mapping {
                base: p as *mut u8,
                len,
            })
        }

        pub(crate) fn base(&self) -> *mut u8 {
            self.base
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe { munmap(self.base as *mut core::ffi::c_void, self.len) };
        }
    }

    // -----------------------------------------------------------------
    // SCM_RIGHTS fd passing
    // -----------------------------------------------------------------

    /// One `sendmsg` carrying `bytes` (or as much as the kernel takes)
    /// with `fd` attached as an `SCM_RIGHTS` control message. Returns
    /// the byte count sent; the fd rides with the *first* byte, so a
    /// short send continues with plain writes.
    fn sendmsg_with_fd(sock: &UnixStream, bytes: &[u8], fd: RawFd) -> io::Result<usize> {
        let mut cmsg = [0u8; CMSG_SPACE_ONE_FD];
        cmsg[..8].copy_from_slice(&(CMSG_LEN_ONE_FD as u64).to_ne_bytes());
        cmsg[8..12].copy_from_slice(&SOL_SOCKET.to_ne_bytes());
        cmsg[12..16].copy_from_slice(&SCM_RIGHTS.to_ne_bytes());
        cmsg[16..20].copy_from_slice(&fd.to_ne_bytes());
        let mut iov = IoVec {
            base: bytes.as_ptr() as *mut core::ffi::c_void,
            len: bytes.len(),
        };
        let msg = MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: &mut iov,
            iovlen: 1,
            control: cmsg.as_mut_ptr() as *mut core::ffi::c_void,
            controllen: CMSG_LEN_ONE_FD,
            flags: 0,
        };
        let n = retry_interrupted(|| {
            let n = unsafe { sendmsg(sock.as_raw_fd(), &msg, MSG_NOSIGNAL) };
            if n < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        })?;
        Ok(n)
    }

    /// Send `bytes` on `sock` with `fd` attached to the leading
    /// `sendmsg`; any remainder after a short send goes as plain bytes.
    pub(crate) fn send_with_fd(sock: &UnixStream, bytes: &[u8], fd: RawFd) -> io::Result<()> {
        let n = sendmsg_with_fd(sock, bytes, fd)?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        if n < bytes.len() {
            let mut s = sock;
            s.write_all(&bytes[n..])?;
        }
        Ok(())
    }

    /// One `recvmsg` into `buf`, capturing the first `SCM_RIGHTS` fd
    /// from the control data into `out` (if `out` is still empty) and
    /// closing any extras a hostile peer packed in.
    fn recvmsg_with_fd(
        sock: &UnixStream,
        buf: &mut [u8],
        out: &mut Option<OwnedFd>,
    ) -> io::Result<usize> {
        // Room for a few control messages; a flood beyond this is
        // truncated by the kernel (MSG_CTRUNC) and the extra fds closed
        // on its side of the truncation.
        let mut cmsg = [0u8; 4 * CMSG_SPACE_ONE_FD];
        let mut iov = IoVec {
            base: buf.as_mut_ptr() as *mut core::ffi::c_void,
            len: buf.len(),
        };
        let mut msg = MsgHdr {
            name: std::ptr::null_mut(),
            namelen: 0,
            iov: &mut iov,
            iovlen: 1,
            control: cmsg.as_mut_ptr() as *mut core::ffi::c_void,
            controllen: cmsg.len(),
            flags: 0,
        };
        let n = retry_interrupted(|| {
            let n = unsafe { recvmsg(sock.as_raw_fd(), &mut msg, MSG_CMSG_CLOEXEC) };
            if n < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(n as usize)
            }
        })?;
        // Walk the control messages we actually received.
        let mut off = 0usize;
        while off + CMSG_HDR <= msg.controllen {
            let clen = u64::from_ne_bytes(cmsg[off..off + 8].try_into().unwrap()) as usize;
            if clen < CMSG_HDR || off + clen > msg.controllen {
                break;
            }
            let level = i32::from_ne_bytes(cmsg[off + 8..off + 12].try_into().unwrap());
            let ctype = i32::from_ne_bytes(cmsg[off + 12..off + 16].try_into().unwrap());
            if level == SOL_SOCKET && ctype == SCM_RIGHTS {
                let mut doff = off + CMSG_HDR;
                while doff + 4 <= off + clen {
                    let fd = i32::from_ne_bytes(cmsg[doff..doff + 4].try_into().unwrap());
                    if fd >= 0 {
                        if out.is_none() {
                            *out = Some(unsafe { OwnedFd::from_raw_fd(fd) });
                        } else {
                            unsafe { close(fd) };
                        }
                    }
                    doff += 4;
                }
            }
            // Advance by the space-aligned length.
            off += clen.next_multiple_of(8);
        }
        Ok(n)
    }

    /// `read_exact` over `recvmsg`, capturing any `SCM_RIGHTS` fd that
    /// arrives with the bytes — descriptor reads can fragment, and the
    /// fd lands with whichever segment the kernel delivered first.
    fn read_exact_with_fd(
        sock: &UnixStream,
        buf: &mut [u8],
        out: &mut Option<OwnedFd>,
    ) -> io::Result<()> {
        let mut off = 0;
        while off < buf.len() {
            let n = recvmsg_with_fd(sock, &mut buf[off..], out)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "control stream closed inside shm window descriptor",
                ));
            }
            off += n;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Window descriptor
    // -----------------------------------------------------------------

    /// Descriptor magic — deliberately an *illegal* control-frame length
    /// prefix (frame bodies are capped far below 0xFFFF), so the source
    /// control reader can distinguish "window descriptor" from "ordinary
    /// frame" (daemon busy/reject) on the first two bytes.
    const DESC_MAGIC: u16 = 0xFFFF;
    const DESC_VERSION: u16 = 1;
    const DESC_HEAD_LEN: usize = 28;
    /// Ceiling on a descriptor's slot count — a corrupt or hostile
    /// descriptor cannot make the source allocate without bound.
    const MAX_DESC_SLOTS: usize = 1 << 20;
    /// Ceiling on a descriptor's window length (1 TiB).
    const MAX_WINDOW_LEN: u64 = 1 << 40;

    /// The sink's window geometry as shipped to the source: the rkey
    /// table of this transport.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(crate) struct WindowDesc {
        /// Bytes per slot in the window (header dead space + padded
        /// payload, see [`SlotBuf::stride`]).
        pub(crate) stride: u64,
        /// Total mapped window bytes.
        pub(crate) window_len: u64,
        /// Max payload bytes per block this window's slots can hold.
        pub(crate) block_cap: u32,
        /// Window byte offset of each wire slot index.
        pub(crate) offsets: Vec<u64>,
    }

    impl WindowDesc {
        pub(crate) fn encode(&self) -> Vec<u8> {
            let mut b = Vec::with_capacity(DESC_HEAD_LEN + self.offsets.len() * 8);
            b.extend_from_slice(&DESC_MAGIC.to_be_bytes());
            b.extend_from_slice(&DESC_VERSION.to_be_bytes());
            b.extend_from_slice(&(self.offsets.len() as u32).to_be_bytes());
            b.extend_from_slice(&self.stride.to_be_bytes());
            b.extend_from_slice(&self.window_len.to_be_bytes());
            b.extend_from_slice(&self.block_cap.to_be_bytes());
            for off in &self.offsets {
                b.extend_from_slice(&off.to_be_bytes());
            }
            b
        }

        /// Validate a received descriptor before trusting any offset:
        /// every slot must lie whole and aligned inside the claimed
        /// window, or the source refuses the session — this is the
        /// bounds check that makes a later "write to unmapped slot"
        /// structurally impossible instead of a SIGBUS.
        pub(crate) fn validate(&self) -> io::Result<()> {
            if self.stride == 0
                || !self.stride.is_multiple_of(STORE_ALIGN as u64)
                || self.stride < 2 * STORE_ALIGN as u64
            {
                return Err(proto_err(format!(
                    "shm descriptor: bad stride {}",
                    self.stride
                )));
            }
            if self.window_len == 0 || self.window_len > MAX_WINDOW_LEN {
                return Err(proto_err(format!(
                    "shm descriptor: bad window length {}",
                    self.window_len
                )));
            }
            if self.offsets.is_empty() || self.offsets.len() > MAX_DESC_SLOTS {
                return Err(proto_err(format!(
                    "shm descriptor: bad slot count {}",
                    self.offsets.len()
                )));
            }
            let payload_room = self.stride - STORE_ALIGN as u64;
            if self.block_cap == 0 || self.block_cap as u64 > payload_room {
                return Err(proto_err(format!(
                    "shm descriptor: block cap {} exceeds slot payload room {payload_room}",
                    self.block_cap
                )));
            }
            for &off in &self.offsets {
                if !off.is_multiple_of(STORE_ALIGN as u64)
                    || off
                        .checked_add(self.stride)
                        .is_none_or(|end| end > self.window_len)
                {
                    return Err(proto_err(format!(
                        "shm descriptor: slot offset {off} out of window"
                    )));
                }
            }
            // No two slots may alias: overlapping offsets would let one
            // credited write tear another, and the desync would surface
            // later as a confusing publication failure instead of a
            // typed descriptor error here.
            let mut sorted = self.offsets.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                if pair[1] - pair[0] < self.stride {
                    return Err(proto_err(format!(
                        "shm descriptor: slot offsets {} and {} overlap (stride {})",
                        pair[0], pair[1], self.stride
                    )));
                }
            }
            Ok(())
        }
    }

    /// Parse the fixed head (after the 2 magic bytes already consumed).
    fn decode_desc_head(head: &[u8; DESC_HEAD_LEN - 2]) -> io::Result<(usize, u64, u64, u32)> {
        let version = u16::from_be_bytes([head[0], head[1]]);
        if version != DESC_VERSION {
            return Err(proto_err(format!(
                "shm descriptor version {version} unsupported"
            )));
        }
        let slots = u32::from_be_bytes(head[2..6].try_into().unwrap()) as usize;
        if slots == 0 || slots > MAX_DESC_SLOTS {
            return Err(proto_err(format!("shm descriptor: bad slot count {slots}")));
        }
        let stride = u64::from_be_bytes(head[6..14].try_into().unwrap());
        let window_len = u64::from_be_bytes(head[14..22].try_into().unwrap());
        let block_cap = u32::from_be_bytes(head[22..26].try_into().unwrap());
        Ok((slots, stride, window_len, block_cap))
    }

    // -----------------------------------------------------------------
    // Per-slot generation word
    // -----------------------------------------------------------------

    /// Slot states in the low 2 bits of the generation word; the epoch
    /// lives in the upper 62 and is bumped by the sink at every grant.
    const SLOT_GRANTED: u64 = 0;
    const SLOT_WRITING: u64 = 1;
    const SLOT_PUBLISHED: u64 = 2;

    fn word_of(epoch: u64, state: u64) -> u64 {
        (epoch << 2) | state
    }

    /// The generation word lives in the first 8 bytes of the slot's
    /// stride — dead space the wire image never touches (the image
    /// starts at `STORE_ALIGN - PAYLOAD_HEADER_LEN`).
    unsafe fn slot_word<'a>(base: *mut u8, off: u64) -> &'a AtomicU64 {
        &*(base.add(off as usize) as *const AtomicU64)
    }

    /// Where a slot's wire image (payload header + payload) begins,
    /// matching [`SlotBuf::external`]'s deref region.
    unsafe fn wire_ptr(base: *mut u8, off: u64) -> *mut u8 {
        base.add(off as usize + STORE_ALIGN - PAYLOAD_HEADER_LEN)
    }

    // -----------------------------------------------------------------
    // Source half
    // -----------------------------------------------------------------

    /// What the source last placed into one sink slot: the block seq and
    /// the grant epoch it was published under. `seq == -1` means the
    /// slot was never written by this session.
    struct SentEntry {
        seq: i64,
        epoch: u64,
    }

    /// Outcome of a one-sided place attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum PlaceOutcome {
        /// Fresh write: wire image stored, slot published — notify.
        Placed,
        /// Duplicate of the block already published in this slot —
        /// memory untouched, but the notify record is worth resending
        /// (the ack may be slow, and re-notifying is idempotent at the
        /// sink, which dedups on seq).
        Renotify,
        /// Stale retransmit: the slot has since been re-credited to a
        /// newer block. Dropped entirely — writing would tear the
        /// successor, notifying would lie.
        Stale,
    }

    /// The source's view of the sink's window: the mapping, the rkey
    /// table, and the per-slot send history that makes retransmits
    /// tear-proof.
    ///
    /// **Why the seq rule exists.** Credits can overtake acks: the sink
    /// flushes a freed slot's re-grant immediately while the block's
    /// ack may dwell in a coalescing batch. A slot can therefore be
    /// re-credited and re-dispatched to a *new* block while the old
    /// block's retransmit watchdog still considers it in flight. The
    /// per-slot `(last seq, epoch)` record disambiguates every case by
    /// seq comparison — the dispatcher pairs blocks to slots in seq
    /// order, so per-slot seqs are strictly monotonic:
    ///
    /// * `hdr.seq > last`: first placement of a newer block — the word
    ///   must be `GRANTED` (anything else is a protocol fault, failed
    ///   loudly rather than hung);
    /// * `hdr.seq == last`: watchdog resend of the same block —
    ///   re-notify if the slot still holds it published, else stale;
    /// * `hdr.seq < last`: stale resend for a slot that moved on — drop.
    pub(crate) struct SrcWindow {
        map: Mapping,
        block_cap: u32,
        offsets: Vec<u64>,
        sent: Vec<Mutex<SentEntry>>,
    }

    impl SrcWindow {
        fn new(map: Mapping, desc: &WindowDesc) -> SrcWindow {
            let sent = (0..desc.offsets.len())
                .map(|_| Mutex::new(SentEntry { seq: -1, epoch: 0 }))
                .collect();
            SrcWindow {
                map,
                block_cap: desc.block_cap,
                offsets: desc.offsets.clone(),
                sent,
            }
        }

        /// One-sided place of `wire` into the slot `hdr` names. This is
        /// the transport's entire data path: bounds checks, the
        /// generation-word handshake, one `memcpy` into shared memory,
        /// one release fence. No socket, no receiver copy.
        pub(crate) fn place(&self, hdr: &DataFrameHeader, wire: &[u8]) -> io::Result<PlaceOutcome> {
            let slot = hdr.slot as usize;
            if slot >= self.offsets.len() {
                return Err(proto_err(format!(
                    "shm place: slot {slot} outside the {}-slot window",
                    self.offsets.len()
                )));
            }
            if hdr.len > self.block_cap {
                return Err(proto_err(format!(
                    "shm place: payload {} exceeds window block cap {}",
                    hdr.len, self.block_cap
                )));
            }
            debug_assert_eq!(wire.len(), hdr.wire_len());
            let off = self.offsets[slot];
            let word = unsafe { slot_word(self.map.base(), off) };
            let mut entry = self.sent[slot].lock();
            let seq = hdr.seq as i64;
            if seq < entry.seq {
                return Ok(PlaceOutcome::Stale);
            }
            if seq == entry.seq {
                // Same block resent: if the slot still holds it
                // published under the same grant, the bytes are already
                // there (byte-identical by protocol) — never rewrite a
                // slot the sink may be verifying.
                let w = word.load(Ordering::Acquire);
                return if w == word_of(entry.epoch, SLOT_PUBLISHED) {
                    Ok(PlaceOutcome::Renotify)
                } else {
                    Ok(PlaceOutcome::Stale)
                };
            }
            // Fresh block for this slot: the sink must have re-granted.
            let w = word.load(Ordering::Acquire);
            if w & 0b11 != SLOT_GRANTED {
                return Err(proto_err(format!(
                    "shm place: slot {slot} not granted (word {w:#x}) for seq {} — \
                     window desynchronized",
                    hdr.seq
                )));
            }
            let epoch = w >> 2;
            if word
                .compare_exchange(
                    w,
                    word_of(epoch, SLOT_WRITING),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                return Err(proto_err(format!(
                    "shm place: slot {slot} changed hands mid-claim — window desynchronized"
                )));
            }
            unsafe {
                std::ptr::copy_nonoverlapping(
                    wire.as_ptr(),
                    wire_ptr(self.map.base(), off),
                    wire.len(),
                );
            }
            // The fence that replaces the receiver copy: everything
            // stored above happens-before any sink thread that
            // acquire-loads PUBLISHED.
            word.store(word_of(epoch, SLOT_PUBLISHED), Ordering::Release);
            entry.seq = seq;
            entry.epoch = epoch;
            Ok(PlaceOutcome::Placed)
        }
    }

    /// State shared by every source-side endpoint of one shm session:
    /// the notify stream all channels write their doorbell records to,
    /// and the window, installed by the control reader when the
    /// descriptor lands (always before any credit can arrive — the
    /// descriptor precedes every control frame on the same stream).
    pub(crate) struct ShmSourceState {
        notify: Mutex<UnixStream>,
        window: OnceLock<SrcWindow>,
    }

    /// One data channel's send endpoint. All channels share the session
    /// state: the window is one, the notify stream is one — a "channel"
    /// on this transport is purely a pipeline-concurrency construct.
    struct ShmDataTx {
        shared: Arc<ShmSourceState>,
    }

    impl DataTx for ShmDataTx {
        fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
            let win = self.shared.window.get().ok_or_else(|| {
                proto_err("shm window not established (no descriptor before first credit)")
            })?;
            match win.place(&hdr, wire)? {
                PlaceOutcome::Stale => Ok(()),
                PlaceOutcome::Placed | PlaceOutcome::Renotify => {
                    let mut rec = [0u8; DATA_FRAME_HEADER_LEN];
                    hdr.encode(&mut rec);
                    retry_interrupted(|| self.shared.notify.lock().write_all(&rec))
                }
            }
        }
    }

    /// Source control reader: consumes the one-shot window descriptor
    /// (with its `SCM_RIGHTS` fd) off the front of the control stream,
    /// then decodes ordinary frames exactly like the TCP reader.
    struct ShmCtrlRx {
        stream: UnixStream,
        dec: FrameDecoder,
        buf: Vec<u8>,
        shared: Arc<ShmSourceState>,
        desc_done: bool,
    }

    impl ShmCtrlRx {
        /// Read the descriptor preamble. If the first two bytes are a
        /// legal frame prefix instead of the descriptor magic, the sink
        /// rejected the session before mapping anything (daemon busy /
        /// geometry) — feed the bytes to the frame decoder and carry on;
        /// the pipeline will surface the rejection through its normal
        /// control path.
        fn consume_descriptor(&mut self) -> io::Result<()> {
            let mut fd: Option<OwnedFd> = None;
            let mut magic = [0u8; 2];
            read_exact_with_fd(&self.stream, &mut magic, &mut fd)?;
            if u16::from_be_bytes(magic) != DESC_MAGIC {
                self.dec.push(&magic);
                self.desc_done = true;
                return Ok(());
            }
            let mut head = [0u8; DESC_HEAD_LEN - 2];
            read_exact_with_fd(&self.stream, &mut head, &mut fd)?;
            let (slots, stride, window_len, block_cap) = decode_desc_head(&head)?;
            let mut table = vec![0u8; slots * 8];
            read_exact_with_fd(&self.stream, &mut table, &mut fd)?;
            let offsets = table
                .chunks_exact(8)
                .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
                .collect();
            let desc = WindowDesc {
                stride,
                window_len,
                block_cap,
                offsets,
            };
            desc.validate()?;
            let fd = fd.ok_or_else(|| {
                proto_err("shm descriptor arrived without an SCM_RIGHTS window fd")
            })?;
            let map = Mapping::map_shared(fd.as_raw_fd(), desc.window_len as usize)?;
            let _ = self.shared.window.set(SrcWindow::new(map, &desc));
            self.desc_done = true;
            Ok(())
        }
    }

    impl CtrlRx for ShmCtrlRx {
        fn recv(&mut self) -> io::Result<Option<CtrlMsg>> {
            if !self.desc_done {
                self.consume_descriptor()?;
            }
            loop {
                if let Some(msg) = self
                    .dec
                    .next_frame()
                    .map_err(|e| proto_err(format!("bad control frame: {e:?}")))?
                {
                    return Ok(Some(msg));
                }
                let n = retry_interrupted(|| self.stream.read(&mut self.buf))?;
                if n == 0 {
                    return if self.dec.pending_bytes() == 0 {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "control stream closed mid-frame",
                        ))
                    };
                }
                self.dec.push(&self.buf[..n]);
            }
        }
    }

    fn shutdown_all_unix(socks: &[UnixStream], how: Shutdown) {
        for s in socks {
            let _ = s.shutdown(how);
        }
    }

    /// Connect the source half of an shm session to a sink listening on
    /// the unix socket at `path`. Two connections — control and notify —
    /// carry hellos in the net.rs format (the notify stream plays the
    /// data-stream role with index 0); the window arrives back over
    /// control as the descriptor preamble.
    pub fn connect_source_shm(
        path: impl AsRef<Path>,
        channels: usize,
    ) -> io::Result<SourceTransport> {
        assert!(channels >= 1 && channels <= u16::MAX as usize);
        let path = path.as_ref();
        let token = net::new_session_token();
        let mut ctrl = UnixStream::connect(path)?;
        write_hello(&mut ctrl, KIND_CTRL, channels as u16, token)?;
        let mut notify = UnixStream::connect(path)?;
        write_hello(&mut notify, KIND_DATA, 0, token)?;
        let shared = Arc::new(ShmSourceState {
            notify: Mutex::new(notify.try_clone()?),
            window: OnceLock::new(),
        });
        let ctrl_rd = ctrl.try_clone()?;
        let data: Vec<Box<dyn DataTx>> = (0..channels)
            .map(|_| {
                Box::new(ShmDataTx {
                    shared: Arc::clone(&shared),
                }) as Box<dyn DataTx>
            })
            .collect();
        let handles = Arc::new(vec![ctrl.try_clone()?, notify]);
        let shutdown_handles = Arc::clone(&handles);
        Ok(SourceTransport {
            ctrl_tx: Arc::new(net::NetCtrlTx(Mutex::new(ctrl))),
            ctrl_rx: Box::new(ShmCtrlRx {
                stream: ctrl_rd,
                dec: FrameDecoder::new(),
                buf: vec![0u8; 4096],
                shared,
                desc_done: false,
            }),
            data: Arc::new(data),
            register: Box::new(|_| Ok(())),
            transport_threads: 0,
            shutdown_write: Box::new(move || shutdown_all_unix(&shutdown_handles, Shutdown::Write)),
            abort: Arc::new(move || shutdown_all_unix(&handles, Shutdown::Both)),
        })
    }

    /// [`connect_source_shm`], with a typed fallback: when the shm
    /// endpoint does not exist or refuses (sink on another host mounts
    /// no unix socket here; a dead sink leaves a stale path), dial the
    /// TCP listener instead. Returns which transport connected so the
    /// caller can report it — the fallback is a visible downgrade, not
    /// a silent one.
    pub fn connect_source_shm_or_tcp(
        shm_path: impl AsRef<Path>,
        tcp_addr: impl std::net::ToSocketAddrs + Copy,
        channels: usize,
        sockbuf: usize,
    ) -> io::Result<(SourceTransport, bool)> {
        match connect_source_shm(shm_path, channels) {
            Ok(t) => Ok((t, true)),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::NotFound
                        | io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::PermissionDenied
                ) =>
            {
                Ok((net::connect_source(tcp_addr, channels, sockbuf)?, false))
            }
            Err(e) => Err(e),
        }
    }

    // -----------------------------------------------------------------
    // Sink half
    // -----------------------------------------------------------------

    /// The sink's view of its own window: the slot base, the offset
    /// table it described to the peer, and the epoch it granted each
    /// slot at — what a published word must match before the payload is
    /// trusted. Owns the mapping and memfd: every window is created for
    /// exactly one session and dies with it.
    pub(crate) struct SnkWindow {
        base: *mut u8,
        block_cap: u32,
        offsets: Vec<u64>,
        /// Epoch granted per wire slot; a notify is only honoured when
        /// the slot word reads exactly `(expected, PUBLISHED)`.
        expected: Vec<AtomicU64>,
        _own: (Mapping, OwnedFd),
    }

    unsafe impl Send for SnkWindow {}
    unsafe impl Sync for SnkWindow {}

    impl SnkWindow {
        pub(crate) fn owned(
            map: Mapping,
            fd: OwnedFd,
            offsets: Vec<u64>,
            block_cap: u32,
        ) -> SnkWindow {
            let expected = (0..offsets.len()).map(|_| AtomicU64::new(0)).collect();
            SnkWindow {
                base: map.base(),
                block_cap,
                offsets,
                expected,
                _own: (map, fd),
            }
        }

        /// Hand slot ownership to the source: bump the epoch past
        /// whatever the word holds and release-store `GRANTED` — the
        /// bump-from-live-value keeps an earlier published word in this
        /// window from ever matching a new grant. Called by the control
        /// sender *before* the credit frame's bytes leave, so the grant
        /// is visible strictly before the credit that announces it.
        fn grant(&self, slot: u32) {
            let s = slot as usize;
            if s >= self.offsets.len() {
                return; // granter never emits out-of-pool slots; defensive
            }
            let word = unsafe { slot_word(self.base, self.offsets[s]) };
            let epoch = (word.load(Ordering::Acquire) >> 2).wrapping_add(1);
            self.expected[s].store(epoch, Ordering::Release);
            word.store(word_of(epoch, SLOT_GRANTED), Ordering::Release);
        }

        /// The acquire side of publication: require the slot word to
        /// read exactly `(granted epoch, PUBLISHED)`. Anything else —
        /// an old epoch, a `WRITING` state, a never-granted slot — is a
        /// stale or torn one-sided write and fails the session rather
        /// than letting verification read bytes still in flight.
        fn check_published(&self, hdr: &DataFrameHeader) -> io::Result<()> {
            let s = hdr.slot as usize;
            if s >= self.offsets.len() {
                return Err(proto_err(format!(
                    "shm notify names slot {s} outside the {}-slot window",
                    self.offsets.len()
                )));
            }
            if hdr.len > self.block_cap {
                return Err(proto_err(format!(
                    "shm notify claims {} payload bytes, window block cap is {}",
                    hdr.len, self.block_cap
                )));
            }
            let expected = self.expected[s].load(Ordering::Acquire);
            let word = unsafe { slot_word(self.base, self.offsets[s]) };
            let w = word.load(Ordering::Acquire);
            if w != word_of(expected, SLOT_PUBLISHED) {
                return Err(proto_err(format!(
                    "shm slot {s} not cleanly published (word {w:#x}, granted epoch \
                     {expected}) — torn or stale one-sided write"
                )));
            }
            Ok(())
        }
    }

    /// Sink control sender: the ordinary frame encoder, plus the window
    /// re-arm — every credit leaving this endpoint grants its slot's
    /// generation word first, so by the time the source reads the
    /// credit, the slot is already writable shared memory.
    struct ShmCtrlTx {
        inner: net::NetCtrlTx<UnixStream>,
        win: Arc<SnkWindow>,
    }

    impl CtrlTx for ShmCtrlTx {
        fn send(&self, msg: &CtrlMsg) -> io::Result<()> {
            match msg {
                CtrlMsg::CreditBatch { slots, .. } => {
                    for &s in slots {
                        self.win.grant(s);
                    }
                }
                // The sink pipeline only emits CreditBatch, but grant on
                // the long form too so the invariant is the message
                // type's, not the caller's.
                CtrlMsg::Credits { credits, .. } => {
                    for c in credits {
                        self.win.grant(c.slot);
                    }
                }
                _ => {}
            }
            self.inner.send(msg)
        }
    }

    /// One sink data channel: a reader of the shared notify stream.
    /// `recv_wire` never reads a socket — the payload is already in the
    /// slot the caller's buffer aliases; all that remains is the
    /// publication check. This is the zero-copy place stage.
    struct ShmDataRx {
        notify: Arc<Mutex<UnixStream>>,
        win: Arc<SnkWindow>,
        pending: Option<DataFrameHeader>,
    }

    impl DataRx for ShmDataRx {
        fn recv_header(&mut self) -> io::Result<Option<DataFrameHeader>> {
            debug_assert!(self.pending.is_none(), "previous frame not consumed");
            let mut rec = [0u8; DATA_FRAME_HEADER_LEN];
            let got = {
                let mut s = self.notify.lock();
                read_exact_or_eof(&mut *s, &mut rec)?
            };
            if !got {
                return Ok(None);
            }
            let hdr = DataFrameHeader::decode(&rec)
                .map_err(|e| proto_err(format!("bad shm notify record: {e:?}")))?;
            self.pending = Some(hdr);
            Ok(Some(hdr))
        }

        fn recv_wire(&mut self, buf: &mut [u8]) -> io::Result<()> {
            let hdr = self.pending.take().expect("recv_wire without a header");
            self.win.check_published(&hdr)?;
            // The caller's buffer is the slot's external SlotBuf view —
            // the same physical bytes the source stored. Nothing to
            // move; the check above was the whole place stage.
            debug_assert_eq!(
                buf.as_ptr() as usize,
                unsafe { wire_ptr(self.win.base, self.win.offsets[hdr.slot as usize]) } as usize,
                "shm sink buffer must alias the shared slot"
            );
            debug_assert_eq!(buf.len(), hdr.wire_len());
            Ok(())
        }

        fn discard_wire(&mut self, _wire_len: usize) -> io::Result<()> {
            // Duplicate notify: the payload never crossed the stream, so
            // there is nothing to drain — dropping the record is the
            // whole discard.
            self.pending.take().expect("discard_wire without a header");
            Ok(())
        }
    }

    /// Wrap one assembled shm connection pair plus a window into a
    /// [`SinkTransport`]: `channels` notify readers over the one
    /// stream, control framing unchanged, credits re-arming the window
    /// on their way out.
    pub(crate) fn sink_transport_for_window(
        ctrl: UnixStream,
        notify: UnixStream,
        channels: usize,
        win: Arc<SnkWindow>,
    ) -> io::Result<SinkTransport> {
        let ctrl_wr = ctrl.try_clone()?;
        let handles = Arc::new(vec![ctrl.try_clone()?, notify.try_clone()?]);
        let notify = Arc::new(Mutex::new(notify));
        let data: Vec<Box<dyn DataRx>> = (0..channels)
            .map(|_| {
                Box::new(ShmDataRx {
                    notify: Arc::clone(&notify),
                    win: Arc::clone(&win),
                    pending: None,
                }) as Box<dyn DataRx>
            })
            .collect();
        Ok(SinkTransport {
            ctrl_tx: Arc::new(ShmCtrlTx {
                inner: net::NetCtrlTx(Mutex::new(ctrl_wr)),
                win,
            }),
            ctrl_rx: Box::new(net::NetCtrlRx::new(ctrl)),
            data,
            abort: Arc::new(move || shutdown_all_unix(&handles, Shutdown::Both)),
        })
    }

    // -----------------------------------------------------------------
    // Session assembly (unix-socket mirror of net::StreamAssembler)
    // -----------------------------------------------------------------

    /// One shm session's connection pair, hellos consumed: the control
    /// stream (which announced the channel count) and the notify stream.
    pub struct ShmSessionStreams {
        pub(crate) ctrl: UnixStream,
        pub(crate) notify: UnixStream,
        pub(crate) token: u64,
        pub(crate) channels: u16,
    }

    struct ShmPendingSet {
        ctrl: Option<(UnixStream, u16)>,
        notify: Option<UnixStream>,
        since: Instant,
    }

    type Hello = (u8, u16, u64);

    struct ShmHelloQueue {
        ready: Mutex<Vec<(UnixStream, Hello)>>,
        outstanding: AtomicUsize,
    }

    const MAX_PENDING_HELLOS: usize = 256;

    /// Groups accepted unix connections into (control, notify) pairs by
    /// hello token, with the same tolerance rules as the TCP
    /// [`net::StreamAssembler`]: hellos read on short-lived helper
    /// threads under [`HELLO_TIMEOUT`], protocol violations drop the
    /// offending connection alone, partial pairs are swept after
    /// [`STALE_SESSION_TIMEOUT`].
    pub(crate) struct ShmAssembler {
        pending: HashMap<u64, ShmPendingSet>,
        completed: Vec<ShmSessionStreams>,
        hellos: Arc<ShmHelloQueue>,
    }

    impl ShmAssembler {
        pub(crate) fn new() -> ShmAssembler {
            ShmAssembler {
                pending: HashMap::new(),
                completed: Vec::new(),
                hellos: Arc::new(ShmHelloQueue {
                    ready: Mutex::new(Vec::new()),
                    outstanding: AtomicUsize::new(0),
                }),
            }
        }

        pub(crate) fn offer(&mut self, s: UnixStream) {
            if s.set_nonblocking(false).is_err() {
                return;
            }
            if self.hellos.outstanding.load(Ordering::Acquire) >= MAX_PENDING_HELLOS {
                return;
            }
            self.hellos.outstanding.fetch_add(1, Ordering::AcqRel);
            let q = Arc::clone(&self.hellos);
            let spawned = std::thread::Builder::new()
                .name("rftp-shm-hello".into())
                .spawn(move || {
                    let mut s = s;
                    let _ = s.set_read_timeout(Some(HELLO_TIMEOUT));
                    let hello = net::read_hello(&mut s);
                    let _ = s.set_read_timeout(None);
                    if let Ok(h) = hello {
                        q.ready.lock().push((s, h));
                    }
                    q.outstanding.fetch_sub(1, Ordering::AcqRel);
                })
                .is_ok();
            if !spawned {
                self.hellos.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
        }

        pub(crate) fn hellos_pending(&self) -> bool {
            self.hellos.outstanding.load(Ordering::Acquire) > 0
                || !self.hellos.ready.lock().is_empty()
        }

        pub(crate) fn poll(&mut self) -> Option<ShmSessionStreams> {
            let batch: Vec<(UnixStream, Hello)> = {
                let mut ready = self.hellos.ready.lock();
                ready.drain(..).collect()
            };
            for (s, (kind, index, token)) in batch {
                self.assemble(s, kind, index, token);
            }
            self.completed.pop()
        }

        fn assemble(&mut self, s: UnixStream, kind: u8, index: u16, token: u64) {
            let set = self.pending.entry(token).or_insert_with(|| ShmPendingSet {
                ctrl: None,
                notify: None,
                since: Instant::now(),
            });
            match kind {
                KIND_CTRL => {
                    if set.ctrl.is_some() || index == 0 {
                        return; // duplicate control or zero channels: drop this conn
                    }
                    set.ctrl = Some((s, index));
                }
                KIND_DATA => {
                    // The notify stream is data index 0; an shm session
                    // has exactly one.
                    if set.notify.is_some() || index != 0 {
                        return;
                    }
                    set.notify = Some(s);
                }
                _ => return,
            }
            if set.ctrl.is_some() && set.notify.is_some() {
                let set = self.pending.remove(&token).unwrap();
                let (ctrl, channels) = set.ctrl.unwrap();
                self.completed.push(ShmSessionStreams {
                    ctrl,
                    notify: set.notify.unwrap(),
                    token,
                    channels,
                });
            }
        }

        pub(crate) fn sweep_stale(&mut self, now: Instant) {
            self.pending
                .retain(|_, set| now.duration_since(set.since) < STALE_SESSION_TIMEOUT);
        }
    }

    /// The standalone shm sink's accept socket: a unix listener at a
    /// filesystem path. The path is unlinked on drop (and any stale
    /// previous path is unlinked at bind), so a crashed sink's leftover
    /// socket file does not shadow the next run.
    pub struct ShmListener {
        listener: UnixListener,
        path: PathBuf,
    }

    impl ShmListener {
        pub fn bind(path: impl AsRef<Path>) -> io::Result<ShmListener> {
            let path = path.as_ref().to_path_buf();
            if path.exists() {
                std::fs::remove_file(&path)?;
            }
            let listener = UnixListener::bind(&path)?;
            // Owner-only: connecting (= requesting admission) is
            // limited to the sink's own uid. The boundary between
            // sessions is the per-session window; this bounds who can
            // open a session at all.
            std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o600))?;
            Ok(ShmListener { listener, path })
        }

        pub fn path(&self) -> &Path {
            &self.path
        }

        fn accept_streams(&self) -> io::Result<ShmSessionStreams> {
            let mut asm = ShmAssembler::new();
            loop {
                let (s, _) = self.listener.accept()?;
                asm.offer(s);
                loop {
                    if let Some(done) = asm.poll() {
                        return Ok(done);
                    }
                    if !asm.hellos_pending() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                asm.sweep_stale(Instant::now());
            }
        }

        /// Accept one source's (control, notify) pair and read the
        /// opening `SessionRequest` (bounded — a silent source times
        /// out rather than parking the sink). Pass both to
        /// [`run_shm_sink`].
        pub fn accept_session(&self) -> io::Result<(ShmSessionStreams, CtrlMsg)> {
            let mut sess = self.accept_streams()?;
            sess.ctrl.set_read_timeout(Some(HELLO_TIMEOUT))?;
            let first = read_one_ctrl_frame(&mut sess.ctrl)?;
            sess.ctrl.set_read_timeout(None)?;
            Ok((sess, first))
        }
    }

    impl Drop for ShmListener {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    // -----------------------------------------------------------------
    // Per-session window
    // -----------------------------------------------------------------

    /// A freshly-created memfd window for exactly one session: its own
    /// fd, its own mapping, offsets `0, stride, 2·stride, …`. This is
    /// the isolation boundary of the transport — a session's peer maps
    /// *this* window and nothing else, so one tenant can never read or
    /// scribble another tenant's in-flight payloads (the daemon hands
    /// each admitted shm session one of these; the lease it holds in
    /// the shared arena is accounting, not memory).
    pub(crate) struct SessionWindow {
        fd: OwnedFd,
        map: Mapping,
        desc: WindowDesc,
    }

    impl SessionWindow {
        pub(crate) fn create(slots: usize, block_cap: usize) -> io::Result<SessionWindow> {
            let stride = SlotBuf::stride(block_cap);
            let window_len = stride
                .checked_mul(slots)
                .ok_or_else(|| proto_err("shm window size overflow"))?;
            let fd = memfd_create(window_len)?;
            let map = Mapping::map_shared(fd.as_raw_fd(), window_len)?;
            let desc = WindowDesc {
                stride: stride as u64,
                window_len: window_len as u64,
                block_cap: block_cap as u32,
                offsets: (0..slots).map(|i| (i * stride) as u64).collect(),
            };
            Ok(SessionWindow { fd, map, desc })
        }

        /// Ship the descriptor preamble with the window fd attached.
        pub(crate) fn send_descriptor(&self, ctrl: &UnixStream) -> io::Result<()> {
            send_with_fd(ctrl, &self.desc.encode(), self.fd.as_raw_fd())
        }

        /// External slot views over the window — the sink pipeline's
        /// buffers alias the very bytes the source stores.
        pub(crate) fn slot_bufs(&self) -> Vec<Mutex<SlotBuf>> {
            let stride = self.desc.stride as usize;
            let cap = self.desc.block_cap as usize;
            (0..self.desc.offsets.len())
                .map(|i| {
                    Mutex::new(unsafe { SlotBuf::external(self.map.base().add(i * stride), cap) })
                })
                .collect()
        }

        /// Consume into the sink window (keeps fd + mapping alive for
        /// the session; call after [`SessionWindow::slot_bufs`] — the
        /// mapping's base address does not move).
        pub(crate) fn into_sink_window(self) -> SnkWindow {
            let block_cap = self.desc.block_cap;
            SnkWindow::owned(self.map, self.fd, self.desc.offsets, block_cap)
        }
    }

    /// Run the sink half of an shm session accepted by [`ShmListener`]:
    /// create the memfd window sized to this session's pool, ship the
    /// descriptor + fd, lay external slot buffers over the window, and
    /// run the standard sink pipeline — whose "placement" is now the
    /// publication check alone.
    pub fn run_shm_sink(
        cfg: &LiveConfig,
        sess: ShmSessionStreams,
        first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        let sw = SessionWindow::create(cfg.pool_blocks as usize, cfg.block_size)?;
        sw.send_descriptor(&sess.ctrl)?;
        let snk_bufs = sw.slot_bufs();
        let win = Arc::new(sw.into_sink_window());
        let view: Vec<&Mutex<SlotBuf>> = snk_bufs.iter().collect();
        let t = sink_transport_for_window(sess.ctrl, sess.notify, cfg.channels, win)?;
        run_sink_session(cfg, t, first_ctrl, &view, None)
    }

    // -----------------------------------------------------------------
    // Capability probe
    // -----------------------------------------------------------------

    /// Whether this host can run the shm transport: memfd creation,
    /// `SCM_RIGHTS` passing over a unix socketpair, and a shared
    /// mapping of the received fd that actually aliases the original.
    /// Mirrors `uring_supported`'s live-probe approach — run the real
    /// mechanism once rather than sniffing kernel versions.
    pub fn shm_supported() -> bool {
        fn run() -> io::Result<bool> {
            let fd = memfd_create(STORE_ALIGN)?;
            let m1 = Mapping::map_shared(fd.as_raw_fd(), STORE_ALIGN)?;
            unsafe { m1.base().write(0xA5) };
            let (a, b) = UnixStream::pair()?;
            send_with_fd(&a, &[0x51], fd.as_raw_fd())?;
            let mut byte = [0u8; 1];
            let mut passed: Option<OwnedFd> = None;
            read_exact_with_fd(&b, &mut byte, &mut passed)?;
            let passed = match passed {
                Some(f) => f,
                None => return Ok(false),
            };
            let m2 = Mapping::map_shared(passed.as_raw_fd(), STORE_ALIGN)?;
            unsafe {
                if m2.base().read() != 0xA5 {
                    return Ok(false);
                }
                m2.base().add(1).write(0x5A);
                Ok(byte[0] == 0x51 && m1.base().add(1).read() == 0x5A)
            }
        }
        run().unwrap_or(false)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicU32;

        fn temp_sock(tag: &str) -> PathBuf {
            static N: AtomicU32 = AtomicU32::new(0);
            let n = N.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("rftp-shm-{tag}-{}-{n}.sock", std::process::id()))
        }

        /// The probe must succeed on any Linux this suite runs on —
        /// memfd + SCM_RIGHTS predate every supported kernel, and the
        /// CI shm-smoke job assumes it.
        #[test]
        fn probe_reports_shm_support() {
            assert!(shm_supported());
        }

        #[test]
        fn descriptor_roundtrips_and_validates() {
            let stride = SlotBuf::stride(64 * 1024) as u64;
            let desc = WindowDesc {
                stride,
                window_len: stride * 4,
                block_cap: 64 * 1024,
                offsets: (0..4).map(|i| i * stride).collect(),
            };
            desc.validate().unwrap();
            let bytes = desc.encode();
            assert_eq!(&bytes[..2], &DESC_MAGIC.to_be_bytes());
            let head: [u8; DESC_HEAD_LEN - 2] = bytes[2..DESC_HEAD_LEN].try_into().unwrap();
            let (slots, s, wl, cap) = decode_desc_head(&head).unwrap();
            assert_eq!((slots, s, wl, cap), (4, stride, stride * 4, 64 * 1024));

            // Misaligned stride, slot past the window end, cap beyond
            // the slot's payload room: each refused before any mapping.
            let mut bad = desc.clone();
            bad.stride += 1;
            assert!(bad.validate().is_err());
            let mut bad = desc.clone();
            bad.offsets[3] = bad.window_len;
            assert!(bad.validate().is_err());
            let mut bad = desc.clone();
            bad.block_cap = (bad.stride - STORE_ALIGN as u64 + 1) as u32;
            assert!(bad.validate().is_err());

            // Aliased offsets: two credited slots sharing memory would
            // let concurrent places tear each other — refused as a
            // typed descriptor error, both exact duplicates and partial
            // (sub-stride) overlaps.
            let mut bad = desc.clone();
            bad.offsets[2] = bad.offsets[1];
            let err = bad.validate().unwrap_err();
            assert!(err.to_string().contains("overlap"), "{err}");
            let mut bad = desc.clone();
            bad.offsets[2] = bad.offsets[1] + STORE_ALIGN as u64;
            assert!(bad.validate().is_err());
        }

        /// An fd whose size cannot be read (here: a socket) must be a
        /// typed error — falling through to mmap would silently lose
        /// the short-fd SIGBUS guard.
        #[test]
        fn unseekable_window_fd_is_a_typed_error() {
            let (a, _b) = UnixStream::pair().unwrap();
            let err = match Mapping::map_shared(a.as_raw_fd(), 4096) {
                Ok(_) => panic!("mapping an unseekable fd must fail"),
                Err(e) => e,
            };
            assert!(err.to_string().contains("size unreadable"), "{err}");
        }

        /// The per-slot generation protocol end to end on a real window:
        /// grant → fresh place → duplicate re-notify without touching
        /// memory → stale drop → write without grant is a typed error,
        /// and a bogus slot index is a typed error (never wild memory).
        #[test]
        fn place_follows_grant_epochs() {
            let block = 4 * 1024usize;
            let stride = SlotBuf::stride(block);
            let len = stride * 2;
            let fd = memfd_create(len).unwrap();
            let map = Mapping::map_shared(fd.as_raw_fd(), len).unwrap();
            let desc = WindowDesc {
                stride: stride as u64,
                window_len: len as u64,
                block_cap: block as u32,
                offsets: vec![0, stride as u64],
            };
            let snk_map = Mapping::map_shared(fd.as_raw_fd(), len).unwrap();
            let snk = SnkWindow::owned(snk_map, fd, desc.offsets.clone(), block as u32);
            let src = SrcWindow::new(map, &desc);

            let hdr = |seq: u32, slot: u32, len: u32| DataFrameHeader {
                session: 1,
                seq,
                slot,
                len,
            };
            let wire = |h: &DataFrameHeader| vec![0xC3u8; h.wire_len()];

            // Slot outside the table: typed error, not a wild write.
            let bad = hdr(0, 7, 16);
            assert!(src.place(&bad, &wire(&bad)).is_err());

            // Writing before any grant: slots start epoch-0 GRANTED in a
            // fresh window, so emulate a used slot by granting and
            // placing once first.
            snk.grant(0);
            let h0 = hdr(0, 0, 16);
            assert_eq!(src.place(&h0, &wire(&h0)).unwrap(), PlaceOutcome::Placed);
            snk.check_published(&h0).unwrap();

            // Watchdog duplicate of the same seq: renotify, no rewrite.
            assert_eq!(src.place(&h0, &wire(&h0)).unwrap(), PlaceOutcome::Renotify);
            snk.check_published(&h0).unwrap();

            // A newer block without a fresh grant is a protocol fault.
            let h2 = hdr(2, 0, 16);
            assert!(src.place(&h2, &wire(&h2)).is_err());

            // Re-grant, place the newer block, then a stale resend of
            // the *old* block must be dropped — this is exactly the
            // credits-overtake-acks race that could otherwise tear the
            // slot the sink is verifying.
            snk.grant(0);
            assert_eq!(src.place(&h2, &wire(&h2)).unwrap(), PlaceOutcome::Placed);
            assert_eq!(src.place(&h0, &wire(&h0)).unwrap(), PlaceOutcome::Stale);
            snk.check_published(&h2).unwrap();

            // The sink side refuses an epoch mismatch: grant again (the
            // word moves on) and the old notify must now fail the check.
            snk.grant(0);
            assert!(snk.check_published(&h2).is_err());
        }

        /// A descriptor whose fd is shorter than the window it claims
        /// must produce a typed error at map time — never a mapping
        /// that SIGBUSes on first write (the "sink crashed mid-setup"
        /// ladder rung).
        #[test]
        fn short_window_fd_is_a_typed_error_not_a_sigbus() {
            let (a, b) = UnixStream::pair().unwrap();
            let stride = SlotBuf::stride(64 * 1024) as u64;
            let desc = WindowDesc {
                stride,
                window_len: stride * 16,
                block_cap: 64 * 1024,
                offsets: (0..16).map(|i| i * stride).collect(),
            };
            // The fd backs one page, not the claimed 16 strides.
            let short_fd = memfd_create(4096).unwrap();
            send_with_fd(&a, &desc.encode(), short_fd.as_raw_fd()).unwrap();
            let shared = Arc::new(ShmSourceState {
                notify: Mutex::new(a.try_clone().unwrap()),
                window: OnceLock::new(),
            });
            let mut rx = ShmCtrlRx {
                stream: b,
                dec: FrameDecoder::new(),
                buf: vec![0u8; 4096],
                shared: Arc::clone(&shared),
                desc_done: false,
            };
            let err = rx.recv().unwrap_err();
            assert!(
                err.to_string().contains("refusing a mapping"),
                "want the typed map guard, got: {err}"
            );
            assert!(shared.window.get().is_none());
        }

        /// A control stream that opens with an ordinary frame instead of
        /// the descriptor (daemon busy/reject path) must flow through
        /// frame decoding untouched.
        #[test]
        fn rejection_frame_instead_of_descriptor_decodes_normally() {
            let (a, b) = UnixStream::pair().unwrap();
            let shared = Arc::new(ShmSourceState {
                notify: Mutex::new(a.try_clone().unwrap()),
                window: OnceLock::new(),
            });
            let mut rx = ShmCtrlRx {
                stream: b,
                dec: FrameDecoder::new(),
                buf: vec![0u8; 4096],
                shared,
                desc_done: false,
            };
            let tx = net::NetCtrlTx(Mutex::new(a));
            let busy = CtrlMsg::SessionBusy {
                session: 1,
                retry_after_ms: 50,
            };
            tx.send(&busy).unwrap();
            assert_eq!(rx.recv().unwrap(), Some(busy));
        }

        /// Full shm↔shm loopback transfer: pattern data, checksum
        /// verified at the sink, zero transport threads either side —
        /// and the place stage must be fence-cheap, far under the
        /// copying backends.
        #[test]
        fn shm_pattern_transfer_loopback() {
            let cfg = LiveConfig::new(64 * 1024, 4, 8 << 20);
            let path = temp_sock("loop");
            let listener = ShmListener::bind(&path).unwrap();
            let src_cfg = cfg.clone();
            let src_path = path.clone();
            let src = std::thread::spawn(move || {
                let t = connect_source_shm(&src_path, src_cfg.channels)?;
                crate::split::run_split_source(&src_cfg, t)
            });
            let (sess, first) = listener.accept_session().unwrap();
            assert_eq!(sess.channels as usize, cfg.channels);
            let snk = run_shm_sink(&cfg, sess, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0, "output must be byte-identical");
            assert_eq!(src.transport_threads, 0, "source sends are stores");
            assert!(
                snk.stages.place_ns < 2_000.0,
                "zero-copy place should be fence-cheap, got {} ns/blk",
                snk.stages.place_ns
            );
        }

        /// Retransmits under fault injection must never tear a slot the
        /// sink verified: the seq rule turns duplicates into re-notifies
        /// and stale resends into drops, so the transfer still lands
        /// byte-identical.
        #[test]
        fn fault_injected_retransmits_never_tear_slots() {
            let cfg = LiveConfig::new(16 * 1024, 4, 4 << 20);
            let path = temp_sock("fault");
            let listener = ShmListener::bind(&path).unwrap();
            let mut src_cfg = cfg.clone();
            src_cfg.fault_drop_p = 0.2;
            src_cfg.retx_timeout = Duration::from_millis(25);
            let src_path = path.clone();
            let src = std::thread::spawn(move || {
                let t = connect_source_shm(&src_path, src_cfg.channels)?;
                crate::split::run_split_source(&src_cfg, t)
            });
            let (sess, first) = listener.accept_session().unwrap();
            let snk = run_shm_sink(&cfg, sess, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0, "no torn slots");
            assert!(src.retransmits > 0, "fault injector must have fired");
        }

        /// The different-host rung of the failure ladder: no unix socket
        /// at the path (that is what "other host" looks like locally),
        /// so the dial falls back to TCP — typed, visible, and the
        /// transfer still completes.
        #[test]
        fn no_shm_endpoint_falls_back_to_tcp() {
            let cfg = LiveConfig::new(16 * 1024, 2, 1 << 20);
            let listener = crate::net::NetListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let bogus = temp_sock("absent");
            let src_cfg = cfg.clone();
            let src = std::thread::spawn(move || {
                let (t, used_shm) = connect_source_shm_or_tcp(&bogus, addr, src_cfg.channels, 0)?;
                assert!(!used_shm, "fallback must report the downgrade");
                crate::split::run_split_source(&src_cfg, t)
            });
            let (t, first) = listener.accept_session(0).unwrap();
            let snk = crate::split::run_split_sink(&cfg, t, Some(first)).unwrap();
            let src = src.join().unwrap().unwrap();
            assert_eq!(snk.blocks, cfg.total_blocks());
            assert_eq!(snk.checksum_failures, 0);
            assert_eq!(src.blocks, cfg.total_blocks());
        }
    }
}

#[cfg(target_os = "linux")]
pub use imp::{
    connect_source_shm, connect_source_shm_or_tcp, run_shm_sink, shm_supported, ShmListener,
    ShmSessionStreams,
};
#[cfg(target_os = "linux")]
pub(crate) use imp::{sink_transport_for_window, SessionWindow, ShmAssembler};

// ---------------------------------------------------------------------------
// Stubs for unsupported platforms
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
mod stub {
    use crate::transport::SourceTransport;
    use crate::{LiveConfig, LiveReport};
    use rftp_core::wire::CtrlMsg;
    use std::io;
    use std::path::Path;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "shm transport requires Linux (memfd + SCM_RIGHTS)",
        )
    }

    pub fn shm_supported() -> bool {
        false
    }

    pub fn connect_source_shm(
        _path: impl AsRef<Path>,
        _channels: usize,
    ) -> io::Result<SourceTransport> {
        Err(unsupported())
    }

    /// Off Linux the ladder has one rung: straight to TCP.
    pub fn connect_source_shm_or_tcp(
        _shm_path: impl AsRef<Path>,
        tcp_addr: impl std::net::ToSocketAddrs + Copy,
        channels: usize,
        sockbuf: usize,
    ) -> io::Result<(SourceTransport, bool)> {
        Ok((
            crate::net::connect_source(tcp_addr, channels, sockbuf)?,
            false,
        ))
    }

    pub struct ShmSessionStreams;

    pub struct ShmListener;

    impl ShmListener {
        pub fn bind(_path: impl AsRef<Path>) -> io::Result<ShmListener> {
            Err(unsupported())
        }

        pub fn accept_session(&self) -> io::Result<(ShmSessionStreams, CtrlMsg)> {
            Err(unsupported())
        }
    }

    pub fn run_shm_sink(
        _cfg: &LiveConfig,
        _sess: ShmSessionStreams,
        _first_ctrl: Option<CtrlMsg>,
    ) -> io::Result<LiveReport> {
        Err(unsupported())
    }
}

#[cfg(not(target_os = "linux"))]
pub use stub::{
    connect_source_shm, connect_source_shm_or_tcp, run_shm_sink, shm_supported, ShmListener,
    ShmSessionStreams,
};
