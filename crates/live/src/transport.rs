//! Pluggable transport under the split (two-endpoint) pipeline.
//!
//! The split pipeline ([`crate::split`]) runs the source and sink halves
//! of a transfer as independent endpoints that talk *only* through this
//! layer: one control link carrying length-prefixed Fig. 7(a) frames in
//! both directions, plus N data links — one per parallel data channel —
//! carrying bulk frames ([`DataFrameHeader`] + wire image) one way,
//! source to sink. The layer has two backends:
//!
//! * **channels** ([`channel_transport`]) — in-process crossbeam
//!   channels, the loopback of the suite. Control rides real encoded
//!   frame bytes; data frames copy the wire image once at send (the
//!   channel *is* the wire). Used to test the split pipeline without
//!   sockets, and as the latency floor the TCP backend is compared to.
//! * **TCP** ([`crate::net`]) — real stream sockets, one per link, so
//!   the two halves can run as separate OS processes on separate hosts.
//!
//! Send sides are `&self` (internally synchronized): the dispatcher and
//! the retransmit watchdog share each data link, and several source
//! threads share the control link. Receive sides are `&mut self` —
//! exactly one thread drains each link.

use crate::store::SlotBuf;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rftp_core::wire::{encode_stream_frame, CtrlMsg, DataFrameHeader, FrameDecoder};
use rftp_core::{CTRL_SLOT_LEN, FRAME_PREFIX_LEN};
use std::io;
use std::sync::Arc;

/// The pinned block pool as a transport sees it: slot index → locked
/// slot buffer, shared between the pipeline and any in-flight sends.
pub type BufPool = Arc<Vec<Mutex<SlotBuf>>>;

/// The pool-registration hook of a [`SourceTransport`].
pub type RegisterFn = Box<dyn Fn(&BufPool) -> io::Result<()> + Send>;

/// Sending side of the control link. Implementations serialize whole
/// frames internally — a frame from one thread never interleaves with
/// another's.
pub trait CtrlTx: Send + Sync {
    fn send(&self, msg: &CtrlMsg) -> io::Result<()>;
}

/// Receiving side of the control link. `Ok(None)` is clean end-of-stream
/// (the peer closed at a frame boundary); a torn frame is an error.
pub trait CtrlRx: Send {
    fn recv(&mut self) -> io::Result<Option<CtrlMsg>>;
}

/// Sending side of one data link: ships one block as a frame header plus
/// the block's wire image (payload header + payload), taken directly
/// from the pinned source block — implementations must not buffer the
/// payload beyond the call (vectored write, or a copy that completes
/// before returning), because the block is reused once its ack retires it.
pub trait DataTx: Send + Sync {
    fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()>;

    /// Ship one block straight from its pinned pool slot. The default
    /// locks the slot and sends its wire image synchronously; a
    /// completion-based backend (io_uring) overrides this to *queue* a
    /// zero-copy send referencing the registered buffer instead — legal
    /// because the block stays pinned until its ack retires it, so the
    /// kernel always reads stable memory, and a retransmit rewrites
    /// byte-identical contents.
    fn send_block(
        &self,
        hdr: DataFrameHeader,
        bufs: &[Mutex<SlotBuf>],
        block: u32,
    ) -> io::Result<()> {
        let buf = bufs[block as usize].lock();
        self.send(hdr, &buf[..hdr.wire_len()])
    }

    /// Submit everything [`DataTx::send_block`] queued since the last
    /// kick — called once per dispatcher drain, so a completion-based
    /// backend pays one kernel crossing per *batch* of blocks (the
    /// doorbell). Synchronous backends already sent; for them this is a
    /// no-op.
    fn kick(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Receiving side of one data link. Split in two so placement is
/// zero-copy: [`DataRx::recv_header`] yields the frame header naming the
/// credited slot, then exactly one of [`DataRx::recv_wire`] (read the
/// wire image straight into that slot's buffer) or
/// [`DataRx::discard_wire`] (duplicate arrival — consume the bytes
/// without placing them) must follow.
pub trait DataRx: Send {
    /// Next frame's header; `Ok(None)` at clean end-of-stream.
    fn recv_header(&mut self) -> io::Result<Option<DataFrameHeader>>;
    /// Read the frame's wire image into `buf` (exactly `hdr.wire_len()`
    /// bytes).
    fn recv_wire(&mut self, buf: &mut [u8]) -> io::Result<()>;
    /// Consume and drop the frame's wire image.
    fn discard_wire(&mut self, wire_len: usize) -> io::Result<()>;
}

/// Ring-level counters a completion-based (io_uring) backend reports
/// alongside its [`crate::pipeline::LiveReport`] — the syscall shape the
/// backend exists to improve, recorded instead of eyeballed. Stream
/// backends report `None`; on the shared daemon driver the counters are
/// ring totals across every session the driver served.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UringStats {
    /// `io_uring_enter` calls on the sink/source ring.
    pub enters: u64,
    /// CQEs reaped. CQEs-per-block is the per-block kernel cost the
    /// multishot receive path collapses (~2 → ~1).
    pub cqes: u64,
    /// Whether the multishot + provided-buffer-ring receive path was
    /// active (false = the header-first `READ_FIXED` fallback ran).
    pub multishot: bool,
    /// Times a multishot receive terminated (`IORING_CQE_F_MORE`
    /// cleared, `ECANCELED`, buffer exhaustion) and was re-armed.
    pub multishot_rearms: u64,
    /// `ENOBUFS` completions: the provided-buffer ring ran dry and a
    /// link parked until a buffer was recycled.
    pub pbuf_exhausted: u64,
    /// `IORING_REGISTER_BUFFERS` calls on this ring. A daemon's shared
    /// ring registers the whole arena exactly once at startup; this
    /// staying at 1 across admissions is a regression guard against
    /// per-session re-registration.
    pub registrations: u64,
}

/// The source half's endpoints. `data` is shared (`Arc`) because the
/// dispatcher and the retransmit watchdog both send on the data links.
pub struct SourceTransport {
    pub ctrl_tx: Arc<dyn CtrlTx>,
    pub ctrl_rx: Box<dyn CtrlRx>,
    pub data: Arc<Vec<Box<dyn DataTx>>>,
    /// Hand the pinned source block pool to the transport before the
    /// transfer starts. A completion-based backend registers the slots
    /// as fixed buffers (the MR-registration analogue — the kernel pins
    /// and maps them once instead of per operation) so
    /// [`DataTx::send_block`] can reference them by index; stream
    /// backends ignore it.
    pub register: RegisterFn,
    /// Threads this transport runs for the data path beyond the
    /// pipeline's own (0 for synchronous backends — the dispatcher's
    /// send *is* the wire write; 1 for a completion-based backend's
    /// ring reaper). Reported so the O(channels) → O(1) claim is
    /// checkable from a bench run.
    pub transport_threads: usize,
    /// Half-close the source→sink direction of every link (control and
    /// data): the sink's readers see clean end-of-stream, while the
    /// sink→source direction stays open for trailing credits. Called
    /// once, after `DatasetComplete` is sent.
    pub shutdown_write: Box<dyn Fn() + Send>,
    /// Tear every link down (error paths only): any peer or local thread
    /// blocked on a link errors out instead of hanging. Shared so the
    /// first failing thread can release all the others.
    pub abort: Arc<dyn Fn() + Send + Sync>,
}

/// The sink half's endpoints.
pub struct SinkTransport {
    pub ctrl_tx: Arc<dyn CtrlTx>,
    pub ctrl_rx: Box<dyn CtrlRx>,
    pub data: Vec<Box<dyn DataRx>>,
    /// Tear every link down (error paths only — the normal teardown is
    /// the source's write shutdown reaching end-of-stream). Shared so
    /// any failing sink thread can release the blocked readers.
    pub abort: Arc<dyn Fn() + Send + Sync>,
}

// ---------------------------------------------------------------------------
// Channel backend
// ---------------------------------------------------------------------------

/// One encoded control frame on a channel: the length-prefixed stream
/// bytes, exactly as a byte-stream transport would carry them.
type CtrlBytes = Vec<u8>;

/// The closing handle for a [`Closable`]: `take()`-ing the sender out
/// drops it, and the receiving side sees end-of-stream once every
/// sender is gone.
type Closer<T> = Arc<Mutex<Option<Sender<T>>>>;

/// A `Sender` whose hangup can be triggered from the shutdown hook via
/// its [`Closer`].
struct Closable<T>(Closer<T>);

impl<T> Closable<T> {
    fn new(tx: Sender<T>) -> (Closable<T>, Closer<T>) {
        let inner = Arc::new(Mutex::new(Some(tx)));
        (Closable(inner.clone()), inner)
    }

    fn send(&self, value: T) -> io::Result<()> {
        let guard = self.0.lock();
        let tx = guard
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "link closed"))?;
        tx.send(value)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))
    }
}

struct ChanCtrlTx(Closable<CtrlBytes>);

impl CtrlTx for ChanCtrlTx {
    fn send(&self, msg: &CtrlMsg) -> io::Result<()> {
        let mut buf = [0u8; FRAME_PREFIX_LEN + CTRL_SLOT_LEN];
        let n = encode_stream_frame(msg, &mut buf);
        self.0.send(buf[..n].to_vec())
    }
}

struct ChanCtrlRx {
    rx: Receiver<CtrlBytes>,
    dec: FrameDecoder,
}

impl CtrlRx for ChanCtrlRx {
    fn recv(&mut self) -> io::Result<Option<CtrlMsg>> {
        loop {
            if let Some(msg) = self
                .dec
                .next_frame()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            {
                return Ok(Some(msg));
            }
            match self.rx.recv() {
                Ok(bytes) => self.dec.push(&bytes),
                Err(_) => {
                    return if self.dec.pending_bytes() == 0 {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "control link closed mid-frame",
                        ))
                    };
                }
            }
        }
    }
}

struct ChanDataTx(Closable<(DataFrameHeader, Box<[u8]>)>);

impl DataTx for ChanDataTx {
    fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
        debug_assert_eq!(wire.len(), hdr.wire_len());
        self.0.send((hdr, wire.into()))
    }
}

struct ChanDataRx {
    rx: Receiver<(DataFrameHeader, Box<[u8]>)>,
    pending: Option<Box<[u8]>>,
}

impl DataRx for ChanDataRx {
    fn recv_header(&mut self) -> io::Result<Option<DataFrameHeader>> {
        debug_assert!(self.pending.is_none(), "previous frame not consumed");
        match self.rx.recv() {
            Ok((hdr, wire)) => {
                self.pending = Some(wire);
                Ok(Some(hdr))
            }
            Err(_) => Ok(None),
        }
    }

    fn recv_wire(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let wire = self.pending.take().expect("recv_wire without a header");
        buf[..wire.len()].copy_from_slice(&wire);
        Ok(())
    }

    fn discard_wire(&mut self, _wire_len: usize) -> io::Result<()> {
        self.pending.take().expect("discard_wire without a header");
        Ok(())
    }
}

/// Build a connected in-process transport pair: `channels` data links of
/// `depth` frames each, control links deep enough that coalesced control
/// traffic never blocks on the link itself.
pub fn channel_transport(channels: usize, depth: usize) -> (SourceTransport, SinkTransport) {
    let (c_s2k_tx, c_s2k_rx) = bounded::<CtrlBytes>(1024);
    let (c_k2s_tx, c_k2s_rx) = bounded::<CtrlBytes>(1024);
    let (ctrl_tx, ctrl_closer) = Closable::new(c_s2k_tx);
    let (k2s_tx, k2s_closer) = Closable::new(c_k2s_tx);
    let mut data_tx: Vec<Box<dyn DataTx>> = Vec::with_capacity(channels);
    let mut data_rx: Vec<Box<dyn DataRx>> = Vec::with_capacity(channels);
    let mut data_closers = Vec::with_capacity(channels);
    for _ in 0..channels {
        let (tx, rx) = bounded::<(DataFrameHeader, Box<[u8]>)>(depth);
        let (closable, closer) = Closable::new(tx);
        data_closers.push(closer);
        data_tx.push(Box::new(ChanDataTx(closable)));
        data_rx.push(Box::new(ChanDataRx { rx, pending: None }));
    }
    // Closing the source→sink senders is both the graceful write
    // shutdown and the source's abort: the sink reads end-of-stream
    // either way, and a channel has no half-open state to preserve.
    let close_s2k = {
        let ctrl_closer = ctrl_closer.clone();
        let data_closers = data_closers.clone();
        move || {
            ctrl_closer.lock().take();
            for c in &data_closers {
                c.lock().take();
            }
        }
    };
    let source = SourceTransport {
        ctrl_tx: Arc::new(ChanCtrlTx(ctrl_tx)),
        ctrl_rx: Box::new(ChanCtrlRx {
            rx: c_k2s_rx,
            dec: FrameDecoder::new(),
        }),
        data: Arc::new(data_tx),
        register: Box::new(|_| Ok(())),
        transport_threads: 0,
        shutdown_write: Box::new(close_s2k.clone()),
        abort: Arc::new(close_s2k),
    };
    let sink = SinkTransport {
        ctrl_tx: Arc::new(ChanCtrlTx(k2s_tx)),
        ctrl_rx: Box::new(ChanCtrlRx {
            rx: c_s2k_rx,
            dec: FrameDecoder::new(),
        }),
        data: data_rx,
        // Dropping the sink→source control sender is all a channel sink
        // can abort: the source's control reader sees end-of-stream and
        // fails the rest of the source half from there.
        abort: Arc::new(move || {
            k2s_closer.lock().take();
        }),
    };
    (source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_ctrl_roundtrip_and_eof() {
        let (src, mut snk) = channel_transport(1, 4);
        src.ctrl_tx
            .send(&CtrlMsg::MrRequest { session: 3 })
            .unwrap();
        assert_eq!(
            snk.ctrl_rx.recv().unwrap(),
            Some(CtrlMsg::MrRequest { session: 3 })
        );
        (src.shutdown_write)();
        assert_eq!(snk.ctrl_rx.recv().unwrap(), None);
        assert!(src
            .ctrl_tx
            .send(&CtrlMsg::MrRequest { session: 3 })
            .is_err());
    }

    #[test]
    fn channel_data_place_and_discard() {
        let (src, mut snk) = channel_transport(2, 4);
        let hdr = DataFrameHeader {
            session: 1,
            seq: 0,
            slot: 2,
            len: 8,
        };
        let wire: Vec<u8> = (0..hdr.wire_len() as u8).collect();
        src.data[0].send(hdr, &wire).unwrap();
        src.data[0].send(hdr, &wire).unwrap();
        let got = snk.data[0].recv_header().unwrap().unwrap();
        assert_eq!(got, hdr);
        let mut buf = vec![0u8; got.wire_len()];
        snk.data[0].recv_wire(&mut buf).unwrap();
        assert_eq!(buf, wire);
        let got = snk.data[0].recv_header().unwrap().unwrap();
        snk.data[0].discard_wire(got.wire_len()).unwrap();
        (src.shutdown_write)();
        assert!(snk.data[0].recv_header().unwrap().is_none());
        assert!(snk.data[1].recv_header().unwrap().is_none());
    }
}
