//! `rftpd` — the persistent multi-session transfer daemon.
//!
//! Where `rftp-live --listen` serves one source and exits, `rftpd`
//! binds once and serves sources until told to drain: one shared slot
//! arena partitioned across concurrent sessions, typed busy/reject
//! admission replies, weighted-fair credit grants, graceful SIGTERM
//! drain.
//!
//! ```text
//! host B$ rftpd --listen 0.0.0.0:9040 --slots 64 --max-sessions 8
//! host A$ rftp-live --connect hostB:9040 --size 1G --channels 4
//! host C$ rftp-live --connect hostB:9040 --size 4K    # concurrently
//! host B$ kill -TERM <pid>                            # drain + report
//! ```

use rftp_live::args::{flag_parse, flag_path, flag_size, flag_value};
use rftp_live::{install_sigterm_hook, Daemon, DaemonConfig, DaemonReport, DaemonTransport};
use std::time::Duration;

const HELP: &str = "rftpd: the RFTP multi-session sink daemon

USAGE: rftpd --listen <ADDR> [OPTIONS]

OPTIONS:
  --listen <ADDR>        bind address, e.g. 0.0.0.0:9040 (required)
  --transport <T>        sink backend per session: tcp (default) or uring
  --slot-cap <SIZE>      largest admissible block size; every arena slot
                         is this big (default 256K)
  --slots <N>            total slots in the shared arena (default 64)
  --session-slots <N>    pool slots leased per session, clamped down for
                         small jobs (default 16)
  --max-sessions <N>     concurrent sessions before admission replies
                         busy (default 8)
  --max-channels <N>     largest per-session channel count admission
                         accepts; more is a typed reject — each channel
                         costs a sink reader thread (default 64)
  --credit-budget <N>    global outstanding-credit budget for the
                         weighted-fair arbiter (default: --slots)
  --interactive <SIZE>   jobs up to this size count as interactive and
                         get a higher credit weight (default 4M)
  --retry-ms <N>         retry hint carried in busy replies (default 50)
  --drain-ms <N>         drain deadline: how long SIGTERM waits for
                         in-flight sessions before aborting them
                         (default 10000)
  --sockbuf <SIZE>       per-data-stream socket buffer; 0 = OS defaults
                         (default 0)
  --shm <PATH>           also accept zero-copy shared-memory sessions at
                         this unix socket path (Linux; same-host sources
                         connect with --transport shm). The socket is
                         created owner-only and every admitted session
                         gets its own memfd window, so tenants cannot
                         map each other's memory — but a session's peer
                         can always scribble its *own* window; checksums
                         detect, not prevent, that
  --dst-dir <PATH>       write session n's payload to
                         <PATH>/session-<n>.dat instead of
                         checksum-verifying
  --wan <SPEC>           emulate a WAN path on every TCP session's
                         inbound data and adapt each sink's dwell/credit
                         depth to the measured RTT. SPEC as in
                         rftp-live --wan (preset or preset,key=value).
                         Requires --transport tcp; shm sessions have no
                         socket to impair and run unshimmed
  --help                 this text

Transfer geometry (size, block, channels) is each source's to set;
rftpd learns it from every session's handshake.";

struct Args {
    listen: String,
    cfg: DaemonConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut listen: Option<String> = None;
    let mut cfg = DaemonConfig::default();
    let mut credit_budget: Option<u32> = None;
    let it = &mut std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => listen = Some(flag_value(it, "--listen")?),
            "--transport" => {
                cfg.transport = match flag_value(it, "--transport")?.as_str() {
                    "tcp" => DaemonTransport::Tcp,
                    "uring" => DaemonTransport::Uring,
                    other => return Err(format!("bad --transport {other} (tcp or uring)")),
                }
            }
            "--slot-cap" => cfg.slot_cap = flag_size(it, "--slot-cap")? as usize,
            "--slots" => cfg.arena_slots = flag_parse(it, "--slots")?,
            "--session-slots" => cfg.session_slots = flag_parse(it, "--session-slots")?,
            "--max-sessions" => cfg.max_sessions = flag_parse(it, "--max-sessions")?,
            "--max-channels" => cfg.max_channels = flag_parse(it, "--max-channels")?,
            "--credit-budget" => credit_budget = Some(flag_parse(it, "--credit-budget")?),
            "--interactive" => cfg.interactive_cutoff = flag_size(it, "--interactive")?,
            "--retry-ms" => cfg.retry_after_ms = flag_parse(it, "--retry-ms")?,
            "--drain-ms" => {
                cfg.drain_deadline = Duration::from_millis(flag_parse(it, "--drain-ms")?)
            }
            "--sockbuf" => cfg.sockbuf = flag_size(it, "--sockbuf")? as usize,
            "--shm" => cfg.shm_path = Some(flag_path(it, "--shm")?),
            "--dst-dir" => cfg.dst_dir = Some(flag_path(it, "--dst-dir")?),
            "--wan" => {
                let spec = flag_value(it, "--wan")?;
                cfg.wan =
                    Some(rftp_live::WanProfile::parse(&spec).map_err(|e| format!("--wan: {e}"))?);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg.slot_cap == 0
        || cfg.arena_slots == 0
        || cfg.session_slots == 0
        || cfg.max_sessions == 0
        || cfg.max_channels == 0
    {
        return Err("all counts must be >= 1".into());
    }
    if cfg.session_slots > cfg.arena_slots {
        return Err("--session-slots cannot exceed --slots".into());
    }
    // One outstanding credit per arena slot is the natural budget: the
    // arbiter then partitions exactly the memory the arena holds.
    cfg.credit_budget = credit_budget.unwrap_or(cfg.arena_slots);
    if cfg.credit_budget == 0 {
        return Err("--credit-budget must be >= 1".into());
    }
    let listen = listen.ok_or("missing --listen <ADDR>")?;
    if cfg.transport == DaemonTransport::Uring && !rftp_live::uring_supported() {
        return Err("--transport uring: io_uring not supported on this kernel".into());
    }
    if cfg.wan.is_some() && cfg.transport == DaemonTransport::Uring {
        return Err("--wan requires --transport tcp \
             (the uring receive path bypasses the impairment shim)"
            .into());
    }
    if cfg.shm_path.is_some() && !rftp_live::shm_supported() {
        return Err("--shm: shm transport not supported on this host".into());
    }
    Ok(Args { listen, cfg })
}

fn print_report(r: &DaemonReport) {
    println!(
        "\nrftpd: served {} sessions ({} completed, {} failed), \
         rejected {} busy / {} geometry, dropped {} pre-admission",
        r.served,
        r.completed,
        r.failed,
        r.rejected_busy,
        r.rejected_geometry,
        r.dropped_preadmission
    );
    for s in &r.sessions {
        match &s.result {
            Ok(rep) => println!(
                "  session {}: {} blocks, {:.3} GB/s, {} checksum failures, \
                 {} transport thread(s)",
                s.index,
                rep.blocks,
                rep.gbytes_per_sec,
                rep.checksum_failures,
                rep.transport_threads
            ),
            Err(e) => println!("  session {}: failed: {e}", s.index),
        }
    }
    if r.shm_sessions > 0 {
        // CI greps this line: these sessions placed payload with zero
        // receiver copies (source wrote straight into the leased slab).
        println!("  shm sessions: {} (zero receiver copies)", r.shm_sessions);
    }
    if let Some(st) = &r.uring {
        // Every admitted session's data path ran on the daemon's ONE
        // shared ring; CI greps this line to pin the thread shape.
        println!(
            "  shared uring driver: 1 thread, {} enters, {} cqes, multishot {}, \
             {} rearms, {} pbuf exhaustions, {} buffer registration(s)",
            st.enters,
            st.cqes,
            st.multishot,
            st.multishot_rearms,
            st.pbuf_exhausted,
            st.registrations
        );
    }
}

fn main() {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rftpd: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let daemon = match Daemon::bind(a.listen.as_str(), a.cfg.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("rftpd: bind {}: {e}", a.listen);
            std::process::exit(1);
        }
    };
    let addr = daemon.local_addr().expect("bound listener has an address");
    install_sigterm_hook(&daemon.handle());
    println!(
        "rftpd: listening on {addr} ({} slots x {} KB, {} max sessions{})",
        a.cfg.arena_slots,
        a.cfg.slot_cap >> 10,
        a.cfg.max_sessions,
        if a.cfg.transport == DaemonTransport::Uring {
            ", io_uring"
        } else {
            ""
        }
    );
    if let Some(p) = &a.cfg.shm_path {
        println!(
            "rftpd: shm endpoint at {} (owner-only socket, one memfd window per session)",
            p.display()
        );
    }
    match daemon.run() {
        Ok(r) => {
            print_report(&r);
            let bad = r
                .sessions
                .iter()
                .any(|s| matches!(&s.result, Ok(rep) if rep.checksum_failures > 0));
            if bad {
                eprintln!("rftpd: VERIFICATION FAILED");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("rftpd: {e}");
            std::process::exit(1);
        }
    }
}
