//! `rftp-live` — command-line front end for the native-thread pipeline.
//!
//! Runs one live transfer (real threads, real bytes, wall-clock timing)
//! and prints throughput, control-plane counts, and the per-stage cost
//! breakdown:
//!
//! ```text
//! rftp-live --size 1G --block 256K --channels 8 --loaders 4
//! rftp-live --batch 1 --fault drop=0.05       # unbatched wire + loss
//! rftp-live --help
//! ```

use rftp_live::{run_live, LiveConfig};

struct Args {
    size: u64,
    block: u64,
    channels: usize,
    loaders: usize,
    batch: usize,
    pool: u32,
    depth: usize,
    notify_imm: bool,
    fault_drop_p: f64,
}

fn parse_size(s: &str) -> Option<u64> {
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1u64 << 10),
        'M' | 'm' => (&s[..s.len() - 1], 1 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

const HELP: &str = "rftp-live: the RFTP pipeline on real OS threads

USAGE: rftp-live [OPTIONS]

OPTIONS:
  --size <SIZE>      total payload, e.g. 1G (default 256M)
  --block <SIZE>     block size, e.g. 256K (default 256K)
  --channels <N>     parallel data channels (default 4)
  --loaders <N>      source loader threads (default 2)
  --batch <N>        control entries coalesced per frame; 1 = one
                     message per block (default 16)
  --pool <N>         pool blocks per endpoint (default 32)
  --depth <N>        per-channel queue depth (default 8)
  --notify-imm       in-band arrival notification (WRITE_WITH_IMM)
  --fault drop=<P>   drop each payload with probability P (exercises
                     the retransmit path)
  --help             this text";

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        size: 256 << 20,
        block: 256 << 10,
        channels: 4,
        loaders: 2,
        batch: 16,
        pool: 32,
        depth: 8,
        notify_imm: false,
        fault_drop_p: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--size" => a.size = parse_size(&val("--size")?).ok_or("bad --size")?,
            "--block" => a.block = parse_size(&val("--block")?).ok_or("bad --block")?,
            "--channels" => {
                a.channels = val("--channels")?.parse().map_err(|_| "bad --channels")?
            }
            "--loaders" => a.loaders = val("--loaders")?.parse().map_err(|_| "bad --loaders")?,
            "--batch" => a.batch = val("--batch")?.parse().map_err(|_| "bad --batch")?,
            "--pool" => a.pool = val("--pool")?.parse().map_err(|_| "bad --pool")?,
            "--depth" => a.depth = val("--depth")?.parse().map_err(|_| "bad --depth")?,
            "--notify-imm" => a.notify_imm = true,
            "--fault" => {
                let v = val("--fault")?;
                let p = v
                    .strip_prefix("drop=")
                    .and_then(|p| p.parse::<f64>().ok())
                    .ok_or("bad --fault (expected drop=<P>)")?;
                if !(0.0..1.0).contains(&p) {
                    return Err("--fault drop probability must be in [0, 1)".into());
                }
                a.fault_drop_p = p;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
    }
    if a.channels == 0 || a.loaders == 0 || a.batch == 0 || a.pool == 0 || a.depth == 0 {
        return Err("all counts must be >= 1".into());
    }
    Ok(a)
}

fn main() {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rftp-live: {e}");
            std::process::exit(2);
        }
    };
    let mut cfg = LiveConfig::new(a.block as usize, a.channels, a.size);
    cfg.loaders = a.loaders;
    cfg.ctrl_batch = a.batch;
    cfg.pool_blocks = a.pool;
    cfg.channel_depth = a.depth;
    cfg.notify_imm = a.notify_imm;
    cfg.fault_drop_p = a.fault_drop_p;

    println!(
        "rftp-live: {} MB in {} KB blocks, {} channels, {} loaders, batch {}{}{}",
        a.size >> 20,
        a.block >> 10,
        a.channels,
        a.loaders,
        a.batch,
        if a.notify_imm { ", notify-imm" } else { "" },
        if a.fault_drop_p > 0.0 {
            format!(", drop p={}", a.fault_drop_p)
        } else {
            String::new()
        }
    );
    let r = run_live(&cfg);
    println!(
        "\n  {:.3} GB/s   {} blocks in {:.3} s",
        r.gbytes_per_sec,
        r.blocks,
        r.elapsed.as_secs_f64()
    );
    println!(
        "  control: {} msgs ({:.2} per block), {} credit requests",
        r.ctrl_msgs, r.ctrl_msgs_per_block, r.credit_requests
    );
    println!(
        "  stages (ns/block): load {:.0}  dispatch {:.0}  place {:.0}  verify {:.0}",
        r.stages.load_ns, r.stages.dispatch_ns, r.stages.place_ns, r.stages.verify_ns
    );
    println!(
        "  integrity: {} checksum failures, {} out-of-order arrivals, {} duplicates",
        r.checksum_failures, r.ooo_blocks, r.duplicate_payloads
    );
    if a.fault_drop_p > 0.0 {
        println!(
            "  faults: {} payloads dropped, {} retransmitted",
            r.dropped_payloads, r.retransmits
        );
    }
    if r.checksum_failures > 0 {
        eprintln!("rftp-live: VERIFICATION FAILED");
        std::process::exit(1);
    }
}
