//! `rftp-live` — command-line front end for the native-thread pipeline.
//!
//! Runs one live transfer (real threads, real bytes, wall-clock timing)
//! and prints throughput, control-plane counts, and the per-stage cost
//! breakdown. One process by default; `--listen`/`--connect` split the
//! pipeline into two processes joined by TCP:
//!
//! ```text
//! rftp-live --size 1G --block 256K --channels 8 --loaders 4
//! rftp-live --batch 1 --fault drop=0.05       # unbatched wire + loss
//! rftp-live --src-file A --dst-file B --direct   # disk to disk
//!
//! host B$ rftp-live --listen 0.0.0.0:9040 --dst-file B
//! host A$ rftp-live --connect hostB:9040 --src-file A --channels 8
//! rftp-live --help
//! ```

use rftp_core::wire::CtrlMsg;
use rftp_live::args::{flag_parse, flag_path, flag_size, flag_value};
use rftp_live::{
    net, run_split_pair_wan, run_split_sink, run_split_source, try_run_live, LiveConfig,
    LiveReport, WanProfile,
};
use std::path::PathBuf;

/// Which end of the transfer this process runs.
enum Mode {
    /// Both halves in this process (the original pipeline).
    Local,
    /// Sink half: bind, accept one source, receive.
    Listen(String),
    /// Source half: connect to a listening sink, send.
    Connect(String),
}

/// Socket backend for the two-process mode. The wire format is
/// identical (PROTOCOL.md §7), so the two ends may mix backends.
#[derive(Clone, Copy, PartialEq)]
enum Transport {
    Tcp,
    Uring,
    Shm,
}

impl Transport {
    fn label(self) -> &'static str {
        match self {
            Transport::Tcp => "",
            Transport::Uring => " (io_uring)",
            Transport::Shm => " (shm)",
        }
    }
}

struct Args {
    transport: Transport,
    mode: Mode,
    size: u64,
    block: u64,
    channels: usize,
    loaders: usize,
    batch: usize,
    pool: u32,
    depth: usize,
    notify_imm: bool,
    fault_drop_p: f64,
    src_file: Option<PathBuf>,
    dst_file: Option<PathBuf>,
    direct: bool,
    readahead: u32,
    /// Socket buffer bytes per data stream; `None` = size from
    /// block × depth, `Some(0)` = leave the OS defaults.
    sockbuf: Option<u64>,
    /// WAN impairment applied to this endpoint's inbound traffic.
    wan: Option<WanProfile>,
    /// Run the impairment shim without the adaptive controller (static
    /// arms of a WAN comparison).
    no_adapt: bool,
    /// Carry the whole impairment (full RTT + data loss) on the source
    /// side, for peers whose receive path cannot host the shim.
    wan_at_source: bool,
}

const HELP: &str = "rftp-live: the RFTP pipeline on real OS threads

USAGE: rftp-live [OPTIONS]

OPTIONS:
  --size <SIZE>      total payload, e.g. 1G (default 256M; in file mode
                     defaults to the source file's length)
  --block <SIZE>     block size, e.g. 256K (default 256K)
  --channels <N>     parallel data channels (default 4)
  --loaders <N>      source loader threads (default 2)
  --batch <N>        control entries coalesced per frame; 1 = one
                     message per block (default 16)
  --pool <N>         pool blocks per endpoint (default 32)
  --depth <N>        per-channel queue depth (default 8)
  --notify-imm       in-band arrival notification (WRITE_WITH_IMM)
  --fault drop=<P>   drop each payload with probability P (exercises
                     the retransmit path)
  --src-file <PATH>  read payload from this file instead of pattern fill
  --dst-file <PATH>  write-behind placed blocks into this file instead
                     of checksum-verifying
  --direct           open files O_DIRECT where the filesystem allows
                     (falls back to buffered + fadvise elsewhere)
  --readahead <N>    read-ahead depth: source blocks in flight beyond
                     the one in service; 0 = no disk/network overlap
                     (default: fill the pool)

TWO-PROCESS MODE (the pipeline split over TCP):
  --listen <ADDR>    run the sink half: accept one source at ADDR
                     (e.g. 0.0.0.0:9040) and receive. Transfer geometry
                     (--size/--block/--channels/--loaders/--fault) is
                     the source's; only sink-side flags apply here.
  --connect <ADDR>   run the source half: connect to a listening sink
                     and send
  --sockbuf <SIZE>   per-data-stream socket buffer (SO_SNDBUF/SO_RCVBUF);
                     0 = OS defaults (default: sized from block x depth)
  --transport <T>    backend for --listen/--connect: tcp (thread per
                     channel, default), uring (one io_uring, registered
                     buffers, batched completions), or shm (same-host
                     shared-memory window: ADDR is a unix socket path,
                     payload is a one-sided write with zero receiver
                     copies). tcp and uring speak the same wire and may
                     mix ends; shm requires shm on both.
  --wan <SPEC>       emulate a WAN path and enable the adaptive
                     credit/depth controller. SPEC is a preset
                     (roce-lan, ib-lan, ani-wan) or preset,key=value
                     overrides (rtt=49ms, drop=0.01, rate=10e9,
                     jitter=1ms, seed=N). Each endpoint impairs its own
                     inbound traffic, so run the same --wan on both
                     ends of a two-process pair; in local mode the shim
                     wraps the in-process transport. Sink-side --wan
                     needs --transport tcp (uring/shm receive paths
                     bypass the shim)
  --no-adapt         with --wan: keep the impairment but pin the static
                     flag-tuned dwell/depth/timeout (baseline arms)
  --wan-at-source    with --connect --wan: fold the whole round trip
                     (and the data-loss leg) into the source's shim,
                     for sinks that cannot host one (uring/shm)
  --probe-uring      report whether this kernel can run the uring
                     backend — and whether multishot receive is live
                     or the READ_FIXED fallback would carry — plus
                     whether the shm transport (memfd + SCM_RIGHTS fd
                     passing) is available, then exit (0 = uring
                     supported, 3 = not)
  --help             this text";

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        transport: Transport::Tcp,
        mode: Mode::Local,
        size: 0, // resolved after the loop: explicit > src-file len > 256M
        block: 256 << 10,
        channels: 4,
        loaders: 2,
        batch: 16,
        pool: 32,
        depth: 8,
        notify_imm: false,
        fault_drop_p: 0.0,
        src_file: None,
        dst_file: None,
        direct: false,
        readahead: u32::MAX,
        sockbuf: None,
        wan: None,
        no_adapt: false,
        wan_at_source: false,
    };
    let mut geometry_flag_seen = false;
    let it = &mut std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--size" => (a.size, geometry_flag_seen) = (flag_size(it, "--size")?, true),
            "--block" => (a.block, geometry_flag_seen) = (flag_size(it, "--block")?, true),
            "--channels" => {
                (a.channels, geometry_flag_seen) = (flag_parse(it, "--channels")?, true)
            }
            "--loaders" => a.loaders = flag_parse(it, "--loaders")?,
            "--batch" => a.batch = flag_parse(it, "--batch")?,
            "--pool" => a.pool = flag_parse(it, "--pool")?,
            "--depth" => a.depth = flag_parse(it, "--depth")?,
            "--notify-imm" => a.notify_imm = true,
            "--fault" => {
                let v = flag_value(it, "--fault")?;
                let p = v
                    .strip_prefix("drop=")
                    .and_then(|p| p.parse::<f64>().ok())
                    .ok_or("bad --fault (expected drop=<P>)")?;
                if !(0.0..1.0).contains(&p) {
                    return Err("--fault drop probability must be in [0, 1)".into());
                }
                a.fault_drop_p = p;
            }
            "--src-file" => a.src_file = Some(flag_path(it, "--src-file")?),
            "--dst-file" => a.dst_file = Some(flag_path(it, "--dst-file")?),
            "--direct" => a.direct = true,
            "--readahead" => a.readahead = flag_parse(it, "--readahead")?,
            "--listen" => a.mode = Mode::Listen(flag_value(it, "--listen")?),
            "--connect" => a.mode = Mode::Connect(flag_value(it, "--connect")?),
            "--sockbuf" => a.sockbuf = Some(flag_size(it, "--sockbuf")?),
            "--wan" => {
                let spec = flag_value(it, "--wan")?;
                a.wan = Some(WanProfile::parse(&spec).map_err(|e| format!("--wan: {e}"))?);
            }
            "--no-adapt" => a.no_adapt = true,
            "--wan-at-source" => a.wan_at_source = true,
            "--transport" => {
                a.transport = match flag_value(it, "--transport")?.as_str() {
                    "tcp" => Transport::Tcp,
                    "uring" => Transport::Uring,
                    "shm" => Transport::Shm,
                    other => return Err(format!("bad --transport {other} (tcp, uring, or shm)")),
                }
            }
            "--probe-uring" => {
                let uring_ok = rftp_live::uring_supported();
                if uring_ok {
                    if rftp_live::uring_multishot() {
                        println!(
                            "rftp-live: io_uring transport supported; multishot receive active"
                        );
                    } else {
                        println!(
                            "rftp-live: io_uring transport supported; multishot receive \
                             unavailable (header-first READ_FIXED fallback)"
                        );
                    }
                } else {
                    println!("rftp-live: io_uring transport NOT supported on this kernel");
                }
                if rftp_live::shm_supported() {
                    println!("rftp-live: shm transport supported (memfd + SCM_RIGHTS fd passing)");
                } else {
                    println!("rftp-live: shm transport NOT supported on this host");
                }
                std::process::exit(if uring_ok { 0 } else { 3 });
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    match &a.mode {
        Mode::Listen(_) => {
            // The sink's transfer geometry arrives in the SessionRequest;
            // local geometry flags could only disagree with it.
            if geometry_flag_seen {
                return Err("--size/--block/--channels are the source's to set; \
                     the sink learns them from the session handshake"
                    .into());
            }
            if a.src_file.is_some() || a.fault_drop_p > 0.0 {
                return Err("--src-file and --fault belong to the source (--connect) side".into());
            }
            if a.wan.is_some() && a.transport != Transport::Tcp {
                return Err("--wan on the sink side requires --transport tcp \
                     (the uring/shm receive paths bypass the impairment shim)"
                    .into());
            }
        }
        Mode::Connect(_) => {
            if a.dst_file.is_some() {
                return Err("--dst-file belongs to the sink (--listen) side".into());
            }
        }
        Mode::Local => {
            if a.transport != Transport::Tcp {
                return Err(
                    "--transport applies to the two-process mode (--listen/--connect)".into(),
                );
            }
        }
    }
    if a.size == 0 {
        a.size = match &a.src_file {
            Some(p) => std::fs::metadata(p)
                .map_err(|e| format!("--src-file {}: {e}", p.display()))?
                .len(),
            None => 256 << 20,
        };
        if a.size == 0 {
            return Err("source file is empty".into());
        }
    }
    if a.channels == 0 || a.loaders == 0 || a.batch == 0 || a.pool == 0 || a.depth == 0 {
        return Err("all counts must be >= 1".into());
    }
    if (a.no_adapt || a.wan_at_source) && a.wan.is_none() {
        return Err("--no-adapt/--wan-at-source only modify --wan".into());
    }
    if a.wan_at_source && !matches!(a.mode, Mode::Connect(_)) {
        return Err("--wan-at-source belongs to the source (--connect) side".into());
    }
    Ok(a)
}

fn build_cfg(a: &Args) -> LiveConfig {
    let mut cfg = LiveConfig::new(a.block as usize, a.channels, a.size);
    cfg.loaders = a.loaders;
    cfg.ctrl_batch = a.batch;
    cfg.pool_blocks = a.pool;
    cfg.channel_depth = a.depth;
    cfg.notify_imm = a.notify_imm;
    cfg.fault_drop_p = a.fault_drop_p;
    cfg.src_file = a.src_file.clone();
    cfg.dst_file = a.dst_file.clone();
    cfg.direct_io = a.direct;
    cfg.readahead = a.readahead;
    cfg
}

/// Fold `--wan` into a config whose transfer geometry is final. With
/// `--no-adapt` the shim still impairs the path but the static
/// flag-tuned dwell/depth/pool stay pinned (baseline arms of a WAN
/// comparison) — except the retransmit deadline, which must at least
/// clear the emulated RTT or the watchdog melts down before the first
/// ack can possibly arrive.
fn apply_wan(a: &Args, cfg: &mut LiveConfig) {
    let Some(wan) = &a.wan else { return };
    if a.no_adapt {
        cfg.retx_timeout = cfg.retx_timeout.max(4 * wan.rtt());
    } else {
        cfg.apply_wan(wan);
    }
}

fn sockbuf_bytes(a: &Args, block: usize) -> usize {
    match a.sockbuf {
        Some(b) => b as usize,
        None => net::default_sockbuf(block, a.depth),
    }
}

fn print_report(a: &Args, r: &LiveReport) {
    println!(
        "\n  {:.3} GB/s   {} blocks in {:.3} s",
        r.gbytes_per_sec,
        r.blocks,
        r.elapsed.as_secs_f64()
    );
    println!(
        "  control: {} msgs ({:.2} per block), {} credit requests",
        r.ctrl_msgs, r.ctrl_msgs_per_block, r.credit_requests
    );
    println!(
        "  stages (ns/block): load {:.0}  dispatch {:.0}  place {:.0}  verify {:.0}  flush {:.0}  sync {:.0}",
        r.stages.load_ns,
        r.stages.dispatch_ns,
        r.stages.place_ns,
        r.stages.verify_ns,
        r.stages.flush_ns,
        r.stages.sync_ns
    );
    println!(
        "  integrity: {} checksum failures, {} out-of-order arrivals, {} duplicates",
        r.checksum_failures, r.ooo_blocks, r.duplicate_payloads
    );
    if a.src_file.is_some() || a.dst_file.is_some() {
        println!(
            "  direct I/O: {}",
            if r.direct_io_active {
                "active"
            } else {
                "buffered fallback"
            }
        );
    }
    if a.fault_drop_p > 0.0 || a.wan.is_some() {
        println!(
            "  faults: {} payloads dropped, {} retransmitted",
            r.dropped_payloads, r.retransmits
        );
    }
    if let Some(ad) = &r.adapt {
        println!(
            "  adaptive: srtt {:.1} us (var {:.1})  loss {:.4}  depth {}  dwell {:.1} us  first block {:.1} us",
            ad.srtt_us,
            ad.rttvar_us,
            ad.loss_rate,
            ad.effective_depth,
            ad.dwell_ns as f64 / 1e3,
            ad.first_block_us
        );
    }
}

fn run(a: &Args) -> std::io::Result<LiveReport> {
    match &a.mode {
        Mode::Local => match &a.wan {
            None => try_run_live(&build_cfg(a)),
            Some(wan) => {
                // The split pair through the in-process shim: the sink
                // report carries the placement/timing story, the source
                // report the retransmit counters — merge the two.
                let mut cfg = build_cfg(a);
                apply_wan(a, &mut cfg);
                let (src, mut snk) = run_split_pair_wan(&cfg, wan)?;
                snk.retransmits = src.retransmits;
                snk.dropped_payloads = src.dropped_payloads;
                Ok(snk)
            }
        },
        Mode::Connect(addr) => {
            let mut cfg = build_cfg(a);
            apply_wan(a, &mut cfg);
            println!(
                "rftp-live: source -> {addr}: {} MB in {} KB blocks, {} channels, {} loaders{}",
                a.size >> 20,
                a.block >> 10,
                a.channels,
                a.loaders,
                a.transport.label()
            );
            let sockbuf = sockbuf_bytes(a, cfg.block_size);
            report_sockbuf(a, sockbuf);
            let t = match a.transport {
                Transport::Tcp => net::connect_source(addr.as_str(), a.channels, sockbuf)?,
                Transport::Uring => {
                    rftp_live::connect_source_uring(addr.as_str(), a.channels, sockbuf)?
                }
                Transport::Shm => rftp_live::connect_source_shm(addr.as_str(), a.channels)?,
            };
            let t = match &a.wan {
                // The source's inbound traffic is the ack/credit stream;
                // delaying it half the RTT gives the pair the full round
                // trip when the sink delays data the other half. With
                // --wan-at-source the sink cannot host its half (uring/
                // shm receive paths), so the source carries the whole
                // impairment: full RTT on control, loss on data out.
                Some(wan) if a.wan_at_source => rftp_live::wrap_source_datapath(t, wan),
                Some(wan) => rftp_live::wrap_source(t, wan),
                None => t,
            };
            run_split_source(&cfg, t)
        }
        Mode::Listen(addr) => {
            if a.transport == Transport::Shm {
                let listener = rftp_live::ShmListener::bind(addr.as_str())?;
                println!("rftp-live: sink listening on shm socket {addr}");
                let (sess, first) = listener.accept_session()?;
                let a2 = sink_cfg(a, &first)?;
                return rftp_live::run_shm_sink(&a2, sess, Some(first));
            }
            let listener = net::NetListener::bind(addr.as_str())?;
            println!("rftp-live: sink listening on {}", listener.local_addr()?);
            // The accept consumes the SessionRequest (the sink's config
            // must agree with it). Block size is unknown until then, so
            // only an explicit --sockbuf resizes the sink's buffers; the
            // source side carries the block-sized default.
            let sockbuf = a.sockbuf.map_or(0, |b| b as usize);
            report_sockbuf(a, sockbuf);
            match a.transport {
                Transport::Tcp => {
                    let (t, first) = listener.accept_session(sockbuf)?;
                    let a2 = sink_cfg(a, &first)?;
                    let t = match &a.wan {
                        Some(wan) => rftp_live::wrap_sink(t, wan),
                        None => t,
                    };
                    run_split_sink(&a2, t, Some(first))
                }
                Transport::Uring => {
                    let (sess, first) = rftp_live::accept_source_uring(&listener, sockbuf)?;
                    let a2 = sink_cfg(a, &first)?;
                    rftp_live::run_uring_sink(&a2, sess, Some(first))
                }
                Transport::Shm => unreachable!("handled above"),
            }
        }
    }
}

/// Requested-vs-effective socket buffer report: the kernel clamps
/// `SO_SNDBUF`/`SO_RCVBUF` to `net.core.{w,r}mem_max` without a word,
/// so a tuning flag that silently got a fraction of its request makes
/// every run after it a lie. Probed on a throwaway loopback socket
/// subject to the same clamps as the data streams.
fn report_sockbuf(a: &Args, sockbuf: usize) {
    if a.transport == Transport::Shm || sockbuf == 0 {
        return; // no socket buffers on the data path, or OS defaults
    }
    if let Ok(Some(eff)) = net::probe_sockbuf(sockbuf) {
        println!(
            "rftp-live: sockbuf requested {} -> effective sndbuf {} rcvbuf {}{}",
            eff.requested,
            eff.sndbuf,
            eff.rcvbuf,
            if eff.clamped() {
                " [CLAMPED by net.core.wmem_max/rmem_max]"
            } else {
                ""
            }
        );
    }
}

/// Build the sink-half config from the source's `SessionRequest` —
/// the transfer geometry is the source's to set.
fn sink_cfg(a: &Args, first: &CtrlMsg) -> std::io::Result<LiveConfig> {
    let CtrlMsg::SessionRequest {
        block_size,
        channels,
        total_bytes,
        ..
    } = *first
    else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("peer opened with {first:?}, not a SessionRequest"),
        ));
    };
    let mut a2 = build_cfg(a);
    a2.block_size = block_size as usize;
    a2.channels = channels as usize;
    a2.total_bytes = total_bytes;
    // WAN sizing waits until here: the pool/depth targets derive from
    // the *negotiated* block size, not the local default.
    apply_wan(a, &mut a2);
    println!(
        "rftp-live: sink: {} MB in {} KB blocks, {} channels{}",
        total_bytes >> 20,
        block_size >> 10,
        channels,
        a.transport.label()
    );
    Ok(a2)
}

fn main() {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rftp-live: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    if matches!(a.mode, Mode::Local) {
        println!(
            "rftp-live: {} MB in {} KB blocks, {} channels, {} loaders, batch {}{}{}",
            a.size >> 20,
            a.block >> 10,
            a.channels,
            a.loaders,
            a.batch,
            if a.notify_imm { ", notify-imm" } else { "" },
            if a.fault_drop_p > 0.0 {
                format!(", drop p={}", a.fault_drop_p)
            } else {
                String::new()
            }
        );
        if a.src_file.is_some() || a.dst_file.is_some() {
            println!(
                "  storage: {} -> {}, {}, readahead {}",
                a.src_file
                    .as_deref()
                    .map_or("<pattern>".into(), |p| p.display().to_string()),
                a.dst_file
                    .as_deref()
                    .map_or("<verify>".into(), |p| p.display().to_string()),
                if a.direct { "O_DIRECT" } else { "buffered" },
                if a.readahead == u32::MAX {
                    "pool".into()
                } else {
                    a.readahead.to_string()
                }
            );
        }
    }
    let r = match run(&a) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rftp-live: transfer failed: {e}");
            std::process::exit(1);
        }
    };
    print_report(&a, &r);
    if r.checksum_failures > 0 {
        eprintln!("rftp-live: VERIFICATION FAILED");
        std::process::exit(1);
    }
}
