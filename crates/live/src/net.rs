//! TCP backend for the split pipeline: one stream per link.
//!
//! The source [`connect_source`]s a control stream plus one data stream
//! per channel; the sink's [`NetListener`] accepts them and hands back a
//! connected [`SinkTransport`]. Each stream opens with a 16-byte hello
//! naming its role and its session, so the N+1 connections can land in
//! any order — and, under the daemon, interleaved with other sessions'
//! connections:
//!
//! ```text
//! offset  0..4    magic  "RFTP" (0x5246_5450, big-endian)
//!         4       kind   0 = control, 1 = data
//!         5       pad    0
//!         6..8    index  control: channel count; data: channel index (BE)
//!         8..16   token  client-chosen random session token (BE)
//! ```
//!
//! The token groups one source's connection set: all N+1 streams of a
//! session carry the same value, so [`StreamAssembler`] can assemble
//! many sessions' streams concurrently from one accept loop. The hello
//! is transport preamble, not protocol — the control and data frames
//! after it are unchanged.
//!
//! Assembly is *tolerant*: hellos are read on short-lived reader
//! threads under a deadline — never on the accept thread, so a silent
//! connection parks one helper, not the listener — a connection that
//! stalls, hangs up, or speaks garbage is dropped without disturbing
//! the accept loop, and a partial connection set whose source died
//! mid-negotiation is swept after [`STALE_SESSION_TIMEOUT`] — a dying
//! client can no longer wedge the listener.
//!
//! **Trust model.** The hello token is client-chosen and
//! unauthenticated: it exists to *group* one source's connections, not
//! to authenticate them. The assembler therefore treats a protocol
//! violation as a defect of the offending connection only — a duplicate
//! control hello or a bad data index drops that connection alone, so a
//! third party who learns a token in flight cannot destroy a victim's
//! pending set. What tokens cannot prevent is injection: a peer that
//! knows an unfinished session's token and an unfilled channel index
//! could contribute a stream to that set. Deployments needing stronger
//! isolation should run the listener on a trusted network (the paper's
//! setting) or behind an authenticating tunnel.
//!
//! After the hello the stream carries exactly one thing for its whole
//! life: length-prefixed control frames (both directions) on the control
//! stream, or `[DataFrameHeader | wire image]` records (source → sink
//! only) on a data stream.
//!
//! The mapping of "RDMA WRITE from a pinned buffer" onto a socket is one
//! vectored write: the 16-byte frame header and the block's wire image go
//! out in a single `writev` straight from the slot buffer — no
//! staging copy at the sender. The receiver reads the header, then reads
//! the wire image directly into the slot the header names — the socket
//! read *is* the placement.
//!
//! Control streams run `TCP_NODELAY` (credit and ack latency is the
//! credit loop's round-trip). Data streams get their socket buffers sized
//! to the channel's share of the flight window (`SO_SNDBUF`/`SO_RCVBUF`),
//! because the default buffer is far below `block_size × depth` for the
//! block sizes the paper studies.

use crate::transport::{CtrlRx, CtrlTx, DataRx, DataTx, SinkTransport, SourceTransport};
use parking_lot::Mutex;
use rftp_core::wire::{
    encode_stream_frame, CtrlMsg, DataFrameHeader, FrameDecoder, CTRL_SLOT_LEN,
    DATA_FRAME_HEADER_LEN, FRAME_PREFIX_LEN,
};
use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub(crate) const HELLO_MAGIC: u32 = 0x5246_5450; // "RFTP"
pub(crate) const HELLO_LEN: usize = 16;
pub(crate) const KIND_CTRL: u8 = 0;
pub(crate) const KIND_DATA: u8 = 1;

/// How long the listener waits for a just-accepted connection to
/// produce its hello before dropping it.
pub(crate) const HELLO_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a partial connection set may sit in the assembler before it
/// is presumed orphaned (its source died mid-negotiation) and swept.
pub(crate) const STALE_SESSION_TIMEOUT: Duration = Duration::from_secs(10);

pub(crate) fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A fresh random session token for one connection set. Uses the
/// standard library's per-process random hasher seed — unpredictable
/// enough to keep concurrent clients from colliding, with no RNG dep.
pub(crate) fn new_session_token() -> u64 {
    use std::hash::{BuildHasher, Hash, Hasher};
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    Instant::now().hash(&mut h);
    std::process::id().hash(&mut h);
    h.finish()
}

pub(crate) fn write_hello(s: &mut impl Write, kind: u8, index: u16, token: u64) -> io::Result<()> {
    let mut hello = [0u8; HELLO_LEN];
    hello[..4].copy_from_slice(&HELLO_MAGIC.to_be_bytes());
    hello[4] = kind;
    hello[6..8].copy_from_slice(&index.to_be_bytes());
    hello[8..16].copy_from_slice(&token.to_be_bytes());
    s.write_all(&hello)
}

pub(crate) fn read_hello(s: &mut impl Read) -> io::Result<(u8, u16, u64)> {
    let mut hello = [0u8; HELLO_LEN];
    s.read_exact(&mut hello)?;
    if hello[..4] != HELLO_MAGIC.to_be_bytes() {
        return Err(proto_err("connection is not an rftp stream"));
    }
    let kind = hello[4];
    if kind != KIND_CTRL && kind != KIND_DATA {
        return Err(proto_err(format!("unknown stream kind {kind}")));
    }
    let index = u16::from_be_bytes([hello[6], hello[7]]);
    let token = u64::from_be_bytes(hello[8..16].try_into().unwrap());
    Ok((kind, index, token))
}

// ---------------------------------------------------------------------------
// Socket tuning
// ---------------------------------------------------------------------------

/// Requested-vs-effective socket buffer sizes. The kernel silently
/// clamps `SO_SNDBUF`/`SO_RCVBUF` to `net.core.{w,r}mem_max`, so the
/// value a tuning flag *asked for* and the value the socket actually
/// *got* can differ wildly — this reports both so tuning runs stop
/// lying. Note the effective values are as the kernel reports them,
/// i.e. including its 2× bookkeeping doubling on Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SockbufEffective {
    /// Bytes the caller requested for each direction.
    pub requested: usize,
    /// `SO_SNDBUF` read back after setting.
    pub sndbuf: usize,
    /// `SO_RCVBUF` read back after setting.
    pub rcvbuf: usize,
}

impl SockbufEffective {
    /// Whether the kernel clamped either direction below the request.
    /// Linux doubles the set value on read-back, so "honored" means
    /// effective ≥ 2× requested (conservatively, ≥ requested elsewhere).
    pub fn clamped(&self) -> bool {
        let floor = if cfg!(target_os = "linux") {
            self.requested.saturating_mul(2)
        } else {
            self.requested
        };
        self.sndbuf < floor || self.rcvbuf < floor
    }
}

/// Size both socket buffers to `bytes` (0 leaves the OS defaults) and
/// read back what the kernel actually granted. Uses raw `setsockopt`/
/// `getsockopt` — the std API has no knob for this, and the kernel
/// clamps to `net.core.{w,r}mem_max` on its own, so set failures are
/// advice we can ignore; the read-back is how we notice the clamp.
#[cfg(target_os = "linux")]
fn set_sockbuf(s: &impl std::os::fd::AsRawFd, bytes: usize) -> Option<SockbufEffective> {
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn getsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *mut core::ffi::c_void,
            optlen: *mut u32,
        ) -> i32;
    }
    fn read_back(fd: i32, optname: i32) -> usize {
        let mut val: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                optname,
                &mut val as *mut i32 as *mut core::ffi::c_void,
                &mut len,
            )
        };
        if rc == 0 {
            val.max(0) as usize
        } else {
            0
        }
    }
    if bytes == 0 {
        return None;
    }
    let val = bytes.min(i32::MAX as usize) as i32;
    let p = &val as *const i32 as *const core::ffi::c_void;
    let n = std::mem::size_of::<i32>() as u32;
    let fd = s.as_raw_fd();
    unsafe {
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, p, n);
        setsockopt(fd, SOL_SOCKET, SO_RCVBUF, p, n);
    }
    Some(SockbufEffective {
        requested: bytes,
        sndbuf: read_back(fd, SO_SNDBUF),
        rcvbuf: read_back(fd, SO_RCVBUF),
    })
}

#[cfg(not(target_os = "linux"))]
fn set_sockbuf(_s: &impl std::os::fd::AsRawFd, _bytes: usize) -> Option<SockbufEffective> {
    None
}

/// Probe what the kernel would actually grant for a `bytes`-sized
/// socket-buffer request: set and read back on a throwaway loopback
/// connection subject to the same `net.core.{w,r}mem_max` clamps as
/// the real data sockets. `Ok(None)` when `bytes == 0` (OS defaults,
/// nothing to compare) or off Linux.
pub fn probe_sockbuf(bytes: usize) -> io::Result<Option<SockbufEffective>> {
    if bytes == 0 {
        return Ok(None);
    }
    let l = TcpListener::bind(("127.0.0.1", 0))?;
    let s = TcpStream::connect(l.local_addr()?)?;
    Ok(set_sockbuf(&s, bytes))
}

pub(crate) fn retry_interrupted<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// `read_exact`, except a clean end-of-stream *before the first byte*
/// returns `Ok(false)` instead of an error — the frame boundary is the
/// only place a peer may hang up.
pub(crate) fn read_exact_or_eof(s: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut off = 0;
    while off < buf.len() {
        let n = retry_interrupted(|| s.read(&mut buf[off..]))?;
        if n == 0 {
            return if off == 0 {
                Ok(false)
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ))
            };
        }
        off += n;
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Link endpoints
// ---------------------------------------------------------------------------

/// Whole-frame control sender over any byte stream (TCP for the
/// network backends, `UnixStream` for shm). Generic so the shm control
/// socket reuses the exact frame encoding — control-plane bytes are
/// identical across transports.
pub(crate) struct NetCtrlTx<S = TcpStream>(pub(crate) Mutex<S>);

impl<S: Write + Send> CtrlTx for NetCtrlTx<S> {
    fn send(&self, msg: &CtrlMsg) -> io::Result<()> {
        let mut buf = [0u8; FRAME_PREFIX_LEN + CTRL_SLOT_LEN];
        let n = encode_stream_frame(msg, &mut buf);
        // The lock scopes the whole frame: concurrent senders (dispatcher
        // MrRequests vs the control thread) never interleave bytes.
        retry_interrupted(|| self.0.lock().write_all(&buf[..n]))
    }
}

pub(crate) struct NetCtrlRx<S = TcpStream> {
    stream: S,
    dec: FrameDecoder,
    buf: Vec<u8>,
}

impl<S: Read + Send> NetCtrlRx<S> {
    pub(crate) fn new(stream: S) -> NetCtrlRx<S> {
        NetCtrlRx {
            stream,
            dec: FrameDecoder::new(),
            buf: vec![0u8; 4096],
        }
    }
}

impl<S: Read + Send> CtrlRx for NetCtrlRx<S> {
    fn recv(&mut self) -> io::Result<Option<CtrlMsg>> {
        loop {
            if let Some(msg) = self
                .dec
                .next_frame()
                .map_err(|e| proto_err(format!("bad control frame: {e:?}")))?
            {
                return Ok(Some(msg));
            }
            let n = retry_interrupted(|| self.stream.read(&mut self.buf))?;
            if n == 0 {
                return if self.dec.pending_bytes() == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "control stream closed mid-frame",
                    ))
                };
            }
            self.dec.push(&self.buf[..n]);
        }
    }
}

struct NetDataTx(Mutex<TcpStream>);

impl DataTx for NetDataTx {
    fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
        debug_assert_eq!(wire.len(), hdr.wire_len());
        let mut hbuf = [0u8; DATA_FRAME_HEADER_LEN];
        hdr.encode(&mut hbuf);
        let mut stream = self.0.lock();
        // One writev from the slot buffer; loop only for short writes.
        let (mut h, mut w): (&[u8], &[u8]) = (&hbuf, wire);
        while !h.is_empty() || !w.is_empty() {
            let n =
                retry_interrupted(|| stream.write_vectored(&[IoSlice::new(h), IoSlice::new(w)]))?;
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            if n >= h.len() {
                w = &w[n - h.len()..];
                h = &[];
            } else {
                h = &h[n..];
            }
        }
        Ok(())
    }
}

struct NetDataRx {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl DataRx for NetDataRx {
    fn recv_header(&mut self) -> io::Result<Option<DataFrameHeader>> {
        let mut hbuf = [0u8; DATA_FRAME_HEADER_LEN];
        if !read_exact_or_eof(&mut self.stream, &mut hbuf)? {
            return Ok(None);
        }
        DataFrameHeader::decode(&hbuf)
            .map(Some)
            .map_err(|e| proto_err(format!("bad data frame header: {e:?}")))
    }

    fn recv_wire(&mut self, buf: &mut [u8]) -> io::Result<()> {
        retry_interrupted(|| self.stream.read_exact(buf))
    }

    fn discard_wire(&mut self, wire_len: usize) -> io::Result<()> {
        if self.scratch.is_empty() {
            self.scratch.resize(64 * 1024, 0);
        }
        let mut left = wire_len;
        while left > 0 {
            let take = left.min(self.scratch.len());
            retry_interrupted(|| self.stream.read_exact(&mut self.scratch[..take]))?;
            left -= take;
        }
        Ok(())
    }
}

/// Shutdown hooks over a set of socket handles. `try_clone`d handles
/// alias the underlying socket, so shutting the clone down shuts the
/// live stream down — that is exactly what lets these hooks unblock
/// readers and writers owned by other threads.
pub(crate) fn shutdown_all(socks: &[TcpStream], how: Shutdown) {
    for s in socks {
        let _ = s.shutdown(how); // already-gone peers are fine
    }
}

// ---------------------------------------------------------------------------
// Session setup
// ---------------------------------------------------------------------------

/// The raw connected socket set for one session, before a backend wraps
/// it: the control stream plus the per-channel data streams, hellos
/// already exchanged, `TCP_NODELAY` on control, buffers sized on data.
/// The TCP backend wraps these in blocking reader/writer threads; the
/// io_uring backend hands the same sockets to a ring — the wire is
/// byte-identical either way.
pub(crate) struct SessionStreams {
    pub(crate) ctrl: TcpStream,
    pub(crate) data: Vec<TcpStream>,
    /// The hello token this connection set announced (the daemon keys
    /// its session table on it; one-shot mode ignores it).
    pub(crate) token: u64,
}

/// Dial a sink listening at `addr` and run the hello exchange: control
/// stream plus `channels` data streams, socket buffers on data sized to
/// `sockbuf` bytes (0 = OS defaults). All streams carry one fresh
/// session token.
pub(crate) fn connect_streams(
    addr: impl ToSocketAddrs + Copy,
    channels: usize,
    sockbuf: usize,
) -> io::Result<SessionStreams> {
    assert!(channels >= 1 && channels <= u16::MAX as usize);
    let token = new_session_token();
    let mut ctrl = TcpStream::connect(addr)?;
    ctrl.set_nodelay(true)?;
    write_hello(&mut ctrl, KIND_CTRL, channels as u16, token)?;
    let mut data = Vec::with_capacity(channels);
    for ch in 0..channels {
        let mut s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        set_sockbuf(&s, sockbuf);
        write_hello(&mut s, KIND_DATA, ch as u16, token)?;
        data.push(s);
    }
    Ok(SessionStreams { ctrl, data, token })
}

/// Connect the source half to a sink listening at `addr`: control stream
/// plus `channels` data streams, hellos sent, `TCP_NODELAY` on control,
/// socket buffers on data sized to `sockbuf` bytes (0 = OS defaults).
pub fn connect_source(
    addr: impl ToSocketAddrs + Copy,
    channels: usize,
    sockbuf: usize,
) -> io::Result<SourceTransport> {
    let SessionStreams {
        ctrl,
        data: streams,
        token: _,
    } = connect_streams(addr, channels, sockbuf)?;
    let mut data: Vec<Box<dyn DataTx>> = Vec::with_capacity(streams.len());
    let mut handles = vec![ctrl.try_clone()?];
    for s in streams {
        handles.push(s.try_clone()?);
        data.push(Box::new(NetDataTx(Mutex::new(s))));
    }
    let handles = Arc::new(handles);
    let ctrl_rd = ctrl.try_clone()?;
    let shutdown_handles = handles.clone();
    Ok(SourceTransport {
        ctrl_tx: Arc::new(NetCtrlTx(Mutex::new(ctrl))),
        ctrl_rx: Box::new(NetCtrlRx::new(ctrl_rd)),
        data: Arc::new(data),
        register: Box::new(|_| Ok(())),
        transport_threads: 0,
        shutdown_write: Box::new(move || shutdown_all(&shutdown_handles, Shutdown::Write)),
        abort: Arc::new(move || shutdown_all(&handles, Shutdown::Both)),
    })
}

/// The sink half's accept socket.
pub struct NetListener(TcpListener);

impl NetListener {
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<NetListener> {
        Ok(NetListener(TcpListener::bind(addr)?))
    }

    /// The bound address — hand this to the peer (port 0 binds pick one).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.0.local_addr()
    }

    /// Accept one source's full connection set (control + its announced
    /// channel count of data streams, in any arrival order) as raw
    /// streams, hellos consumed. Connections that stall or die during
    /// the hello, and partial sets whose source gave up, are dropped —
    /// the loop keeps accepting until some source completes a set.
    pub(crate) fn accept_streams(&self, sockbuf: usize) -> io::Result<SessionStreams> {
        let mut asm = StreamAssembler::new(sockbuf);
        loop {
            let (s, _) = self.0.accept()?;
            asm.offer(s);
            // Drain the hello reads this connection may have unblocked
            // before parking in accept again; a set completes here the
            // moment its last hello lands.
            loop {
                if let Some(done) = asm.poll() {
                    return Ok(done);
                }
                if !asm.hellos_pending() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            asm.sweep_stale(Instant::now());
        }
    }

    /// Accept one source's full connection set, then read the opening
    /// `SessionRequest` so the caller can size its half before any
    /// payload is in flight. Returns the connected transport and that
    /// first control frame — pass it to [`crate::run_split_sink`] as
    /// `first_ctrl`.
    ///
    /// The request read is bounded: a source that completes its hellos
    /// and then goes silent produces a timeout error here, it cannot
    /// park the one-shot sink forever.
    pub fn accept_session(&self, sockbuf: usize) -> io::Result<(SinkTransport, CtrlMsg)> {
        let mut streams = self.accept_streams(sockbuf)?;
        streams.ctrl.set_read_timeout(Some(HELLO_TIMEOUT))?;
        let first = read_one_ctrl_frame(&mut streams.ctrl)?;
        streams.ctrl.set_read_timeout(None)?;
        Ok((sink_transport_from_streams(streams)?, first))
    }
}

/// Byte-exact read of one length-prefixed control frame — never reads
/// past the frame, so whatever takes the stream over next (a
/// `FrameDecoder`, an io_uring) starts on a frame boundary. The daemon
/// reads each session's opening `SessionRequest` this way before
/// deciding admission.
pub(crate) fn read_one_ctrl_frame(s: &mut impl Read) -> io::Result<CtrlMsg> {
    use rftp_core::wire::{MAX_FRAME_BODY, MIN_FRAME_BODY};
    let mut prefix = [0u8; FRAME_PREFIX_LEN];
    s.read_exact(&mut prefix)?;
    let body_len = u16::from_be_bytes(prefix) as usize;
    if !(MIN_FRAME_BODY..=MAX_FRAME_BODY).contains(&body_len) {
        return Err(proto_err(format!("bad control frame length {body_len}")));
    }
    let mut body = vec![0u8; body_len];
    s.read_exact(&mut body)?;
    CtrlMsg::decode(&body).map_err(|e| proto_err(format!("bad control frame: {e:?}")))
}

/// Wrap an assembled connection set as a TCP [`SinkTransport`] — the
/// tail of [`NetListener::accept_session`], callable on its own by the
/// daemon (which assembles streams and reads the `SessionRequest`
/// itself during admission).
pub(crate) fn sink_transport_from_streams(streams: SessionStreams) -> io::Result<SinkTransport> {
    let SessionStreams {
        ctrl,
        data: data_streams,
        token: _,
    } = streams;
    let mut handles = vec![ctrl.try_clone()?];
    for s in &data_streams {
        handles.push(s.try_clone()?);
    }
    let ctrl_wr = ctrl.try_clone()?;
    let ctrl_rx = NetCtrlRx::new(ctrl);
    let data: Vec<Box<dyn DataRx>> = data_streams
        .into_iter()
        .map(|stream| {
            Box::new(NetDataRx {
                stream,
                scratch: Vec::new(),
            }) as Box<dyn DataRx>
        })
        .collect();
    Ok(SinkTransport {
        ctrl_tx: Arc::new(NetCtrlTx(Mutex::new(ctrl_wr))),
        ctrl_rx: Box::new(ctrl_rx),
        data,
        abort: Arc::new(move || shutdown_all(&handles, Shutdown::Both)),
    })
}

/// One session's connections collected so far, keyed by hello token.
struct PendingSet {
    ctrl: Option<TcpStream>,
    /// Channel count announced by the control hello (0 until it lands).
    channels: usize,
    /// Data streams that arrived before the control hello, by index.
    early: Vec<(u16, TcpStream)>,
    data: Vec<Option<TcpStream>>,
    placed: usize,
    since: Instant,
}

impl PendingSet {
    fn complete(&self) -> bool {
        self.ctrl.is_some() && self.channels > 0 && self.placed == self.channels
    }
}

/// Parsed hello fields: (kind, index, token).
type Hello = (u8, u16, u64);

/// Completed hello exchanges, handed from the reader threads back to
/// the assembler's accept-loop side.
struct HelloQueue {
    /// Sockets whose hello parsed cleanly, with the parsed fields.
    ready: Mutex<Vec<(TcpStream, Hello)>>,
    /// Reader threads still waiting on a hello (or about to push).
    outstanding: std::sync::atomic::AtomicUsize,
}

/// Cap on concurrently pending hello reads: a flood of silent
/// connections sheds the newcomers instead of spawning threads without
/// bound. Generous next to any legitimate burst (a session opens
/// channels + 1 connections).
const MAX_PENDING_HELLOS: usize = 256;

/// Groups accepted connections into per-session sets by hello token,
/// tolerating the ways a client can fail mid-negotiation: a connection
/// that produces no hello within [`HELLO_TIMEOUT`], hangs up, or speaks
/// a bad hello is dropped; a connection that violates the protocol
/// inside its token (duplicate control, out-of-range or duplicate data
/// index) is dropped *alone* — its set survives, see the trust-model
/// note in the module docs; a partial set older than
/// [`STALE_SESSION_TIMEOUT`] is swept.
///
/// Hello reads happen on short-lived reader threads: [`offer`] returns
/// immediately and [`poll`] assembles whatever hellos have landed, so
/// the accept loop that feeds [`offer`] never blocks on a client.
///
/// [`offer`]: StreamAssembler::offer
/// [`poll`]: StreamAssembler::poll
pub(crate) struct StreamAssembler {
    pending: HashMap<u64, PendingSet>,
    completed: Vec<SessionStreams>,
    sockbuf: usize,
    hellos: Arc<HelloQueue>,
}

impl StreamAssembler {
    pub(crate) fn new(sockbuf: usize) -> StreamAssembler {
        StreamAssembler {
            pending: HashMap::new(),
            completed: Vec::new(),
            sockbuf,
            hellos: Arc::new(HelloQueue {
                ready: Mutex::new(Vec::new()),
                outstanding: std::sync::atomic::AtomicUsize::new(0),
            }),
        }
    }

    /// Feed one just-accepted connection: its hello is read on a
    /// short-lived helper thread (bounded by [`HELLO_TIMEOUT`]) and this
    /// call returns immediately. Collect assembled sets via [`poll`].
    ///
    /// [`poll`]: StreamAssembler::poll
    pub(crate) fn offer(&mut self, s: TcpStream) {
        use std::sync::atomic::Ordering;
        // The reader does a blocking read with a timeout; make sure the
        // socket didn't inherit a listener's nonblocking flag.
        if s.set_nonblocking(false).is_err() {
            return;
        }
        if self.hellos.outstanding.load(Ordering::Acquire) >= MAX_PENDING_HELLOS {
            return; // connection flood: shed the newcomer, keep accepting
        }
        self.hellos.outstanding.fetch_add(1, Ordering::AcqRel);
        let q = Arc::clone(&self.hellos);
        let spawned = std::thread::Builder::new()
            .name("rftp-hello".into())
            .spawn(move || {
                let mut s = s;
                let _ = s.set_read_timeout(Some(HELLO_TIMEOUT));
                let hello = read_hello(&mut s);
                let _ = s.set_read_timeout(None);
                if let Ok(h) = hello {
                    q.ready.lock().push((s, h));
                }
                // Decrement *after* the push: a caller that sees zero
                // outstanding with an empty ready queue knows no hello
                // is still in flight.
                q.outstanding.fetch_sub(1, Ordering::AcqRel);
            })
            .is_ok();
        if !spawned {
            self.hellos.outstanding.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// True while any offered connection's hello is still being read (or
    /// has landed but not yet been [`poll`]ed).
    ///
    /// [`poll`]: StreamAssembler::poll
    pub(crate) fn hellos_pending(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.hellos.outstanding.load(Ordering::Acquire) > 0 || !self.hellos.ready.lock().is_empty()
    }

    /// Assemble every hello that has landed since the last call and pop
    /// one completed session set, if any. Never blocks.
    pub(crate) fn poll(&mut self) -> Option<SessionStreams> {
        let batch: Vec<(TcpStream, Hello)> = {
            let mut ready = self.hellos.ready.lock();
            ready.drain(..).collect()
        };
        for (s, (kind, index, token)) in batch {
            self.assemble(s, kind, index, token);
        }
        self.completed.pop()
    }

    /// Place one hello-bearing connection into its token's pending set.
    /// A violation drops this connection only — the set survives, so a
    /// stranger who learned the token cannot destroy it.
    fn assemble(&mut self, s: TcpStream, kind: u8, index: u16, token: u64) {
        let set = self.pending.entry(token).or_insert_with(|| PendingSet {
            ctrl: None,
            channels: 0,
            early: Vec::new(),
            data: Vec::new(),
            placed: 0,
            since: Instant::now(),
        });
        match kind {
            KIND_CTRL => {
                if set.ctrl.is_some() || index == 0 || s.set_nodelay(true).is_err() {
                    return; // duplicate or malformed control: drop it alone
                }
                set.channels = index as usize;
                set.data = (0..set.channels).map(|_| None).collect();
                set.ctrl = Some(s);
                let early = std::mem::take(&mut set.early);
                let sockbuf = self.sockbuf;
                for (ix, es) in early {
                    // A misindexed early stream is dropped alone too.
                    if place_data(&mut set.data, ix, es, sockbuf).is_ok() {
                        set.placed += 1;
                    }
                }
            }
            _ => {
                if set.ctrl.is_none() {
                    set.early.push((index, s));
                } else if place_data(&mut set.data, index, s, self.sockbuf).is_ok() {
                    set.placed += 1;
                }
            }
        }
        if set.complete() {
            let set = self.pending.remove(&token).unwrap();
            self.completed.push(SessionStreams {
                ctrl: set.ctrl.expect("complete set has control"),
                data: set
                    .data
                    .into_iter()
                    .map(|s| s.expect("complete set has every data stream"))
                    .collect(),
                token,
            });
        }
    }

    /// Drop partial sets older than [`STALE_SESSION_TIMEOUT`] — their
    /// sources died mid-negotiation and will never finish.
    pub(crate) fn sweep_stale(&mut self, now: Instant) {
        self.pending
            .retain(|_, set| now.duration_since(set.since) < STALE_SESSION_TIMEOUT);
    }
}

fn place_data(
    slots: &mut [Option<TcpStream>],
    index: u16,
    s: TcpStream,
    sockbuf: usize,
) -> io::Result<()> {
    let ix = index as usize;
    if ix >= slots.len() {
        return Err(proto_err(format!(
            "data stream index {ix} out of range for {} channels",
            slots.len()
        )));
    }
    if slots[ix].is_some() {
        return Err(proto_err(format!("duplicate data stream index {ix}")));
    }
    set_sockbuf(&s, sockbuf);
    slots[ix] = Some(s);
    Ok(())
}

/// The default socket-buffer size for a transfer: each data stream
/// buffers its channel's share of one pool of blocks in each direction,
/// so the flight window fits in the kernel without tuning.
pub fn default_sockbuf(block_size: usize, channel_depth: usize) -> usize {
    (block_size + 64).saturating_mul(channel_depth.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip_over_loopback() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_hello(&mut s, KIND_DATA, 5, 0xFEED).unwrap();
            s
        });
        let (mut a, _) = l.accept().unwrap();
        assert_eq!(read_hello(&mut a).unwrap(), (KIND_DATA, 5, 0xFEED));
        drop(t.join().unwrap());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A full hello's worth of bytes (16) that is not rftp.
            s.write_all(b"GET / HTTP/1.1\r\n").unwrap();
            s
        });
        let (mut a, _) = l.accept().unwrap();
        assert!(read_hello(&mut a).is_err());
        drop(t.join().unwrap());
    }

    /// Poll the assembler until a set completes or `deadline` passes.
    fn poll_until(asm: &mut StreamAssembler, deadline: Duration) -> Option<SessionStreams> {
        let t0 = Instant::now();
        loop {
            if let Some(s) = asm.poll() {
                return Some(s);
            }
            if t0.elapsed() > deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Assemble until every offered hello has landed and been polled.
    fn settle(asm: &mut StreamAssembler) -> Option<SessionStreams> {
        loop {
            if let Some(s) = asm.poll() {
                return Some(s);
            }
            if !asm.hellos_pending() {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// A connection that never sends its hello must park a helper
    /// thread, not the accept path: `offer` returns immediately and a
    /// real session assembles while the silent one still pends.
    #[test]
    fn silent_connection_does_not_block_assembly() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let mut asm = StreamAssembler::new(0);

        let _silent = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        let t0 = Instant::now();
        asm.offer(s);
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "offer blocked on the hello read: {:?}",
            t0.elapsed()
        );

        let client = std::thread::spawn(move || {
            let mut ctrl = TcpStream::connect(addr).unwrap();
            write_hello(&mut ctrl, KIND_CTRL, 1, 0x1234).unwrap();
            let mut data = TcpStream::connect(addr).unwrap();
            write_hello(&mut data, KIND_DATA, 0, 0x1234).unwrap();
            (ctrl, data)
        });
        for _ in 0..2 {
            let (s, _) = l.accept().unwrap();
            asm.offer(s);
        }
        let set = poll_until(&mut asm, HELLO_TIMEOUT)
            .expect("session must assemble while the silent connection pends");
        assert_eq!(set.token, 0x1234);
        assert_eq!(set.data.len(), 1);
        assert!(
            t0.elapsed() < HELLO_TIMEOUT,
            "assembly waited out the silent connection's timeout"
        );
        drop(client.join().unwrap());
    }

    /// Tokens are unauthenticated, so a third party that learns one must
    /// not be able to destroy the owner's pending set: the duplicate
    /// control hello is dropped alone and the victim still assembles.
    #[test]
    fn duplicate_control_hello_drops_offender_not_the_victim_set() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let mut asm = StreamAssembler::new(0);
        const TOKEN: u64 = 0xDEAD_BEEF;

        let victim_ctrl = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_hello(&mut s, KIND_CTRL, 1, TOKEN).unwrap();
            s
        });
        let (s, _) = l.accept().unwrap();
        asm.offer(s);
        assert!(settle(&mut asm).is_none(), "set is still partial");

        // The attacker replays a control hello under the stolen token.
        let attacker = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_hello(&mut s, KIND_CTRL, 1, TOKEN).unwrap();
            s
        });
        let (s, _) = l.accept().unwrap();
        asm.offer(s);
        assert!(
            settle(&mut asm).is_none(),
            "duplicate control dropped alone"
        );

        // The victim's data stream still completes its set.
        let victim_data = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_hello(&mut s, KIND_DATA, 0, TOKEN).unwrap();
            s
        });
        let (s, _) = l.accept().unwrap();
        asm.offer(s);
        let set = poll_until(&mut asm, HELLO_TIMEOUT)
            .expect("victim's set must survive the attacker's duplicate");
        assert_eq!(set.token, TOKEN);
        assert_eq!(set.data.len(), 1);
        drop(victim_ctrl.join().unwrap());
        drop(attacker.join().unwrap());
        drop(victim_data.join().unwrap());
    }

    #[test]
    fn transport_pair_connects_and_frames_flow() {
        let listener = NetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let src = std::thread::spawn(move || {
            let t = connect_source(addr, 2, 0).unwrap();
            t.ctrl_tx
                .send(&CtrlMsg::SessionRequest {
                    session: 1,
                    block_size: 4096,
                    channels: 2,
                    total_bytes: 8192,
                    notify_imm: true,
                })
                .unwrap();
            let hdr = DataFrameHeader {
                session: 1,
                seq: 7,
                slot: 3,
                len: 32,
            };
            let wire: Vec<u8> = (0..hdr.wire_len() as u8).map(|b| b ^ 0x5A).collect();
            t.data[1].send(hdr, &wire).unwrap();
            (t, hdr, wire)
        });
        let (mut sink, first) = listener.accept_session(0).unwrap();
        assert!(matches!(first, CtrlMsg::SessionRequest { channels: 2, .. }));
        let (src_t, hdr, wire) = src.join().unwrap();
        let got = sink.data[1].recv_header().unwrap().unwrap();
        assert_eq!(got, hdr);
        let mut buf = vec![0u8; got.wire_len()];
        sink.data[1].recv_wire(&mut buf).unwrap();
        assert_eq!(buf, wire);
        (src_t.shutdown_write)();
        assert!(sink.data[0].recv_header().unwrap().is_none());
        assert!(sink.data[1].recv_header().unwrap().is_none());
        assert!(sink.ctrl_rx.recv().unwrap().is_none());
    }
}
