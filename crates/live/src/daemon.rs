//! `rftpd` — the persistent multi-session transfer daemon.
//!
//! The one-shot `--listen` sink serves exactly one source and exits;
//! real deployments of the paper's middleware run a *daemon*: one
//! registered buffer pool, many concurrent sessions, follow-on jobs
//! reusing the warm listener. This module is that daemon:
//!
//! * **One accept loop, N sessions.** A nonblocking accept loop feeds
//!   every incoming socket to a shared [`StreamAssembler`]; the hello
//!   token groups each source's control + data connections into a
//!   session, interleaved arbitrarily with other sources' connections.
//! * **Shared pool arena.** All slot buffers are allocated (and, on the
//!   io_uring backend, registered) once at startup; each admitted
//!   session gets an all-or-nothing [`SlotArena`] lease and runs the
//!   ordinary sink protocol over the borrowed view — wire slot `i` is
//!   `lease[i]`, so per-session wire bytes are unchanged.
//! * **Admission control.** A session the daemon cannot serve *right
//!   now* gets a typed [`CtrlMsg::SessionBusy`] with a retry hint —
//!   never a hang; a session it can never serve (block too large for
//!   the arena's slots, too many channels) gets a typed
//!   [`CtrlMsg::SessionReject`].
//! * **Weighted-fair credits.** Grants across sessions go through one
//!   [`WeightedFair`] arbiter, so a bulk transfer cannot starve an
//!   interactive one (small jobs get a higher weight).
//! * **Graceful drain.** SIGTERM (or [`DaemonHandle::shutdown`]) stops
//!   admissions, lets in-flight sessions finish inside a bounded
//!   deadline, then aborts stragglers; slot accounting is asserted at
//!   exit — a drained daemon has every arena slot back.

use crate::net::{
    read_one_ctrl_frame, shutdown_all, sink_transport_from_streams, SessionStreams,
    StreamAssembler, HELLO_TIMEOUT,
};
use crate::pipeline::{LiveConfig, LiveReport};
#[cfg(target_os = "linux")]
use crate::shm::ShmSessionStreams;
#[cfg(target_os = "linux")]
use crate::shm::{sink_transport_for_window, SessionWindow, ShmAssembler};
use crate::split::run_sink_session;
use crate::store::SlotBuf;
use crate::transport::UringStats;
use crate::uring::{
    run_shared_uring_session, run_uring_session, spawn_shared_uring_driver, UringHub,
    UringSinkSession,
};
use parking_lot::Mutex;
use rftp_core::wire::{encode_stream_frame, reject_reason, CTRL_SLOT_LEN, FRAME_PREFIX_LEN};
use rftp_core::{CtrlMsg, SlotArena, WeightedFair};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(target_os = "linux")]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Which sink backend each admitted session runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonTransport {
    Tcp,
    Uring,
}

/// Daemon-side knobs. Geometry (block size, channels, total bytes) is
/// per-session and comes from each source's `SessionRequest`; these are
/// the *shared* resources the sessions contend for.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    pub transport: DaemonTransport,
    /// Largest admissible per-session block size; every arena slot is
    /// allocated at this size and a session's blocks live in the prefix.
    pub slot_cap: usize,
    /// Total slots in the shared arena.
    pub arena_slots: u32,
    /// Target pool size per session (clamped down for small jobs).
    pub session_slots: u32,
    /// Concurrent admitted sessions beyond which admission replies busy.
    pub max_sessions: usize,
    /// Largest per-session channel count admission accepts; beyond it
    /// the request is a typed reject. Every admitted channel costs the
    /// sink a reader thread, so this caps what two cheap connections
    /// (the shm hello pair especially — TCP at least pays one socket
    /// per channel) can make the daemon spawn.
    pub max_channels: usize,
    /// Global outstanding-credit budget for the weighted-fair arbiter.
    pub credit_budget: u32,
    /// Jobs of at most this many bytes count as interactive …
    pub interactive_cutoff: u64,
    /// … and get this weight (bulk jobs get weight 1).
    pub interactive_weight: u32,
    /// Retry hint carried in `SessionBusy` replies.
    pub retry_after_ms: u32,
    /// How long a drain waits for in-flight sessions before aborting
    /// the stragglers.
    pub drain_deadline: Duration,
    /// Data socket buffer sizing (0 = OS default).
    pub sockbuf: usize,
    /// When set, session `n`'s payload is written to
    /// `<dst_dir>/session-<n>.dat`; otherwise payloads are
    /// pattern-verified and discarded.
    pub dst_dir: Option<PathBuf>,
    /// When set (Linux only), the daemon also accepts *shared-memory*
    /// sessions at this unix socket path (created owner-only): each
    /// admitted shm session gets its **own** memfd window sized to its
    /// lease (fd shipped over `SCM_RIGHTS`), and placement is the
    /// source's own write — zero receiver copies. The arena lease the
    /// session holds is the admission/fairness currency, so shm, TCP
    /// and uring sessions contend for the one arena exactly as before,
    /// while no tenant ever maps another tenant's memory.
    pub shm_path: Option<PathBuf>,
    /// WAN impairment shim + adaptive controller for TCP sessions: each
    /// admitted session's inbound (data) direction runs through the
    /// emulated path and its sink brain adapts dwell/depth to the
    /// measured RTT. Uring sessions reject the flag (their receive path
    /// bypasses the shim); shm sessions ignore it (no socket to impair).
    pub wan: Option<rftp_faults::WanProfile>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            transport: DaemonTransport::Tcp,
            slot_cap: 256 * 1024,
            arena_slots: 64,
            session_slots: 16,
            max_sessions: 8,
            max_channels: 64,
            credit_budget: 64,
            interactive_cutoff: 4 * 1024 * 1024,
            interactive_weight: 4,
            retry_after_ms: 50,
            drain_deadline: Duration::from_secs(10),
            sockbuf: 0,
            dst_dir: None,
            shm_path: None,
            wan: None,
        }
    }
}

/// Outcome of one served (admitted) session.
#[derive(Debug)]
pub struct SessionSummary {
    /// Order of admission (also the `session-<n>.dat` index).
    pub index: u64,
    pub token: u64,
    /// `Ok` carries the session's transfer report; `Err` is the I/O
    /// error that ended it (a crashed source lands here — its neighbors
    /// don't).
    pub result: io::Result<LiveReport>,
}

/// What the daemon did over its lifetime, returned from [`Daemon::run`]
/// after the drain completes.
#[derive(Debug, Default)]
pub struct DaemonReport {
    /// Sessions admitted (= `sessions.len()`).
    pub served: u64,
    /// Admitted sessions that completed their dataset cleanly.
    pub completed: u64,
    /// Admitted sessions that ended in an error (crashed peer, …).
    pub failed: u64,
    /// Sessions turned away with `SessionBusy`.
    pub rejected_busy: u64,
    /// Sessions turned away with `SessionReject` (impossible geometry).
    pub rejected_geometry: u64,
    /// Connection sets dropped before admission (bad hello, protocol
    /// violation, peer died during negotiation).
    pub dropped_preadmission: u64,
    /// Shared uring driver counters, when the daemon ran one (uring
    /// transport, shared mode): every admitted session's data path went
    /// through this one ring.
    pub uring: Option<UringStats>,
    /// Admitted sessions that ran the shared-memory transport (subset
    /// of `served`; only possible with [`DaemonConfig::shm_path`] set).
    pub shm_sessions: u64,
    pub sessions: Vec<SessionSummary>,
}

/// Shared-ring mode is the uring daemon's default; `RFTP_URING_SHARED=0`
/// forces the ring-per-session baseline (the benchmark's head-to-head
/// shape).
fn shared_uring_enabled() -> bool {
    std::env::var_os("RFTP_URING_SHARED").is_none_or(|v| v != "0")
}

/// Cloneable remote control for a running daemon: tests and signal
/// handlers use it to start the drain.
#[derive(Clone)]
pub struct DaemonHandle {
    stop: Arc<AtomicBool>,
}

impl DaemonHandle {
    /// Begin a graceful drain: stop admitting, finish in-flight
    /// sessions, return from [`Daemon::run`].
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// The SIGTERM hook targets whichever handle was installed last; the
/// handler itself only does an atomic store (async-signal-safe).
static SIGNAL_TARGET: OnceLock<Mutex<Option<DaemonHandle>>> = OnceLock::new();

fn signal_target() -> &'static Mutex<Option<DaemonHandle>> {
    SIGNAL_TARGET.get_or_init(|| Mutex::new(None))
}

extern "C" fn on_sigterm(_sig: i32) {
    // Only atomics in here: no allocation, no locks… except the
    // parking_lot try_lock below, which never blocks. A lost wakeup
    // (lock held at signal time) is acceptable for a drain signal —
    // the operator's next SIGTERM lands.
    if let Some(Some(h)) = signal_target().try_lock().map(|g| g.clone()) {
        h.stop.store(true, Ordering::Release);
    }
}

/// Route SIGTERM to this daemon handle: the default disposition kills
/// the process mid-transfer; with the hook installed, SIGTERM starts
/// the graceful drain instead. No-op off Unix.
pub fn install_sigterm_hook(h: &DaemonHandle) {
    *signal_target().lock() = Some(h.clone());
    #[cfg(unix)]
    {
        // `signal(2)` from the platform libc (std links it already;
        // same precedent as the raw `setsockopt` in `net.rs`). glibc's
        // signal() installs BSD semantics: SA_RESTART, handler stays.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Read timeout for the opening `SessionRequest` of an assembled
/// connection set: a source that completes hellos and then goes silent
/// is dropped, it cannot wedge admission.
const NEGOTIATE_TIMEOUT: Duration = HELLO_TIMEOUT;

/// Accept-loop poll interval while the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

struct Tally {
    completed: u64,
    failed: u64,
    rejected_busy: u64,
    rejected_geometry: u64,
    dropped_preadmission: u64,
    shm_sessions: u64,
    sessions: Vec<SessionSummary>,
}

/// Sockets an in-flight session can be cut loose by when the drain
/// deadline passes: a TCP session's control + data streams, or an shm
/// session's control + notify pair.
enum AbortSet {
    Tcp(Vec<TcpStream>),
    #[cfg(target_os = "linux")]
    Unix(Vec<UnixStream>),
}

impl AbortSet {
    fn cut(&self) {
        match self {
            AbortSet::Tcp(socks) => shutdown_all(socks, Shutdown::Both),
            #[cfg(target_os = "linux")]
            AbortSet::Unix(socks) => {
                for s in socks {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

/// Shared state of a running daemon, borrowed by every session thread.
struct DaemonState {
    cfg: DaemonConfig,
    /// The one slot arena; a session's lease indexes into it.
    slots: Vec<Mutex<SlotBuf>>,
    arena: SlotArena,
    fair: WeightedFair,
    stop: Arc<AtomicBool>,
    active: AtomicUsize,
    admitted_seq: AtomicU64,
    /// Abort hooks for in-flight sessions (token → socket shutdown),
    /// fired on the stragglers when the drain deadline passes.
    aborts: Mutex<Vec<(u64, AbortSet)>>,
    tally: Mutex<Tally>,
}

/// The daemon's shm accept socket; the path is unlinked on drop (and
/// any stale previous path at bind) so a crashed daemon's leftover
/// socket file does not shadow the next run.
#[cfg(target_os = "linux")]
struct ShmEndpoint {
    listener: UnixListener,
    path: PathBuf,
}

#[cfg(target_os = "linux")]
impl Drop for ShmEndpoint {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A bound, not-yet-running daemon. [`Daemon::run`] consumes it and
/// blocks until a drain completes.
pub struct Daemon {
    listener: TcpListener,
    #[cfg(target_os = "linux")]
    shm: Option<ShmEndpoint>,
    state: DaemonState,
}

impl Daemon {
    pub fn bind(addr: impl ToSocketAddrs, cfg: DaemonConfig) -> io::Result<Daemon> {
        assert!(cfg.slot_cap > 0 && cfg.arena_slots > 0 && cfg.session_slots > 0);
        assert!(cfg.max_sessions > 0 && cfg.max_channels > 0);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        #[cfg(not(target_os = "linux"))]
        if cfg.shm_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "shm endpoint requires Linux (memfd + SCM_RIGHTS)",
            ));
        }
        if cfg.wan.is_some() && matches!(cfg.transport, DaemonTransport::Uring) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "WAN emulation requires the tcp transport (the uring receive path \
                 bypasses the impairment shim)",
            ));
        }
        // The shm endpoint is just another way in: each admitted shm
        // session gets its own memfd window at admission time, so the
        // arena slots here stay ordinary process-private buffers for
        // every transport. The socket is owner-only — admission is
        // limited to the daemon's uid.
        #[cfg(target_os = "linux")]
        let shm = match &cfg.shm_path {
            Some(p) => {
                if p.exists() {
                    std::fs::remove_file(p)?;
                }
                let ul = UnixListener::bind(p)?;
                ul.set_nonblocking(true)?;
                {
                    use std::os::unix::fs::PermissionsExt;
                    std::fs::set_permissions(p, std::fs::Permissions::from_mode(0o600))?;
                }
                Some(ShmEndpoint {
                    listener: ul,
                    path: p.clone(),
                })
            }
            None => None,
        };
        let slots: Vec<Mutex<SlotBuf>> = (0..cfg.arena_slots)
            .map(|_| Mutex::new(SlotBuf::new(cfg.slot_cap)))
            .collect();
        let arena = SlotArena::new(cfg.arena_slots);
        let fair = WeightedFair::new(cfg.credit_budget);
        Ok(Daemon {
            listener,
            #[cfg(target_os = "linux")]
            shm,
            state: DaemonState {
                cfg,
                slots,
                arena,
                fair,
                stop: Arc::new(AtomicBool::new(false)),
                active: AtomicUsize::new(0),
                admitted_seq: AtomicU64::new(0),
                aborts: Mutex::new(Vec::new()),
                tally: Mutex::new(Tally {
                    completed: 0,
                    failed: 0,
                    rejected_busy: 0,
                    rejected_geometry: 0,
                    dropped_preadmission: 0,
                    shm_sessions: 0,
                    sessions: Vec::new(),
                }),
            },
        })
    }

    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            stop: Arc::clone(&self.state.stop),
        }
    }

    /// Serve until [`DaemonHandle::shutdown`] (or hooked SIGTERM), then
    /// drain and report. Asserts the arena's slot accounting on the way
    /// out: a clean drain leaks nothing.
    pub fn run(mut self) -> io::Result<DaemonReport> {
        #[cfg(target_os = "linux")]
        let shm = self.shm.take();
        let Daemon {
            listener, state, ..
        } = self;
        let d = &state;
        let mut asm = StreamAssembler::new(d.cfg.sockbuf);
        #[cfg(target_os = "linux")]
        let mut shm_asm = ShmAssembler::new();
        let mut last_sweep = Instant::now();

        // ENFILE/EMFILE have no stable `io::ErrorKind`; match the raw
        // errno (same values on Linux and the BSDs).
        const ENFILE: i32 = 23;
        const EMFILE: i32 = 24;

        let mut driver_stats: Option<UringStats> = None;
        std::thread::scope(|scope| -> io::Result<()> {
            // One shared ring for every uring session: the whole arena
            // is registered as fixed buffers exactly once, here, before
            // any admission — admission only hands out leases into the
            // already-registered table. On kernels that can't run the
            // ring at all the spawn fails and sessions fall back to the
            // ring-per-session path (which fails the same way, typed).
            let shared = if d.cfg.transport == DaemonTransport::Uring && shared_uring_enabled() {
                spawn_shared_uring_driver(scope, &d.slots, d.cfg.slot_cap).ok()
            } else {
                None
            };
            let hub = shared.as_ref().map(|(h, _)| Arc::clone(h));
            while !d.stop.load(Ordering::Acquire) {
                match listener.accept() {
                    // `offer` hands the hello read to a helper thread and
                    // returns at once — a silent client cannot stall the
                    // accept loop (it also pins the socket back to
                    // blocking mode, which accepted sockets don't inherit
                    // on every platform).
                    Ok((s, _)) => asm.offer(s),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    // The peer hung up between SYN and accept — routine
                    // under load, not a listener failure.
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                    // Out of file descriptors during a burst: shed load
                    // and retry rather than taking down the daemon (and
                    // its in-flight sessions).
                    Err(e) if matches!(e.raw_os_error(), Some(ENFILE) | Some(EMFILE)) => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => return Err(e),
                }
                // The shm endpoint shares the loop: drain its accept
                // queue (nonblocking), assemble (control, notify) pairs
                // by hello token, and spawn admitted pairs exactly like
                // TCP sets. The 2 ms idle poll above bounds shm accept
                // latency too.
                #[cfg(target_os = "linux")]
                if let Some(ep) = &shm {
                    loop {
                        match ep.listener.accept() {
                            Ok((s, _)) => shm_asm.offer(s),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                            Err(e) if matches!(e.raw_os_error(), Some(ENFILE) | Some(EMFILE)) => {
                                std::thread::sleep(Duration::from_millis(50));
                                break;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    while let Some(sess) = shm_asm.poll() {
                        scope.spawn(move || serve_shm_session(d, sess));
                    }
                }
                while let Some(streams) = asm.poll() {
                    let hub = hub.clone();
                    scope.spawn(move || serve_session(d, streams, hub.as_deref()));
                }
                if last_sweep.elapsed() >= Duration::from_secs(1) {
                    asm.sweep_stale(Instant::now());
                    #[cfg(target_os = "linux")]
                    shm_asm.sweep_stale(Instant::now());
                    last_sweep = Instant::now();
                }
            }

            // Drain: no more admissions (loop exited); wait for the
            // in-flight sessions, then cut the stragglers' sockets so
            // their threads fail out promptly and the scope can join.
            let deadline = Instant::now() + d.cfg.drain_deadline;
            while d.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if d.active.load(Ordering::Acquire) > 0 {
                for (_, set) in d.aborts.lock().iter() {
                    set.cut();
                }
            }
            // The driver exits once every session has detached (cut
            // stragglers detach on their error path), then hands back
            // its lifetime counters.
            if let Some((hub, jh)) = shared {
                hub.stop();
                driver_stats = jh.join().ok();
            }
            Ok(())
        })?;

        assert_eq!(
            d.arena.free_slots(),
            d.arena.total_slots() as usize,
            "drained daemon leaked arena slots"
        );

        let t = state.tally.into_inner();
        Ok(DaemonReport {
            served: t.sessions.len() as u64,
            completed: t.completed,
            failed: t.failed,
            rejected_busy: t.rejected_busy,
            rejected_geometry: t.rejected_geometry,
            dropped_preadmission: t.dropped_preadmission,
            uring: driver_stats,
            shm_sessions: t.shm_sessions,
            sessions: t.sessions,
        })
    }
}

/// Write one control frame straight to a raw stream (pre-transport:
/// admission replies go out before any backend wraps the session).
fn send_raw_ctrl(s: &mut impl Write, msg: &CtrlMsg) -> io::Result<()> {
    let mut buf = [0u8; FRAME_PREFIX_LEN + CTRL_SLOT_LEN];
    let n = encode_stream_frame(msg, &mut buf);
    s.write_all(&buf[..n])
}

/// Send a terminal admission reply and close the set down politely:
/// shut our write side, then drain until the peer closes (bounded) so
/// an immediate local close can't RST the reply out from under it.
fn reply_and_close(mut streams: SessionStreams, msg: &CtrlMsg) {
    if send_raw_ctrl(&mut streams.ctrl, msg).is_ok() {
        let _ = streams.ctrl.shutdown(Shutdown::Write);
        shutdown_all(&streams.data, Shutdown::Both);
        // The drain is bounded in *total*, not just per read — a peer
        // trickling bytes cannot pin this thread (rejected sets are not
        // in the abort list, so nothing else would cut them loose).
        let deadline = Instant::now() + Duration::from_millis(500);
        let _ = streams
            .ctrl
            .set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 256];
        while Instant::now() < deadline {
            match streams.ctrl.read(&mut sink) {
                Ok(n) if n > 0 => {}
                _ => break, // peer closed, timed out, or errored
            }
        }
    }
}

/// Admission + service for one assembled connection set. Runs on its
/// own thread; everything it leases it returns before exiting.
fn serve_session(d: &DaemonState, mut streams: SessionStreams, hub: Option<&UringHub>) {
    // --- Negotiation: read the opening SessionRequest, bounded. ---
    let first = (|| -> io::Result<CtrlMsg> {
        streams.ctrl.set_read_timeout(Some(NEGOTIATE_TIMEOUT))?;
        let first = read_one_ctrl_frame(&mut streams.ctrl)?;
        streams.ctrl.set_read_timeout(None)?;
        Ok(first)
    })();
    let first = match first {
        Ok(m) => m,
        Err(_) => {
            // Peer died or stalled mid-negotiation: drop the set; the
            // listener itself never blocked on it.
            shutdown_all(&streams.data, Shutdown::Both);
            let _ = streams.ctrl.shutdown(Shutdown::Both);
            d.tally.lock().dropped_preadmission += 1;
            return;
        }
    };
    let CtrlMsg::SessionRequest {
        session,
        block_size,
        channels,
        total_bytes,
        ..
    } = first
    else {
        shutdown_all(&streams.data, Shutdown::Both);
        let _ = streams.ctrl.shutdown(Shutdown::Both);
        d.tally.lock().dropped_preadmission += 1;
        return;
    };

    // --- Admission. Impossible geometry → typed reject; transient
    // saturation → typed busy with a retry hint. Never a hang. ---
    let reject = |reason: u8| CtrlMsg::SessionReject { session, reason };
    let busy = CtrlMsg::SessionBusy {
        session,
        retry_after_ms: d.cfg.retry_after_ms,
    };
    // A zero block size would divide-by-zero in the slot math below —
    // reject it (typed, like every other impossible geometry) before
    // any arithmetic can panic.
    if block_size == 0 || block_size as usize > d.cfg.slot_cap {
        reply_and_close(streams, &reject(reject_reason::BLOCK_TOO_LARGE));
        d.tally.lock().rejected_geometry += 1;
        return;
    }
    if channels == 0
        || channels as usize > d.cfg.max_channels
        || channels as usize != streams.data.len()
        || total_bytes == 0
    {
        // The hello census and the request disagree, the job is empty,
        // or the channel fan-out exceeds what the daemon will spawn
        // reader threads for — a protocol violation dressed as
        // geometry, or geometry it refuses to serve. Typed, either way.
        reply_and_close(streams, &reject(reject_reason::TOO_MANY_CHANNELS));
        d.tally.lock().rejected_geometry += 1;
        return;
    }
    if d.stop.load(Ordering::Acquire) {
        // Draining: admit nothing new, tell the source to come back.
        reply_and_close(streams, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    }
    // Claim a session-table entry before touching the arena so a burst
    // can't both oversubscribe the table and strand a lease.
    if d.active.fetch_add(1, Ordering::AcqRel) >= d.cfg.max_sessions {
        d.active.fetch_sub(1, Ordering::AcqRel);
        reply_and_close(streams, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    }
    let total_blocks = total_bytes.div_ceil(block_size).max(1);
    let want_slots = (d.cfg.session_slots as u64).min(total_blocks).max(1) as usize;
    let Some(lease) = d.arena.lease(want_slots) else {
        d.active.fetch_sub(1, Ordering::AcqRel);
        reply_and_close(streams, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    };

    // --- Admitted: register with the arbiter, run the sink session
    // over the leased view, and undo everything on the way out. ---
    let token = streams.token;
    let index = d.admitted_seq.fetch_add(1, Ordering::AcqRel);
    let weight = if total_bytes <= d.cfg.interactive_cutoff {
        d.cfg.interactive_weight
    } else {
        1
    };
    d.fair.register(token, weight);

    let result = run_admitted(d, streams, &lease, first, index, token, hub);

    d.aborts.lock().retain(|(t, _)| *t != token);
    d.fair.deregister(token);
    d.arena.release(&lease);
    d.active.fetch_sub(1, Ordering::AcqRel);

    let mut t = d.tally.lock();
    match &result {
        Ok(_) => t.completed += 1,
        Err(_) => t.failed += 1,
    }
    t.sessions.push(SessionSummary {
        index,
        token,
        result,
    });
}

/// The admitted path, separated so `serve_session` can unwind the lease
/// and registration on *any* exit, success or error.
fn run_admitted(
    d: &DaemonState,
    streams: SessionStreams,
    lease: &[u32],
    first: CtrlMsg,
    index: u64,
    token: u64,
    hub: Option<&UringHub>,
) -> io::Result<LiveReport> {
    let CtrlMsg::SessionRequest {
        block_size,
        channels,
        total_bytes,
        notify_imm,
        ..
    } = first
    else {
        unreachable!("admission checked the request shape");
    };

    let mut cfg = LiveConfig::new(block_size as usize, channels as usize, total_bytes);
    cfg.pool_blocks = lease.len() as u32;
    cfg.notify_imm = notify_imm;
    if let Some(dir) = &d.cfg.dst_dir {
        cfg.dst_file = Some(dir.join(format!("session-{index}.dat")));
    }
    if let Some(wan) = &d.cfg.wan {
        // The pool stays the arena lease (the admission currency can't
        // grow per-session), but the sink brain adapts its dwell window
        // and clamps its credit depth to the measured path.
        cfg.adaptive = true;
        cfg.wan_rate_bps = wan.rate_bps;
    }

    // Keep socket clones around so the drain deadline can cut a
    // straggler loose (its blocked threads fail out with EOF/EPIPE).
    let mut abort_socks = vec![streams.ctrl.try_clone()?];
    for s in &streams.data {
        abort_socks.push(s.try_clone()?);
    }
    d.aborts.lock().push((token, AbortSet::Tcp(abort_socks)));

    // The leased view: wire slot `i` is arena slot `lease[i]`. Slots
    // are `slot_cap`-sized; a session's blocks live in the prefix.
    let view: Vec<&Mutex<SlotBuf>> = lease.iter().map(|&g| &d.slots[g as usize]).collect();
    let fair = Some((&d.fair, token));
    match d.cfg.transport {
        DaemonTransport::Tcp => {
            let t = sink_transport_from_streams(streams)?;
            let t = match &d.cfg.wan {
                Some(wan) => crate::netem::wrap_sink(t, wan),
                None => t,
            };
            run_sink_session(&cfg, t, Some(first), &view, fair)
        }
        // Shared mode: the session joins the daemon's one driver ring —
        // admission touches no buffer registration (the arena was
        // registered once at startup; see the regression test below).
        // Without a hub (old kernel, or `RFTP_URING_SHARED=0`), each
        // session spins up its own ring and registers its leased view:
        // the ring-per-session baseline.
        DaemonTransport::Uring => match hub {
            Some(hub) => {
                run_shared_uring_session(&cfg, streams, Some(first), &view, lease, hub, fair)
            }
            None => {
                let session = UringSinkSession::from_streams(streams)?;
                run_uring_session(&cfg, session, Some(first), &view, fair)
            }
        },
    }
}

/// Unix-socket twin of [`reply_and_close`] for shm sessions turned
/// away at admission: send the typed reply, shut our write side, and
/// drain (bounded in total) so an immediate close can't lose it.
#[cfg(target_os = "linux")]
fn reply_and_close_shm(mut sess: ShmSessionStreams, msg: &CtrlMsg) {
    if send_raw_ctrl(&mut sess.ctrl, msg).is_ok() {
        let _ = sess.ctrl.shutdown(Shutdown::Write);
        let _ = sess.notify.shutdown(Shutdown::Both);
        let deadline = Instant::now() + Duration::from_millis(500);
        let _ = sess.ctrl.set_read_timeout(Some(Duration::from_millis(100)));
        let mut sink = [0u8; 256];
        while Instant::now() < deadline {
            match sess.ctrl.read(&mut sink) {
                Ok(n) if n > 0 => {}
                _ => break, // peer closed, timed out, or errored
            }
        }
    }
}

/// Admission + service for one assembled shm (control, notify) pair —
/// the same ladder as [`serve_session`], with one extra geometry check:
/// the channel count the control hello announced must match the
/// `SessionRequest`, because the sink fans that many notify readers
/// over the one stream.
#[cfg(target_os = "linux")]
fn serve_shm_session(d: &DaemonState, mut sess: ShmSessionStreams) {
    let first = (|| -> io::Result<CtrlMsg> {
        sess.ctrl.set_read_timeout(Some(NEGOTIATE_TIMEOUT))?;
        let first = read_one_ctrl_frame(&mut sess.ctrl)?;
        sess.ctrl.set_read_timeout(None)?;
        Ok(first)
    })();
    let drop_preadmission = |sess: ShmSessionStreams| {
        let _ = sess.ctrl.shutdown(Shutdown::Both);
        let _ = sess.notify.shutdown(Shutdown::Both);
        d.tally.lock().dropped_preadmission += 1;
    };
    let first = match first {
        Ok(m) => m,
        Err(_) => return drop_preadmission(sess),
    };
    let CtrlMsg::SessionRequest {
        session,
        block_size,
        channels,
        total_bytes,
        ..
    } = first
    else {
        return drop_preadmission(sess);
    };

    let reject = |reason: u8| CtrlMsg::SessionReject { session, reason };
    let busy = CtrlMsg::SessionBusy {
        session,
        retry_after_ms: d.cfg.retry_after_ms,
    };
    if block_size == 0 || block_size as usize > d.cfg.slot_cap {
        reply_and_close_shm(sess, &reject(reject_reason::BLOCK_TOO_LARGE));
        d.tally.lock().rejected_geometry += 1;
        return;
    }
    // The channel cap matters most here: an shm "channel" is only a
    // notify-reader thread over the one stream — two cheap unix
    // connections could otherwise announce 65535 channels and make the
    // session spawn that many threads (thread-spawn failure panics in
    // the session scope and would take the whole daemon down). TCP at
    // least pays one real socket per channel; both paths enforce the
    // same cap for symmetry.
    if channels == 0
        || channels as usize > d.cfg.max_channels
        || channels != sess.channels
        || total_bytes == 0
    {
        reply_and_close_shm(sess, &reject(reject_reason::TOO_MANY_CHANNELS));
        d.tally.lock().rejected_geometry += 1;
        return;
    }
    if d.stop.load(Ordering::Acquire) {
        reply_and_close_shm(sess, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    }
    if d.active.fetch_add(1, Ordering::AcqRel) >= d.cfg.max_sessions {
        d.active.fetch_sub(1, Ordering::AcqRel);
        reply_and_close_shm(sess, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    }
    let total_blocks = total_bytes.div_ceil(block_size).max(1);
    let want_slots = (d.cfg.session_slots as u64).min(total_blocks).max(1) as usize;
    let Some(lease) = d.arena.lease(want_slots) else {
        d.active.fetch_sub(1, Ordering::AcqRel);
        reply_and_close_shm(sess, &busy);
        d.tally.lock().rejected_busy += 1;
        return;
    };

    let token = sess.token;
    let index = d.admitted_seq.fetch_add(1, Ordering::AcqRel);
    let weight = if total_bytes <= d.cfg.interactive_cutoff {
        d.cfg.interactive_weight
    } else {
        1
    };
    d.fair.register(token, weight);

    let result = run_admitted_shm(d, sess, &lease, first, index, token);

    d.aborts.lock().retain(|(t, _)| *t != token);
    d.fair.deregister(token);
    d.arena.release(&lease);
    d.active.fetch_sub(1, Ordering::AcqRel);

    let mut t = d.tally.lock();
    match &result {
        Ok(_) => t.completed += 1,
        Err(_) => t.failed += 1,
    }
    t.shm_sessions += 1;
    t.sessions.push(SessionSummary {
        index,
        token,
        result,
    });
}

/// The admitted shm path: create a memfd window for **this session
/// alone**, sized to its lease, ship the descriptor with the window fd
/// over `SCM_RIGHTS`, and run the ordinary sink session — placement is
/// the source's own write into the window's slots, verified by the
/// per-slot publication word. The arena lease is pure accounting here
/// (it bounds concurrent shm memory to the arena's budget and keeps
/// admission/fairness transport-blind); the fd a tenant receives maps
/// its own window and nothing else, so a hostile or buggy session can
/// scribble only payloads it could already corrupt on the wire.
#[cfg(target_os = "linux")]
fn run_admitted_shm(
    d: &DaemonState,
    sess: ShmSessionStreams,
    lease: &[u32],
    first: CtrlMsg,
    index: u64,
    token: u64,
) -> io::Result<LiveReport> {
    let CtrlMsg::SessionRequest {
        block_size,
        channels,
        total_bytes,
        notify_imm,
        ..
    } = first
    else {
        unreachable!("admission checked the request shape");
    };

    let mut cfg = LiveConfig::new(block_size as usize, channels as usize, total_bytes);
    cfg.pool_blocks = lease.len() as u32;
    cfg.notify_imm = notify_imm;
    if let Some(dir) = &d.cfg.dst_dir {
        cfg.dst_file = Some(dir.join(format!("session-{index}.dat")));
    }

    d.aborts.lock().push((
        token,
        AbortSet::Unix(vec![sess.ctrl.try_clone()?, sess.notify.try_clone()?]),
    ));

    let sw = SessionWindow::create(lease.len(), block_size as usize)?;
    sw.send_descriptor(&sess.ctrl)?;
    let snk_bufs = sw.slot_bufs();
    let win = Arc::new(sw.into_sink_window());
    let view: Vec<&Mutex<SlotBuf>> = snk_bufs.iter().collect();
    let t = sink_transport_for_window(sess.ctrl, sess.notify, channels as usize, win)?;
    run_sink_session(&cfg, t, Some(first), &view, Some((&d.fair, token)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::connect_streams;

    fn start(
        cfg: DaemonConfig,
    ) -> (
        std::net::SocketAddr,
        DaemonHandle,
        std::thread::JoinHandle<io::Result<DaemonReport>>,
    ) {
        let d = Daemon::bind("127.0.0.1:0", cfg).unwrap();
        let addr = d.local_addr().unwrap();
        let h = d.handle();
        let jh = std::thread::spawn(move || d.run());
        (addr, h, jh)
    }

    fn request(streams: &mut SessionStreams, block_size: u64) -> CtrlMsg {
        send_raw_ctrl(
            &mut streams.ctrl,
            &CtrlMsg::SessionRequest {
                session: 1,
                block_size,
                channels: 1,
                total_bytes: 1 << 20,
                notify_imm: false,
            },
        )
        .unwrap();
        streams
            .ctrl
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        read_one_ctrl_frame(&mut streams.ctrl).unwrap()
    }

    /// A `SessionRequest` with `block_size: 0` used to divide-by-zero in
    /// the slot math, leak a session-table entry, and take down the
    /// whole daemon when the panic re-raised at scope join. It must be
    /// an ordinary typed reject — and admission must survive repeats.
    #[test]
    fn zero_block_size_is_a_typed_reject_not_a_panic() {
        let (addr, handle, jh) = start(DaemonConfig::default());
        for _ in 0..2 {
            let mut streams = connect_streams(addr, 1, 0).unwrap();
            let reply = request(&mut streams, 0);
            assert!(matches!(reply, CtrlMsg::SessionReject { .. }), "{reply:?}");
        }
        handle.shutdown();
        let report = jh.join().expect("daemon must not panic").unwrap();
        assert_eq!(report.rejected_geometry, 2, "{report:?}");
        assert_eq!(report.served, 0);
    }

    /// A channel count above the daemon's cap is a typed reject, not
    /// `channels` reader threads: each admitted channel costs a thread,
    /// and thread-spawn failure would panic through the session scope
    /// and take the whole daemon down.
    #[test]
    fn oversized_channel_count_is_a_typed_reject() {
        let cfg = DaemonConfig {
            max_channels: 2,
            ..DaemonConfig::default()
        };
        let (addr, handle, jh) = start(cfg);
        let mut streams = connect_streams(addr, 3, 0).unwrap();
        send_raw_ctrl(
            &mut streams.ctrl,
            &CtrlMsg::SessionRequest {
                session: 1,
                block_size: 64 * 1024,
                channels: 3,
                total_bytes: 1 << 20,
                notify_imm: false,
            },
        )
        .unwrap();
        streams
            .ctrl
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let reply = read_one_ctrl_frame(&mut streams.ctrl).unwrap();
        assert!(matches!(reply, CtrlMsg::SessionReject { .. }), "{reply:?}");
        handle.shutdown();
        let report = jh.join().expect("daemon must not panic").unwrap();
        assert_eq!(report.rejected_geometry, 1, "{report:?}");
        assert_eq!(report.served, 0);
    }

    /// Open one shm (control, notify) pair announcing an absurd channel
    /// count and read one unix control frame back. Returns the reply.
    #[cfg(target_os = "linux")]
    fn shm_request(sock: &std::path::Path, channels: u16, block_size: u64) -> io::Result<CtrlMsg> {
        use crate::net::{new_session_token, write_hello, KIND_CTRL, KIND_DATA};
        let token = new_session_token();
        let mut ctrl = UnixStream::connect(sock)?;
        write_hello(&mut ctrl, KIND_CTRL, channels, token)?;
        let mut notify = UnixStream::connect(sock)?;
        write_hello(&mut notify, KIND_DATA, 0, token)?;
        send_raw_ctrl(
            &mut ctrl,
            &CtrlMsg::SessionRequest {
                session: 1,
                block_size,
                channels,
                total_bytes: 1 << 20,
                notify_imm: false,
            },
        )?;
        ctrl.set_read_timeout(Some(Duration::from_secs(5)))?;
        read_one_ctrl_frame(&mut ctrl)
    }

    /// Two cheap unix connections must not be able to make the daemon
    /// spawn 65535 notify readers: the shm hello has no per-channel
    /// connection cost (unlike TCP), so the admission cap is the only
    /// bound. The reject must be typed, and the daemon must keep
    /// serving afterwards.
    #[cfg(target_os = "linux")]
    #[test]
    fn shm_hello_cannot_spawn_unbounded_channel_readers() {
        if !crate::shm::shm_supported() {
            eprintln!("skipping: shm transport not supported on this host");
            return;
        }
        let sock = std::env::temp_dir().join(format!("rftpd-chancap-{}.sock", std::process::id()));
        let cfg = DaemonConfig {
            slot_cap: 64 * 1024,
            shm_path: Some(sock.clone()),
            ..DaemonConfig::default()
        };
        let (_, handle, jh) = start(cfg);
        let reply = shm_request(&sock, u16::MAX, 64 * 1024).unwrap();
        assert!(matches!(reply, CtrlMsg::SessionReject { .. }), "{reply:?}");

        // The daemon survived and still admits a well-formed session.
        let client = {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let cfg = LiveConfig::new(64 * 1024, 2, 1 << 20);
                let t = crate::shm::connect_source_shm(&sock, cfg.channels)?;
                crate::split::run_split_source(&cfg, t)
            })
        };
        client.join().unwrap().unwrap();
        handle.shutdown();
        let report = jh.join().expect("daemon must not panic").unwrap();
        assert_eq!(report.rejected_geometry, 1, "{report:?}");
        assert_eq!(report.completed, 1, "{report:?}");
        assert_eq!(report.shm_sessions, 1, "{report:?}");
    }

    /// The descriptor an admitted shm session receives must cover its
    /// own lease and nothing else — a tenant's fd maps a window created
    /// for that session, never the arena (one tenant reading or
    /// scribbling another's in-flight payloads through a shared slab fd
    /// was the isolation hole this pins shut).
    #[cfg(target_os = "linux")]
    #[test]
    fn shm_descriptor_covers_only_the_session_lease() {
        if !crate::shm::shm_supported() {
            eprintln!("skipping: shm transport not supported on this host");
            return;
        }
        use crate::net::{new_session_token, write_hello, KIND_CTRL, KIND_DATA};
        let sock = std::env::temp_dir().join(format!("rftpd-leasewin-{}.sock", std::process::id()));
        let cfg = DaemonConfig {
            slot_cap: 256 * 1024,
            arena_slots: 64,
            session_slots: 8,
            shm_path: Some(sock.clone()),
            ..DaemonConfig::default()
        };
        let (_, handle, jh) = start(cfg);

        let block = 64 * 1024u64;
        let token = new_session_token();
        let mut ctrl = UnixStream::connect(&sock).unwrap();
        write_hello(&mut ctrl, KIND_CTRL, 2, token).unwrap();
        let mut notify = UnixStream::connect(&sock).unwrap();
        write_hello(&mut notify, KIND_DATA, 0, token).unwrap();
        send_raw_ctrl(
            &mut ctrl,
            &CtrlMsg::SessionRequest {
                session: 1,
                block_size: block,
                channels: 2,
                total_bytes: 4 << 20, // 64 blocks >> 8 session slots
                notify_imm: false,
            },
        )
        .unwrap();
        // Read the raw descriptor head off the control stream (a plain
        // read discards the SCM_RIGHTS fd, which is fine — we only
        // check the claimed geometry here).
        ctrl.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut head = [0u8; 28];
        ctrl.read_exact(&mut head).unwrap();
        assert_eq!(
            u16::from_be_bytes([head[0], head[1]]),
            0xFFFF,
            "not a descriptor"
        );
        let slots = u32::from_be_bytes(head[4..8].try_into().unwrap());
        let stride = u64::from_be_bytes(head[8..16].try_into().unwrap());
        let window_len = u64::from_be_bytes(head[16..24].try_into().unwrap());
        assert_eq!(slots, 8, "window must span exactly the lease");
        assert_eq!(stride, SlotBuf::stride(block as usize) as u64);
        assert_eq!(
            window_len,
            8 * stride,
            "window must be the lease's 8 slots, not the 64-slot arena"
        );

        // Abandon the session (its thread fails out on EOF) and drain.
        drop(ctrl);
        drop(notify);
        handle.shutdown();
        let report = jh.join().expect("daemon must not panic").unwrap();
        assert_eq!(report.served, 1, "{report:?}");
    }

    /// End-to-end over the shared uring driver: three concurrent uring
    /// sources against one daemon. Every session's data path must run
    /// on the daemon's ONE driver thread, and admission must not touch
    /// buffer registration — the arena is registered exactly once at
    /// driver startup, so the shared ring's `registrations` counter
    /// stays at 1 no matter how many sessions were admitted.
    #[test]
    fn shared_uring_daemon_one_thread_one_registration() {
        if !crate::uring::uring_supported() {
            eprintln!("skipping: io_uring not supported by this kernel");
            return;
        }
        if !shared_uring_enabled() {
            eprintln!("skipping: RFTP_URING_SHARED=0 pins the baseline");
            return;
        }
        let cfg = DaemonConfig {
            transport: DaemonTransport::Uring,
            slot_cap: 64 * 1024,
            arena_slots: 24,
            session_slots: 8,
            ..DaemonConfig::default()
        };
        let (addr, handle, jh) = start(cfg);
        let n = 3;
        let clients: Vec<_> = (0..n)
            .map(|_| {
                std::thread::spawn(move || {
                    let cfg = LiveConfig::new(64 * 1024, 2, 4 << 20);
                    let t = crate::uring::connect_source_uring(addr, cfg.channels, 0)?;
                    crate::split::run_split_source(&cfg, t)
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap().unwrap();
        }
        handle.shutdown();
        let report = jh.join().unwrap().unwrap();
        assert_eq!(report.completed, n as u64, "{report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        for s in &report.sessions {
            let r = s.result.as_ref().unwrap();
            assert_eq!(r.checksum_failures, 0);
            assert_eq!(
                r.transport_threads, 1,
                "all data paths share one driver thread"
            );
            assert!(r.uring.is_some(), "session report carries ring stats");
        }
        let stats = report.uring.expect("daemon reports its driver's stats");
        assert!(stats.enters > 0 && stats.cqes > 0);
        assert_eq!(
            stats.registrations, 1,
            "admission must never re-register buffers: {stats:?}"
        );
    }

    /// One daemon, two transports, one arena: an shm session (its own
    /// per-session memfd window) and a TCP session run concurrently,
    /// each against its own disjoint arena lease. Both must verify
    /// clean, and the report must count exactly one shm session —
    /// proof one admission ladder serves both the zero-copy path and
    /// the ordinary copy path.
    #[cfg(target_os = "linux")]
    #[test]
    fn shm_and_tcp_sessions_share_one_arena() {
        if !crate::shm::shm_supported() {
            eprintln!("skipping: shm transport not supported on this host");
            return;
        }
        let sock = std::env::temp_dir().join(format!("rftpd-test-{}.sock", std::process::id()));
        let cfg = DaemonConfig {
            slot_cap: 64 * 1024,
            arena_slots: 24,
            session_slots: 8,
            shm_path: Some(sock.clone()),
            ..DaemonConfig::default()
        };
        let (addr, handle, jh) = start(cfg);

        let shm_client = {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let cfg = LiveConfig::new(64 * 1024, 2, 4 << 20);
                let t = crate::shm::connect_source_shm(&sock, cfg.channels)?;
                crate::split::run_split_source(&cfg, t)
            })
        };
        let tcp_client = std::thread::spawn(move || {
            let cfg = LiveConfig::new(64 * 1024, 2, 4 << 20);
            let t = crate::net::connect_source(addr, cfg.channels, 0)?;
            crate::split::run_split_source(&cfg, t)
        });
        let shm_src = shm_client.join().unwrap().unwrap();
        let tcp_src = tcp_client.join().unwrap().unwrap();
        assert!(shm_src.blocks > 0 && tcp_src.blocks > 0);

        handle.shutdown();
        let report = jh.join().unwrap().unwrap();
        assert_eq!(report.completed, 2, "{report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(report.shm_sessions, 1, "{report:?}");
        for s in &report.sessions {
            let r = s.result.as_ref().unwrap();
            assert_eq!(r.checksum_failures, 0);
        }
        assert!(!sock.exists(), "drained daemon must unlink its shm socket");
    }

    /// A rejected peer that keeps trickling bytes on its control stream
    /// must not pin the reply thread past the drain's total bound — the
    /// daemon still shuts down promptly.
    #[test]
    fn trickling_peer_cannot_pin_a_rejected_session() {
        let cfg = DaemonConfig {
            slot_cap: 4096,
            ..DaemonConfig::default()
        };
        let (addr, handle, jh) = start(cfg);
        let mut streams = connect_streams(addr, 1, 0).unwrap();
        let reply = request(&mut streams, 64 * 1024); // block > slot_cap
        assert!(matches!(reply, CtrlMsg::SessionReject { .. }), "{reply:?}");

        let mut wr = streams.ctrl.try_clone().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let trickler = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if wr.write_all(&[0]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
        };

        handle.shutdown();
        let t0 = Instant::now();
        let report = jh.join().unwrap().unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "drain pinned by a trickling peer: {:?}",
            t0.elapsed()
        );
        assert_eq!(report.rejected_geometry, 1, "{report:?}");
        stop.store(true, Ordering::Release);
        trickler.join().unwrap();
    }
}
