//! Deterministic WAN impairment over any live transport.
//!
//! The live pipeline's transports all terminate in the same four traits
//! ([`CtrlTx`]/[`CtrlRx`]/[`DataTx`]/[`DataRx`]), so a path's wide-area
//! character — propagation delay, jitter, a rate cap, loss, reorder —
//! can be injected *between* the pipeline and any backend (in-process
//! channels, TCP, the daemon's per-session streams) by wrapping those
//! endpoints. The wrapper is driven by a seeded
//! [`WanProfile`](rftp_faults::WanProfile): the same profile + seed
//! replays the identical impairment sequence, and an identity profile
//! returns the transport untouched.
//!
//! Placement follows the real path's asymmetry: **each endpoint impairs
//! its own inbound direction.** The sink's shim owns the data path
//! (loss, reorder, serialization against the rate cap, propagation
//! delay) plus the inbound control frames; the source's shim delays the
//! returning ack/credit stream. Wrapping both halves of a connection
//! therefore yields the full round trip — `one_way` outbound on data,
//! `one_way` back on control — which is exactly what the protocol's
//! credit loop experiences on a real WAN.
//!
//! Mechanically each wrapped receive endpoint is a *feeder thread* that
//! drains the inner endpoint eagerly, stamps every frame with a
//! deliver-at instant (arrival + serialization + propagation + jitter),
//! and queues it; the pipeline-facing endpoint pops and sleeps until
//! the stamp. Draining eagerly matters: the in-flight bandwidth-delay
//! product (61 MB on the ANI WAN) lives in this queue rather than in
//! kernel socket buffers, so `rmem_max` clamps cannot silently throttle
//! the emulated pipe. The queue is naturally bounded by the source's
//! pool — only credited blocks are ever in flight.
//!
//! Control frames are delayed but never dropped or reordered: the
//! protocol runs its control channel over a reliable transport (the
//! paper's SEND/RECV channel), and only data frames have a recovery
//! path (the retransmit watchdog + claim-bitmap dedup).

use crate::transport::{CtrlRx, DataRx, DataTx, SinkTransport, SourceTransport};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::Mutex;
use rftp_core::wire::{CtrlMsg, DataFrameHeader};
pub use rftp_faults::{WanDice, WanProfile};
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sleep with sub-scheduler-quantum precision: coarse-sleep to within
/// [`SPIN_WINDOW`] of the deadline, then spin. LAN presets have one-way
/// delays (6.5–13 µs) far below what `nanosleep` wakes up for reliably;
/// burning the tail keeps the emulated RTT honest at both scales.
pub(crate) fn sleep_until(deadline: Instant) {
    const SPIN_WINDOW: Duration = Duration::from_micros(60);
    let now = Instant::now();
    if deadline <= now {
        return;
    }
    let d = deadline - now;
    if d > SPIN_WINDOW {
        std::thread::sleep(d - SPIN_WINDOW);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Feeder→endpoint queue depth. In-flight frames are bounded by the
/// source's credited pool, so this only needs to exceed the largest
/// pool the adaptive controller will size (BDP-scale, ~2000 blocks on
/// the ANI WAN at 64 KiB blocks) — a full queue would back the BDP into
/// kernel socket buffers and re-introduce the `rmem_max` throttle.
const FEEDER_QUEUE: usize = 8192;

/// The shared-link scheduling state one profile instantiates: all data
/// channels serialize against one rate cap, like frames on one wire.
#[derive(Clone)]
struct Path {
    one_way: Duration,
    jitter: Duration,
    loss_p: f64,
    reorder_p: f64,
    rate_bps: Option<f64>,
    link_free: Arc<Mutex<Instant>>,
}

impl Path {
    fn new(p: &WanProfile) -> Path {
        Path {
            one_way: p.one_way,
            jitter: p.jitter,
            loss_p: p.loss_p,
            reorder_p: p.reorder_p,
            rate_bps: p.rate_bps,
            link_free: Arc::new(Mutex::new(Instant::now())),
        }
    }

    /// Deliver-at instant for a frame of `wire_len` bytes arriving now:
    /// queue behind whatever the link is already carrying, pay the
    /// serialization time, then propagate.
    fn schedule(&self, wire_len: usize, dice: &mut WanDice) -> Instant {
        let arrival = Instant::now();
        let txed = match self.rate_bps {
            Some(r) => {
                let ser = Duration::from_secs_f64(wire_len as f64 * 8.0 / r);
                let mut free = self.link_free.lock();
                let done = (*free).max(arrival) + ser;
                *free = done;
                done
            }
            None => arrival,
        };
        txed + self.one_way + dice.jitter(self.jitter)
    }
}

// ---------------------------------------------------------------------------
// Control link: delay only
// ---------------------------------------------------------------------------

enum CtrlEvt {
    Msg(CtrlMsg, Instant),
    Fail(io::Error),
}

struct NetemCtrlRx {
    rx: Receiver<CtrlEvt>,
}

impl CtrlRx for NetemCtrlRx {
    fn recv(&mut self) -> io::Result<Option<CtrlMsg>> {
        match self.rx.recv() {
            Err(_) => Ok(None),
            Ok(CtrlEvt::Fail(e)) => Err(e),
            Ok(CtrlEvt::Msg(msg, at)) => {
                sleep_until(at);
                Ok(Some(msg))
            }
        }
    }
}

/// Feeder-thread delay for a control receive endpoint. Reading eagerly
/// and stamping arrival + delay keeps messages *pipelined*: back-to-back
/// frames each shift by one latency, they do not serialize one delay
/// per frame.
fn delay_ctrl_rx(
    mut inner: Box<dyn CtrlRx>,
    one_way: Duration,
    jitter: Duration,
    mut dice: WanDice,
) -> Box<dyn CtrlRx> {
    let (tx, rx) = bounded(FEEDER_QUEUE);
    std::thread::Builder::new()
        .name("netem-ctrl".into())
        .spawn(move || loop {
            match inner.recv() {
                Ok(Some(msg)) => {
                    let at = Instant::now() + one_way + dice.jitter(jitter);
                    if tx.send(CtrlEvt::Msg(msg, at)).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(CtrlEvt::Fail(e));
                    break;
                }
            }
        })
        .expect("spawn netem control feeder");
    Box::new(NetemCtrlRx { rx })
}

// ---------------------------------------------------------------------------
// Data links: delay + jitter + rate + loss + reorder
// ---------------------------------------------------------------------------

struct Frame {
    hdr: DataFrameHeader,
    wire: Box<[u8]>,
    at: Instant,
}

enum DataEvt {
    Frame(Frame),
    Fail(io::Error),
}

struct NetemDataRx {
    rx: Receiver<DataEvt>,
    pending: Option<Box<[u8]>>,
}

impl DataRx for NetemDataRx {
    fn recv_header(&mut self) -> io::Result<Option<DataFrameHeader>> {
        debug_assert!(self.pending.is_none(), "previous frame not consumed");
        match self.rx.recv() {
            Err(_) => Ok(None),
            Ok(DataEvt::Fail(e)) => Err(e),
            Ok(DataEvt::Frame(f)) => {
                sleep_until(f.at);
                self.pending = Some(f.wire);
                Ok(Some(f.hdr))
            }
        }
    }

    fn recv_wire(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let wire = self.pending.take().expect("recv_wire without a header");
        buf[..wire.len()].copy_from_slice(&wire);
        Ok(())
    }

    fn discard_wire(&mut self, _wire_len: usize) -> io::Result<()> {
        self.pending.take().expect("discard_wire without a header");
        Ok(())
    }
}

fn impair_data_rx(mut inner: Box<dyn DataRx>, path: Path, mut dice: WanDice) -> Box<dyn DataRx> {
    let (tx, rx) = bounded(FEEDER_QUEUE);
    std::thread::Builder::new()
        .name("netem-data".into())
        .spawn(move || {
            // At most one frame stashed for reordering: a stashed frame
            // swaps with its successor, the minimal adjacent transposition
            // real multi-path reorder produces at the receiver.
            let mut stash: Option<Frame> = None;
            loop {
                let hdr = match inner.recv_header() {
                    Ok(Some(hdr)) => hdr,
                    Ok(None) => break,
                    Err(e) => {
                        let _ = tx.send(DataEvt::Fail(e));
                        return;
                    }
                };
                let wire_len = hdr.wire_len();
                if dice.roll(path.loss_p) {
                    // Lost on the wire: consume without placing. The
                    // source's watchdog owns recovery.
                    if let Err(e) = inner.discard_wire(wire_len) {
                        let _ = tx.send(DataEvt::Fail(e));
                        return;
                    }
                    continue;
                }
                let mut wire = vec![0u8; wire_len].into_boxed_slice();
                if let Err(e) = inner.recv_wire(&mut wire) {
                    let _ = tx.send(DataEvt::Fail(e));
                    return;
                }
                let at = path.schedule(wire_len, &mut dice);
                let frame = Frame { hdr, wire, at };
                if stash.is_none() && dice.roll(path.reorder_p) {
                    stash = Some(frame);
                    continue;
                }
                if tx.send(DataEvt::Frame(frame)).is_err() {
                    return;
                }
                if let Some(late) = stash.take() {
                    if tx.send(DataEvt::Frame(late)).is_err() {
                        return;
                    }
                }
            }
            // Clean end-of-stream: a frame still stashed for reorder was
            // merely delayed, not lost — flush it before hanging up.
            if let Some(late) = stash.take() {
                let _ = tx.send(DataEvt::Frame(late));
            }
        })
        .expect("spawn netem data feeder");
    Box::new(NetemDataRx { rx, pending: None })
}

// ---------------------------------------------------------------------------
// Source-side data impairment (for sinks that cannot host the shim)
// ---------------------------------------------------------------------------

struct LossyDataTx {
    inner: Box<dyn DataTx>,
    loss_p: f64,
    dice: Mutex<WanDice>,
}

impl DataTx for LossyDataTx {
    fn send(&self, hdr: DataFrameHeader, wire: &[u8]) -> io::Result<()> {
        if self.dice.lock().roll(self.loss_p) {
            return Ok(());
        }
        self.inner.send(hdr, wire)
    }

    fn send_block(
        &self,
        hdr: DataFrameHeader,
        bufs: &[Mutex<crate::store::SlotBuf>],
        block: u32,
    ) -> io::Result<()> {
        if self.dice.lock().roll(self.loss_p) {
            return Ok(());
        }
        self.inner.send_block(hdr, bufs, block)
    }

    fn kick(&self) -> io::Result<()> {
        self.inner.kick()
    }
}

// ---------------------------------------------------------------------------
// Public wrappers
// ---------------------------------------------------------------------------

/// Wrap the sink half: inbound data frames pick up loss, reorder,
/// serialization against the rate cap, propagation delay and jitter;
/// inbound control frames pick up propagation delay and jitter.
/// An identity profile returns the transport untouched.
pub fn wrap_sink(t: SinkTransport, p: &WanProfile) -> SinkTransport {
    if p.is_identity() {
        return t;
    }
    let path = Path::new(p);
    let data = t
        .data
        .into_iter()
        .enumerate()
        .map(|(i, rx)| impair_data_rx(rx, path.clone(), p.dice(1 + i as u64)))
        .collect();
    SinkTransport {
        ctrl_tx: t.ctrl_tx,
        ctrl_rx: delay_ctrl_rx(t.ctrl_rx, p.one_way, p.jitter, p.dice(0)),
        data,
        abort: t.abort,
    }
}

/// Wrap the source half: the returning ack/credit stream picks up the
/// sink→source propagation delay. Data impairment stays with the sink's
/// shim (see [`wrap_source_datapath`] when the sink cannot host one).
pub fn wrap_source(t: SourceTransport, p: &WanProfile) -> SourceTransport {
    if p.is_identity() {
        return t;
    }
    SourceTransport {
        ctrl_rx: delay_ctrl_rx(t.ctrl_rx, p.one_way, p.jitter, p.dice(0x51)),
        ..t
    }
}

/// Wrap the source half for a sink that cannot host the shim (the
/// io_uring sink's data path never passes through [`DataRx`]): the full
/// round trip folds into the inbound control delay, and data loss is
/// applied at send. Propagation on the data direction is approximated —
/// the control loop still sees the true RTT, which is what the credit
/// ramp, the watchdog, and the adaptive controller key on.
pub fn wrap_source_datapath(t: SourceTransport, p: &WanProfile) -> SourceTransport {
    if p.is_identity() {
        return t;
    }
    let data: Vec<Box<dyn DataTx>> = Arc::try_unwrap(t.data)
        .unwrap_or_else(|_| panic!("source data links already shared"))
        .into_iter()
        .enumerate()
        .map(|(i, tx)| {
            Box::new(LossyDataTx {
                inner: tx,
                loss_p: p.loss_p,
                dice: Mutex::new(p.dice(0x7E + i as u64)),
            }) as Box<dyn DataTx>
        })
        .collect();
    SourceTransport {
        ctrl_rx: delay_ctrl_rx(t.ctrl_rx, p.rtt(), p.jitter, p.dice(0x51)),
        data: Arc::new(data),
        ..t
    }
}

/// Wrap both halves of an in-process pair — the full emulated path.
pub fn wrap_pair(
    pair: (SourceTransport, SinkTransport),
    p: &WanProfile,
) -> (SourceTransport, SinkTransport) {
    (wrap_source(pair.0, p), wrap_sink(pair.1, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::channel_transport;

    fn hdr(seq: u32) -> DataFrameHeader {
        DataFrameHeader {
            session: 1,
            seq,
            slot: 0,
            len: 64,
        }
    }

    fn send_frame(t: &SourceTransport, ch: usize, seq: u32) {
        let h = hdr(seq);
        let wire: Vec<u8> = (0..h.wire_len()).map(|i| (i as u8) ^ seq as u8).collect();
        t.data[ch].send(h, &wire).unwrap();
    }

    fn drain_seqs(rx: &mut dyn DataRx) -> Vec<u32> {
        let mut seqs = Vec::new();
        while let Some(h) = rx.recv_header().unwrap() {
            rx.discard_wire(h.wire_len()).unwrap();
            seqs.push(h.seq);
        }
        seqs
    }

    #[test]
    fn identity_profile_is_a_passthrough() {
        let p = WanProfile::clean();
        let (src, mut snk) = wrap_pair(channel_transport(1, 8), &p);
        send_frame(&src, 0, 0);
        let t0 = Instant::now();
        let got = snk.data[0].recv_header().unwrap().unwrap();
        assert_eq!(got.seq, 0);
        assert!(t0.elapsed() < Duration::from_millis(5));
        snk.data[0].discard_wire(got.wire_len()).unwrap();
    }

    #[test]
    fn data_and_ctrl_pick_up_one_way_delay() {
        let p = WanProfile::parse("rtt=20ms").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 8), &p);

        let t0 = Instant::now();
        send_frame(&src, 0, 7);
        let got = snk.data[0].recv_header().unwrap().unwrap();
        let data_lat = t0.elapsed();
        assert_eq!(got.seq, 7);
        assert!(data_lat >= Duration::from_millis(10), "{data_lat:?}");
        let mut buf = vec![0u8; got.wire_len()];
        snk.data[0].recv_wire(&mut buf).unwrap();
        assert_eq!(buf[1], 1 ^ 7);

        let t1 = Instant::now();
        snk.ctrl_tx
            .send(&CtrlMsg::MrRequest { session: 1 })
            .unwrap();
        let mut src = src;
        let msg = src.ctrl_rx.recv().unwrap();
        assert_eq!(msg, Some(CtrlMsg::MrRequest { session: 1 }));
        assert!(t1.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn back_to_back_ctrl_frames_pipeline_instead_of_serializing() {
        let p = WanProfile::parse("rtt=40ms").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 8), &p);
        for s in 0..10 {
            src.ctrl_tx
                .send(&CtrlMsg::MrRequest { session: s })
                .unwrap();
        }
        let t0 = Instant::now();
        for s in 0..10 {
            assert_eq!(
                snk.ctrl_rx.recv().unwrap(),
                Some(CtrlMsg::MrRequest { session: s })
            );
        }
        let lat = t0.elapsed();
        // One latency shift for the burst, not ten stacked delays.
        assert!(lat >= Duration::from_millis(15), "{lat:?}");
        assert!(
            lat < Duration::from_millis(120),
            "delays serialized: {lat:?}"
        );
    }

    #[test]
    fn certain_loss_drops_every_data_frame_but_no_ctrl() {
        let p = WanProfile::parse("drop=1.0").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 8), &p);
        for s in 0..4 {
            send_frame(&src, 0, s);
        }
        src.ctrl_tx
            .send(&CtrlMsg::MrRequest { session: 9 })
            .unwrap();
        (src.shutdown_write)();
        assert_eq!(drain_seqs(snk.data[0].as_mut()), Vec::<u32>::new());
        // Control is the reliable channel: delayed, never dropped.
        assert_eq!(
            snk.ctrl_rx.recv().unwrap(),
            Some(CtrlMsg::MrRequest { session: 9 })
        );
    }

    #[test]
    fn certain_reorder_swaps_adjacent_frames() {
        let p = WanProfile::parse("reorder=1.0").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 16), &p);
        for s in 0..4 {
            send_frame(&src, 0, s);
        }
        (src.shutdown_write)();
        // Every frame stashes and swaps with its successor: 1,0,3,2.
        assert_eq!(drain_seqs(snk.data[0].as_mut()), vec![1, 0, 3, 2]);
    }

    #[test]
    fn trailing_reorder_stash_is_flushed_at_eof() {
        let p = WanProfile::parse("reorder=1.0").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 16), &p);
        for s in 0..3 {
            send_frame(&src, 0, s);
        }
        (src.shutdown_write)();
        // 0 stashes, 1 passes, 0 flushes behind it, 2 stashes → EOF flush.
        assert_eq!(drain_seqs(snk.data[0].as_mut()), vec![1, 0, 2]);
    }

    #[test]
    fn rate_cap_spaces_deliveries_by_serialization_time() {
        // 1 Mbit/s over ~88-byte frames: ~0.7 ms each; 8 frames ≥ 4.9 ms
        // of serialization even though the sends are instantaneous.
        let p = WanProfile::parse("rate=1M").unwrap();
        let (src, mut snk) = wrap_pair(channel_transport(1, 16), &p);
        let t0 = Instant::now();
        for s in 0..8 {
            send_frame(&src, 0, s);
        }
        (src.shutdown_write)();
        let seqs = drain_seqs(snk.data[0].as_mut());
        let lat = t0.elapsed();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        assert!(lat >= Duration::from_millis(4), "{lat:?}");
    }

    #[test]
    fn same_seed_replays_the_same_survivors() {
        let survivors = |seed: u64| -> Vec<u32> {
            let p = WanProfile::parse(&format!("drop=0.5,seed={seed}")).unwrap();
            let (src, mut snk) = wrap_pair(channel_transport(1, 64), &p);
            for s in 0..32 {
                send_frame(&src, 0, s);
            }
            (src.shutdown_write)();
            drain_seqs(snk.data[0].as_mut())
        };
        let a = survivors(7);
        assert_eq!(a, survivors(7), "same seed must replay the same drops");
        assert_ne!(a, survivors(8), "different seed draws a different pattern");
        assert!(!a.is_empty() && a.len() < 32, "p=0.5 drops some, not all");
    }

    #[test]
    fn source_datapath_wrap_applies_loss_at_send() {
        let p = WanProfile::parse("drop=1.0").unwrap();
        let (src, snk) = channel_transport(1, 8);
        let src = wrap_source_datapath(src, &p);
        let mut snk = snk;
        send_frame(&src, 0, 0);
        (src.shutdown_write)();
        assert_eq!(drain_seqs(snk.data[0].as_mut()), Vec::<u32>::new());
    }

    #[test]
    fn feeder_propagates_inner_errors() {
        let p = WanProfile::parse("rtt=1ms").unwrap();
        let (src, snk) = channel_transport(1, 8);
        let mut snk = wrap_sink(snk, &p);
        send_frame(&src, 0, 3);
        let got = snk.data[0].recv_header().unwrap().unwrap();
        snk.data[0].discard_wire(got.wire_len()).unwrap();
        // Aborting tears the inner links down; the wrapped endpoints must
        // surface end-of-stream (channel abort reads as EOF), not hang.
        (src.abort)();
        assert!(snk.data[0].recv_header().unwrap().is_none());
        assert!(snk.ctrl_rx.recv().unwrap().is_none());
    }
}
