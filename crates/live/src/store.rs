//! Real-file storage backends for the live pipeline.
//!
//! This is the pipeline's first contact with the kernel I/O path: an
//! aligned block reader feeding the loader threads (the paper's
//! `Loading` state overlapping disk with the network) and a write-behind
//! sink that `pwrite`s blocks at `seq * block_size` the moment their
//! placement bit is claimed. Sparse positioned writes *are* the
//! reassembly — no reorder buffer ever holds payload, the file's address
//! space does — with one batched `fdatasync` at dataset completion.
//!
//! Direct I/O (`O_DIRECT`) is supported where the filesystem allows it,
//! with a transparent buffered fallback (tmpfs, for one, rejects
//! `O_DIRECT`): every open tries the direct flag first when asked, and a
//! buffered handle always exists for the cases direct I/O cannot express
//! (unaligned tail blocks, unaligned offsets). Buffered sources are
//! advised `POSIX_FADV_SEQUENTIAL` so kernel read-ahead works with the
//! pipeline's own block read-ahead rather than against it.
//!
//! `O_DIRECT` demands 4 KiB-aligned buffers, offsets, and lengths, so
//! block buffers come from [`SlotBuf`]: one aligned allocation per slot,
//! laid out so the *payload* (not the wire header) sits on the alignment
//! boundary. The wire view — header immediately followed by payload —
//! is unchanged; the header simply ends where the aligned payload
//! begins.

use rftp_core::wire::PAYLOAD_HEADER_LEN;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::{FileExt, OpenOptionsExt};
use std::path::Path;

/// Alignment for direct I/O: buffer addresses, file offsets, and request
/// lengths are all multiples of this (the ubiquitous 4 KiB logical block).
pub const STORE_ALIGN: usize = 4096;

// `O_DIRECT` is not in std; its value is architecture-specific.
#[cfg(any(target_arch = "aarch64", target_arch = "arm"))]
const O_DIRECT: i32 = 0o200000;
#[cfg(not(any(target_arch = "aarch64", target_arch = "arm")))]
const O_DIRECT: i32 = 0o40000;

/// Advise the kernel we stream this file front to back (best effort —
/// the transfer is correct either way).
fn fadvise_sequential(file: &File) {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        extern "C" {
            fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
        }
        const POSIX_FADV_SEQUENTIAL: i32 = 2;
        // Failure is advisory too.
        unsafe { posix_fadvise(file.as_raw_fd(), 0, 0, POSIX_FADV_SEQUENTIAL) };
    }
    #[cfg(not(target_os = "linux"))]
    let _ = file;
}

/// Try to open `path` with `O_DIRECT` in the given mode; `None` when the
/// filesystem refuses (the caller falls back to its buffered handle).
fn open_direct(path: &Path, write: bool) -> Option<File> {
    OpenOptions::new()
        .read(!write)
        .write(write)
        .custom_flags(O_DIRECT)
        .open(path)
        .ok()
}

fn direct_ok(buf_ptr: *const u8, len: usize, offset: u64) -> bool {
    (buf_ptr as usize).is_multiple_of(STORE_ALIGN)
        && len.is_multiple_of(STORE_ALIGN)
        && offset.is_multiple_of(STORE_ALIGN as u64)
}

/// One pool slot's buffer: a single aligned allocation holding the wire
/// image (payload header + payload), laid out so the payload begins on a
/// [`STORE_ALIGN`] boundary. Dereferences to the wire byte slice —
/// `buf[0..PAYLOAD_HEADER_LEN]` is the header, `buf[PAYLOAD_HEADER_LEN..]`
/// the (alignment-padded) payload region — so pipeline code indexes it
/// exactly like the plain boxed slices it replaces, while the storage
/// layer gets `O_DIRECT`-legal payload addresses for free.
pub struct SlotBuf {
    ptr: std::ptr::NonNull<u8>,
    layout: std::alloc::Layout,
    len: usize,
    /// Whether this slot owns its allocation. `false` for external
    /// (mapped) slots: the memory belongs to a shared window whose
    /// lifetime outlives the slot, and Drop must not free it.
    owned: bool,
}

// One owner at a time (the pipeline wraps each SlotBuf in a Mutex); the
// raw pointer is only a consequence of manual aligned allocation.
unsafe impl Send for SlotBuf {}
unsafe impl Sync for SlotBuf {}

impl SlotBuf {
    /// Allocate a zeroed slot for `block_size` payload bytes. The usable
    /// payload region is `block_size` rounded up to [`STORE_ALIGN`], so
    /// an aligned-length direct read of a short tail block has room.
    pub fn new(block_size: usize) -> SlotBuf {
        assert!(block_size > 0);
        let padded = block_size.next_multiple_of(STORE_ALIGN);
        let layout = std::alloc::Layout::from_size_align(STORE_ALIGN + padded, STORE_ALIGN)
            .expect("slot layout");
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let ptr = std::ptr::NonNull::new(raw).unwrap_or_else(|| {
            std::alloc::handle_alloc_error(layout);
        });
        SlotBuf {
            ptr,
            layout,
            len: PAYLOAD_HEADER_LEN + padded,
            owned: true,
        }
    }

    /// Total allocation bytes a slot for `block_size` occupies —
    /// [`STORE_ALIGN`] of dead space (frame prefix + header region)
    /// followed by the payload padded to the next [`STORE_ALIGN`]
    /// multiple. The stride of a packed slot window.
    pub fn stride(block_size: usize) -> usize {
        STORE_ALIGN + block_size.next_multiple_of(STORE_ALIGN)
    }

    /// Wrap an externally owned allocation (a slot inside a mapped
    /// shared-memory window) in the `SlotBuf` interface. `base` must
    /// point at `stride(block_size)` bytes, [`STORE_ALIGN`]-aligned,
    /// valid for the life of the returned value; the caller keeps
    /// ownership (Drop does not free).
    ///
    /// # Safety
    /// The caller guarantees `base` is valid, aligned, exclusive to
    /// this `SlotBuf` for writes, and outlives it.
    pub unsafe fn external(base: *mut u8, block_size: usize) -> SlotBuf {
        assert!(block_size > 0);
        assert!((base as usize).is_multiple_of(STORE_ALIGN));
        let padded = block_size.next_multiple_of(STORE_ALIGN);
        let layout = std::alloc::Layout::from_size_align(STORE_ALIGN + padded, STORE_ALIGN)
            .expect("slot layout");
        SlotBuf {
            ptr: std::ptr::NonNull::new(base).expect("external slot base"),
            layout,
            len: PAYLOAD_HEADER_LEN + padded,
            owned: false,
        }
    }

    /// Base pointer and total byte length of the allocation, for
    /// registering the whole slot (dead space included) as a fixed
    /// buffer with a kernel ring. The registration must cover the
    /// frame region returned by [`SlotBuf::framed_mut`].
    pub(crate) fn registration_parts(&self) -> (*mut u8, usize) {
        (self.ptr.as_ptr(), self.layout.size())
    }

    /// Mutable view starting `frame_len` bytes *before* the wire slice,
    /// spanning the frame prefix plus the full wire image. Lets a
    /// transport prepend a `frame_len`-byte link header in the slot's
    /// dead space so header + payload go out as one contiguous write
    /// from the registered buffer.
    pub(crate) fn framed_mut(&mut self, frame_len: usize) -> &mut [u8] {
        assert!(frame_len <= STORE_ALIGN - PAYLOAD_HEADER_LEN);
        unsafe {
            std::slice::from_raw_parts_mut(
                self.ptr
                    .as_ptr()
                    .add(STORE_ALIGN - PAYLOAD_HEADER_LEN - frame_len),
                frame_len + self.len,
            )
        }
    }
}

impl Drop for SlotBuf {
    fn drop(&mut self) {
        if self.owned {
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.layout) };
        }
    }
}

impl std::ops::Deref for SlotBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        // The wire image starts PAYLOAD_HEADER_LEN bytes before the
        // aligned payload boundary at STORE_ALIGN.
        unsafe {
            std::slice::from_raw_parts(
                self.ptr.as_ptr().add(STORE_ALIGN - PAYLOAD_HEADER_LEN),
                self.len,
            )
        }
    }
}

impl std::ops::DerefMut for SlotBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        unsafe {
            std::slice::from_raw_parts_mut(
                self.ptr.as_ptr().add(STORE_ALIGN - PAYLOAD_HEADER_LEN),
                self.len,
            )
        }
    }
}

impl std::fmt::Debug for SlotBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlotBuf({} bytes aligned {})", self.len, STORE_ALIGN)
    }
}

/// Global token-bucket pacer emulating a storage device's service rate:
/// each request reserves the next slot on a single modeled device
/// timeline (lock-free CAS) and sleeps until the device would have
/// delivered its bytes. This is how a [`rftp_core::StoreConfig`] rate
/// preset applies to the live pipeline when the backing store (tmpfs,
/// page cache) is faster than the device being modeled — and it gives
/// the read-ahead benchmarks a deterministic service time where a
/// host-cached virtual disk gives none.
#[derive(Debug)]
pub struct RatePacer {
    bytes_per_sec: f64,
    start: std::time::Instant,
    /// Nanoseconds since `start` at which the modeled device frees up.
    next_ns: std::sync::atomic::AtomicU64,
}

impl RatePacer {
    pub fn new(bytes_per_sec: f64) -> RatePacer {
        assert!(bytes_per_sec > 0.0);
        RatePacer {
            bytes_per_sec,
            start: std::time::Instant::now(),
            next_ns: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Account `len` delivered bytes; blocks until the modeled device
    /// would have finished delivering them. Concurrent callers serialize
    /// on the device timeline, not on each other — the reservation is a
    /// single CAS, and the wait is a plain sleep that releases the core
    /// to the rest of the pipeline (that release *is* the overlap
    /// read-ahead buys).
    pub fn pace(&self, len: usize) {
        use std::sync::atomic::Ordering;
        let cost = (len as f64 * 1e9 / self.bytes_per_sec) as u64;
        let mut prev = self.next_ns.load(Ordering::Acquire);
        let slot_end = loop {
            let now = self.start.elapsed().as_nanos() as u64;
            let end = prev.max(now) + cost;
            match self
                .next_ns
                .compare_exchange_weak(prev, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break end,
                Err(p) => prev = p,
            }
        };
        let now = self.start.elapsed().as_nanos() as u64;
        if slot_end > now {
            std::thread::sleep(std::time::Duration::from_nanos(slot_end - now));
        }
    }
}

/// The aligned block reader: source file of a file-to-file transfer.
/// Loader threads call [`FileSource::read_block`] concurrently
/// (positioned reads share the handle without a seek cursor).
#[derive(Debug)]
pub struct FileSource {
    buffered: File,
    direct: Option<File>,
    len: u64,
}

impl FileSource {
    /// Open `path`; with `want_direct`, additionally try an `O_DIRECT`
    /// handle, falling back silently where the filesystem refuses.
    pub fn open(path: &Path, want_direct: bool) -> io::Result<FileSource> {
        let buffered = File::open(path)?;
        let len = buffered.metadata()?.len();
        let direct = if want_direct {
            open_direct(path, false)
        } else {
            None
        };
        if direct.is_none() {
            fadvise_sequential(&buffered);
        }
        Ok(FileSource {
            buffered,
            direct,
            len,
        })
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether reads actually go through `O_DIRECT`.
    pub fn direct_active(&self) -> bool {
        self.direct.is_some()
    }

    /// Read exactly `len` bytes at `offset` into `buf[..len]`. `buf` may
    /// be longer than `len` (a [`SlotBuf`] payload region): the direct
    /// path issues one aligned-length request into it and lets the tail
    /// of a short final block come back short.
    pub fn read_block(&self, buf: &mut [u8], len: usize, offset: u64) -> io::Result<()> {
        assert!(buf.len() >= len);
        if let Some(direct) = &self.direct {
            let want = len.next_multiple_of(STORE_ALIGN);
            if want <= buf.len() && direct_ok(buf.as_ptr(), want, offset) {
                let n = direct.read_at(&mut buf[..want], offset)?;
                if n >= len {
                    return Ok(());
                }
                // Short direct read (EOF mid-request or an impatient
                // kernel): finish through the buffered handle, which has
                // no alignment constraints on the remainder.
                return self
                    .buffered
                    .read_exact_at(&mut buf[n..len], offset + n as u64);
            }
        }
        self.buffered.read_exact_at(&mut buf[..len], offset)
    }
}

/// The write-behind sink: destination file of a transfer. Pre-sized at
/// creation so out-of-order positioned writes land in a file of the
/// final length — sparse placement is the reassembly. Receiver threads
/// call [`FileSink::write_block`] concurrently; nothing is durable until
/// [`FileSink::sync`] (the batched `fdatasync` at dataset completion).
#[derive(Debug)]
pub struct FileSink {
    buffered: File,
    direct: Option<File>,
}

impl FileSink {
    /// Create (or truncate) `path` and pre-size it to `total_bytes`.
    pub fn create(path: &Path, total_bytes: u64, want_direct: bool) -> io::Result<FileSink> {
        let buffered = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        buffered.set_len(total_bytes)?;
        let direct = if want_direct {
            open_direct(path, true)
        } else {
            None
        };
        Ok(FileSink { buffered, direct })
    }

    /// Whether full-block writes actually go through `O_DIRECT`.
    pub fn direct_active(&self) -> bool {
        self.direct.is_some()
    }

    /// Write `payload` at `offset`. Full aligned blocks take the direct
    /// handle when available; unaligned tails (or unaligned block sizes)
    /// take the buffered handle — `O_DIRECT` cannot express them.
    pub fn write_block(&self, payload: &[u8], offset: u64) -> io::Result<()> {
        if let Some(direct) = &self.direct {
            if direct_ok(payload.as_ptr(), payload.len(), offset) {
                return direct.write_all_at(payload, offset);
            }
        }
        self.buffered.write_all_at(payload, offset)
    }

    /// The dataset-completion `fdatasync`: one syscall for the whole
    /// transfer instead of one per block (write-behind's other half).
    pub fn sync(&self) -> io::Result<()> {
        self.buffered.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rftp_core::wire::PAYLOAD_HEADER_LEN as HDR;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        dir.join(format!("rftp_store_{}_{name}", std::process::id()))
    }

    #[test]
    fn slot_buf_payload_is_aligned() {
        for bs in [512usize, 4096, 65536, 65536 + 1000] {
            let buf = SlotBuf::new(bs);
            assert_eq!(buf.len(), HDR + bs.next_multiple_of(STORE_ALIGN));
            let payload_ptr = buf[HDR..].as_ptr() as usize;
            assert_eq!(payload_ptr % STORE_ALIGN, 0, "payload must be aligned");
            assert!(buf.iter().all(|&b| b == 0), "fresh slots are zeroed");
        }
    }

    #[test]
    fn slot_buf_is_writable_through_deref() {
        let mut buf = SlotBuf::new(8192);
        buf[0] = 0xAB;
        buf[HDR] = 0xCD;
        let last = buf.len() - 1;
        buf[last] = 0xEF;
        assert_eq!((buf[0], buf[HDR], buf[last]), (0xAB, 0xCD, 0xEF));
    }

    #[test]
    fn file_round_trip_with_unaligned_tail() {
        let path = tmp("roundtrip");
        let total = 3 * 4096 + 777u64; // unaligned tail
        let data: Vec<u8> = (0..total).map(|i| (i * 7 % 251) as u8).collect();

        let sink = FileSink::create(&path, total, true).expect("create");
        // Write out of order: tail first.
        sink.write_block(&data[3 * 4096..], 3 * 4096).unwrap();
        sink.write_block(&data[..4096], 0).unwrap();
        sink.write_block(&data[4096..3 * 4096], 4096).unwrap();
        sink.sync().unwrap();
        drop(sink);

        let src = FileSource::open(&path, true).expect("open");
        assert_eq!(src.len(), total);
        let mut buf = SlotBuf::new(4096);
        let mut got = Vec::new();
        for (seq, chunk) in data.chunks(4096).enumerate() {
            src.read_block(&mut buf[HDR..], chunk.len(), seq as u64 * 4096)
                .unwrap();
            got.extend_from_slice(&buf[HDR..HDR + chunk.len()]);
        }
        assert_eq!(got, data, "bytes must survive the round trip");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pacer_enforces_the_modeled_rate() {
        // 64 MB/s device, 8 x 64 KiB requests = 512 KiB -> >= 8 ms.
        let pacer = RatePacer::new(64.0 * 1024.0 * 1024.0);
        let t0 = std::time::Instant::now();
        for _ in 0..8 {
            pacer.pace(64 * 1024);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= std::time::Duration::from_millis(7),
            "pacer let 512 KiB through a 64 MB/s device in {elapsed:?}"
        );
    }

    #[test]
    fn direct_falls_back_where_unsupported() {
        // tmpfs (and many CI filesystems) reject O_DIRECT; the handles
        // must degrade to buffered I/O and still move correct bytes.
        let path = tmp("fallback");
        let sink = FileSink::create(&path, 4096, true).expect("create");
        let mut buf = SlotBuf::new(4096);
        buf[HDR..HDR + 4096].copy_from_slice(&[0x5A; 4096]);
        sink.write_block(&buf[HDR..HDR + 4096], 0).unwrap();
        sink.sync().unwrap();
        drop(sink);
        let back = std::fs::read(&path).unwrap();
        assert_eq!(back, vec![0x5A; 4096]);
        std::fs::remove_file(&path).ok();
    }
}
