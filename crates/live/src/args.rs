//! Shared command-line flag parsing for the `rftp-live` and `rftpd`
//! binaries: one place for size suffixes and the uniform
//! missing-value / bad-value errors, so the two front ends cannot
//! drift. No derive-macro dependency — the loop stays in each binary
//! (the flags differ), only the per-flag steps live here.

use std::path::PathBuf;

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of
/// two): `256K` → 262144. Bare numbers are bytes.
pub fn parse_size(s: &str) -> Option<u64> {
    let (num, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1u64 << 10),
        'M' | 'm' => (&s[..s.len() - 1], 1 << 20),
        'G' | 'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// One step of the flag loop: consume the flag's value argument, with a
/// uniform missing-value error. The typed wrappers below build on it.
pub fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("missing value for {flag}"))
}

/// Consume and `FromStr`-parse a flag value (counts, probabilities).
pub fn flag_parse<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    flag_value(it, flag)?
        .parse()
        .map_err(|_| format!("bad {flag}"))
}

/// Consume and size-parse a flag value (`K`/`M`/`G` suffixes).
pub fn flag_size(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    parse_size(&flag_value(it, flag)?).ok_or_else(|| format!("bad {flag}"))
}

/// Consume a flag value as a path.
pub fn flag_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    Ok(PathBuf::from(flag_value(it, flag)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_with_suffixes() {
        assert_eq!(parse_size("256K"), Some(256 << 10));
        assert_eq!(parse_size("1g"), Some(1 << 30));
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("12Q"), None);
        assert_eq!(parse_size("K"), None);
    }

    #[test]
    fn flag_helpers_report_the_flag_name() {
        let mut empty = std::iter::empty();
        assert_eq!(
            flag_value(&mut empty, "--pool").unwrap_err(),
            "missing value for --pool"
        );
        let mut bad = ["nope".to_string()].into_iter();
        assert_eq!(
            flag_parse::<usize>(&mut bad, "--pool").unwrap_err(),
            "bad --pool"
        );
        let mut good = ["64".to_string(), "2M".to_string()].into_iter();
        assert_eq!(flag_parse::<usize>(&mut good, "--pool").unwrap(), 64);
        assert_eq!(flag_size(&mut good, "--sockbuf").unwrap(), 2 << 20);
    }
}
