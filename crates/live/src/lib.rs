//! # rftp-live — the protocol pipeline on real threads
//!
//! The simulated engines in `rftp-core` prove the protocol's *timing*
//! behaviour; this crate proves its *concurrency* behaviour. It runs the
//! same middleware machinery — the Fig. 7 wire formats, the Fig. 6
//! buffer-block state machines, the proactive credit granter, and the
//! out-of-order reassembly buffer — as a native multi-threaded pipeline:
//!
//! * **queue pairs** are bounded `crossbeam` channels carrying real
//!   encoded bytes (control) and real payload buffers (data);
//! * **RDMA WRITE placement** is a memcpy into the slot a credit named,
//!   performed by a per-channel receiver thread (the "NIC");
//! * **threads** mirror Fig. 2's pool: loaders, a dispatcher, a
//!   completion handler, per-channel receivers, a control handler, and a
//!   consumer — synchronized with `parking_lot` locks and condvars.
//!
//! A transfer moves pattern data end to end with header validation and
//! checksum verification at the sink, and reports real wall-clock
//! throughput (this is actual memory bandwidth, typically several GB/s).
//!
//! With a source and/or destination file configured, the same pipeline
//! runs **disk to disk**: the `store` module supplies an aligned,
//! `O_DIRECT`-capable block reader and a write-behind sink that `pwrite`s
//! each block at its final offset the moment it is placed — loaders
//! become the read-ahead scheduler and sparse placement is the
//! reassembly.
//!
//! The `transport` / `net` / `split` modules take the final step off the
//! simulator: the pipeline splits into a standalone source half and sink
//! half joined only by a [`transport`] — in-process channels for tests,
//! or real TCP sockets ([`net`]) so `rftp-live --listen` and
//! `rftp-live --connect` move a file between two OS processes. An RDMA
//! WRITE becomes one vectored write of frame header + payload straight
//! from the pinned block; the receiver reads the wire image directly
//! into the credited slot.

pub mod args;
pub(crate) mod coalesce;
pub mod daemon;
pub mod hist;
pub mod net;
pub mod netem;
pub mod pipeline;
pub mod shm;
pub mod split;
pub mod store;
pub mod transport;
pub mod uring;

pub use daemon::{
    install_sigterm_hook, Daemon, DaemonConfig, DaemonHandle, DaemonReport, DaemonTransport,
    SessionSummary,
};
pub use hist::{NsHist, StageTails};
pub use net::{connect_source, NetListener};
pub use netem::{wrap_pair, wrap_sink, wrap_source, wrap_source_datapath, WanProfile};
pub use pipeline::{run_live, try_run_live, LiveConfig, LiveReport, StageBreakdown};
pub use shm::{
    connect_source_shm, connect_source_shm_or_tcp, run_shm_sink, shm_supported, ShmListener,
    ShmSessionStreams,
};
pub use split::{run_split_pair, run_split_pair_wan, run_split_sink, run_split_source};
pub use store::{FileSink, FileSource, RatePacer, SlotBuf, STORE_ALIGN};
pub use transport::{channel_transport, SinkTransport, SourceTransport, UringStats};
pub use uring::{
    accept_source_uring, connect_source_uring, run_uring_sink, uring_multishot, uring_supported,
    UringSinkSession,
};
