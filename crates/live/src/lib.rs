//! # rftp-live — the protocol pipeline on real threads
//!
//! The simulated engines in `rftp-core` prove the protocol's *timing*
//! behaviour; this crate proves its *concurrency* behaviour. It runs the
//! same middleware machinery — the Fig. 7 wire formats, the Fig. 6
//! buffer-block state machines, the proactive credit granter, and the
//! out-of-order reassembly buffer — as a native multi-threaded pipeline:
//!
//! * **queue pairs** are bounded `crossbeam` channels carrying real
//!   encoded bytes (control) and real payload buffers (data);
//! * **RDMA WRITE placement** is a memcpy into the slot a credit named,
//!   performed by a per-channel receiver thread (the "NIC");
//! * **threads** mirror Fig. 2's pool: loaders, a dispatcher, a
//!   completion handler, per-channel receivers, a control handler, and a
//!   consumer — synchronized with `parking_lot` locks and condvars.
//!
//! A transfer moves pattern data end to end with header validation and
//! checksum verification at the sink, and reports real wall-clock
//! throughput (this is actual memory bandwidth, typically several GB/s).

pub mod pipeline;

pub use pipeline::{run_live, LiveConfig, LiveReport};
