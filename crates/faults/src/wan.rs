//! WAN impairment profiles for the live transports.
//!
//! A [`WanProfile`] is the live-pipeline counterpart of a [`crate::FaultPlan`]:
//! the same seeded-determinism contract (one seed, one replayable
//! impairment sequence, an all-zero profile is byte-identical to no
//! shim at all), but expressed as *path characteristics* — one-way
//! delay, jitter, rate cap, loss, reorder — instead of scheduled fabric
//! events, because the live shim sits on real sockets where there is no
//! simulated clock to schedule against.
//!
//! The three named presets reproduce the paper's Table I testbeds, with
//! the same numbers `rftp_netsim::testbed` uses:
//!
//! | preset     | RTT      | rate      | notes                      |
//! |------------|----------|-----------|----------------------------|
//! | `roce-lan` | 0.025 ms | 40 Gbps   | back-to-back RoCE          |
//! | `ib-lan`   | 0.013 ms | 25.6 Gbps | PCIe-limited 4X QDR        |
//! | `ani-wan`  | 49 ms    | 10 Gbps   | ANL↔NERSC, residual 1e-6 loss |
//!
//! Specs extend a preset with `key=value` overrides, or build a path
//! from scratch: `ani-wan,drop=0.01`, `rtt=49ms,rate=10G,seed=7`.

use std::time::Duration;

/// A deterministic WAN path description for the live impairment shim.
#[derive(Debug, Clone, PartialEq)]
pub struct WanProfile {
    /// Human-readable tag (`"ani-wan"`, or `"custom"` for bare specs).
    pub name: String,
    /// One-way propagation delay (half the RTT).
    pub one_way: Duration,
    /// Uniform extra per-frame delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Path rate cap in bits/s; `None` = unthrottled.
    pub rate_bps: Option<f64>,
    /// Per-data-frame drop probability.
    pub loss_p: f64,
    /// Per-data-frame probability of swapping with the next frame.
    pub reorder_p: f64,
    /// Seed for every probabilistic draw the shim makes.
    pub seed: u64,
}

impl WanProfile {
    /// The paper's 40 Gbps RoCE LAN (Table I column 2).
    pub fn roce_lan() -> WanProfile {
        WanProfile {
            name: "roce-lan".into(),
            one_way: Duration::from_micros(13),
            jitter: Duration::ZERO,
            rate_bps: Some(40e9),
            loss_p: 0.0,
            reorder_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// The paper's PCIe-limited InfiniBand LAN (Table I column 1).
    pub fn ib_lan() -> WanProfile {
        WanProfile {
            name: "ib-lan".into(),
            one_way: Duration::from_nanos(6_500),
            jitter: Duration::ZERO,
            rate_bps: Some(25.6e9),
            loss_p: 0.0,
            reorder_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// The DOE ANI WAN path (Table I column 3): 10 Gbps, 49 ms RTT,
    /// residual microloss.
    pub fn ani_wan() -> WanProfile {
        WanProfile {
            name: "ani-wan".into(),
            one_way: Duration::from_micros(24_500),
            jitter: Duration::ZERO,
            rate_bps: Some(10e9),
            loss_p: 1e-6,
            reorder_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// An unimpaired path (the identity shim).
    pub fn clean() -> WanProfile {
        WanProfile {
            name: "custom".into(),
            one_way: Duration::ZERO,
            jitter: Duration::ZERO,
            rate_bps: None,
            loss_p: 0.0,
            reorder_p: 0.0,
            seed: DEFAULT_SEED,
        }
    }

    /// Parse a `--wan` spec: a preset name, optionally followed by
    /// comma-separated `key=value` overrides, or overrides alone
    /// starting from [`WanProfile::clean`].
    ///
    /// Keys: `rtt` / `delay` (durations: `49ms`, `25us`, `1s`),
    /// `jitter`, `rate` (`10G`, `250M`, bits/s), `loss` / `drop`
    /// (probability), `reorder` (probability), `seed` (u64).
    pub fn parse(spec: &str) -> Result<WanProfile, String> {
        let mut parts = spec.split(',');
        let first = parts.next().unwrap_or("").trim();
        let mut p = match first {
            "roce-lan" => WanProfile::roce_lan(),
            "ib-lan" => WanProfile::ib_lan(),
            "ani-wan" => WanProfile::ani_wan(),
            "" => return Err("empty --wan spec".into()),
            kv if kv.contains('=') => {
                let mut p = WanProfile::clean();
                apply_kv(&mut p, kv)?;
                p
            }
            other => {
                return Err(format!(
                    "unknown WAN preset {other:?} (roce-lan, ib-lan, ani-wan, or key=value)"
                ))
            }
        };
        for kv in parts {
            apply_kv(&mut p, kv.trim())?;
        }
        Ok(p)
    }

    /// Path round trip (both directions of propagation).
    pub fn rtt(&self) -> Duration {
        self.one_way * 2
    }

    /// Bandwidth-delay product in bytes; 0 when unthrottled.
    pub fn bdp_bytes(&self) -> u64 {
        match self.rate_bps {
            Some(r) => (r / 8.0 * self.rtt().as_secs_f64()) as u64,
            None => 0,
        }
    }

    /// True when the profile changes nothing (the shim can no-op).
    pub fn is_identity(&self) -> bool {
        self.one_way.is_zero()
            && self.jitter.is_zero()
            && self.rate_bps.is_none()
            && self.loss_p == 0.0
            && self.reorder_p == 0.0
    }

    /// A fresh seeded dice stream for one shim instance. `lane`
    /// decorrelates the per-channel streams of a single profile.
    pub fn dice(&self, lane: u64) -> WanDice {
        WanDice {
            state: self.seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }
}

const DEFAULT_SEED: u64 = 0xFA_017;

fn apply_kv(p: &mut WanProfile, kv: &str) -> Result<(), String> {
    let (k, v) = kv
        .split_once('=')
        .ok_or_else(|| format!("bad WAN option {kv:?} (expected key=value)"))?;
    match k.trim() {
        "rtt" => p.one_way = parse_duration(v)? / 2,
        "delay" | "one-way" => p.one_way = parse_duration(v)?,
        "jitter" => p.jitter = parse_duration(v)?,
        "rate" => {
            p.rate_bps = match v.trim() {
                "0" | "none" => None,
                r => Some(parse_rate(r)?),
            }
        }
        "loss" | "drop" => p.loss_p = parse_prob(v)?,
        "reorder" => p.reorder_p = parse_prob(v)?,
        "seed" => p.seed = v.trim().parse().map_err(|_| format!("bad seed {v:?}"))?,
        other => return Err(format!("unknown WAN key {other:?}")),
    }
    Ok(())
}

fn parse_duration(v: &str) -> Result<Duration, String> {
    let v = v.trim();
    let (num, scale_ns) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = v.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("bad duration {v:?} (use e.g. 49ms, 25us)"));
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {v:?}"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(format!("bad duration {v:?}"));
    }
    Ok(Duration::from_nanos((x * scale_ns) as u64))
}

fn parse_rate(v: &str) -> Result<f64, String> {
    let v = v.trim();
    let (num, mult) = match v.chars().last() {
        Some('G') | Some('g') => (&v[..v.len() - 1], 1e9),
        Some('M') | Some('m') => (&v[..v.len() - 1], 1e6),
        Some('K') | Some('k') => (&v[..v.len() - 1], 1e3),
        _ => (v, 1.0),
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad rate {v:?} (use e.g. 10G, 250M, bits/s)"))?;
    if !x.is_finite() || x <= 0.0 {
        return Err(format!("bad rate {v:?}"));
    }
    Ok(x * mult)
}

fn parse_prob(v: &str) -> Result<f64, String> {
    let x: f64 = v
        .trim()
        .parse()
        .map_err(|_| format!("bad probability {v:?}"))?;
    if !(0.0..=1.0).contains(&x) {
        return Err(format!("probability {v:?} out of [0,1]"));
    }
    Ok(x)
}

/// Seeded splitmix64 stream for the shim's probabilistic draws — the
/// same generator the live fault injector uses, so a profile's seed
/// replays the identical impairment sequence run after run.
#[derive(Debug, Clone)]
pub struct WanDice {
    state: u64,
}

impl WanDice {
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One Bernoulli draw with probability `p`.
    pub fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform duration in `[0, span]`.
    pub fn jitter(&mut self, span: Duration) -> Duration {
        if span.is_zero() {
            return Duration::ZERO;
        }
        let ns = span.as_nanos().min(u64::MAX as u128) as u64;
        Duration::from_nanos(self.next_u64() % (ns + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        assert_eq!(WanProfile::roce_lan().rtt(), Duration::from_micros(26));
        assert_eq!(WanProfile::ib_lan().rtt(), Duration::from_micros(13));
        assert_eq!(WanProfile::ani_wan().rtt(), Duration::from_millis(49));
        // 10 Gbps * 49 ms = 61.25 MB — the window the WAN demands.
        let bdp = WanProfile::ani_wan().bdp_bytes();
        assert!((bdp as f64 - 61_250_000.0).abs() < 1e4, "bdp={bdp}");
    }

    #[test]
    fn spec_parsing_presets_and_overrides() {
        let p = WanProfile::parse("ani-wan,drop=0.01,seed=7").unwrap();
        assert_eq!(p.name, "ani-wan");
        assert_eq!(p.one_way, Duration::from_micros(24_500));
        assert_eq!(p.loss_p, 0.01);
        assert_eq!(p.seed, 7);

        let c = WanProfile::parse("rtt=49ms,rate=10G,loss=0.001").unwrap();
        assert_eq!(c.name, "custom");
        assert_eq!(c.rtt(), Duration::from_millis(49));
        assert_eq!(c.rate_bps, Some(10e9));
        assert_eq!(c.loss_p, 0.001);

        assert!(WanProfile::parse("lte").is_err());
        assert!(WanProfile::parse("ani-wan,loss=2.0").is_err());
        assert!(WanProfile::parse("rate=10G,rtt=oops").is_err());
        assert!(WanProfile::parse("").is_err());
    }

    #[test]
    fn identity_profile_is_detected() {
        assert!(WanProfile::clean().is_identity());
        assert!(!WanProfile::ani_wan().is_identity());
        let p = WanProfile::parse("rate=none,drop=0").unwrap();
        assert!(p.is_identity());
    }

    #[test]
    fn dice_are_deterministic_per_seed_and_lane() {
        let p = WanProfile::parse("ani-wan,seed=42").unwrap();
        let a: Vec<u64> = {
            let mut d = p.dice(3);
            (0..16).map(|_| d.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut d = p.dice(3);
            (0..16).map(|_| d.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed+lane replays the identical stream");
        let mut other = p.dice(4);
        let c: Vec<u64> = (0..16).map(|_| other.next_u64()).collect();
        assert_ne!(a, c, "lanes decorrelate");
    }

    #[test]
    fn roll_matches_probability_roughly() {
        let p = WanProfile::parse("drop=0.25,seed=9").unwrap();
        let mut d = p.dice(0);
        let hits = (0..10_000).filter(|_| d.roll(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        let mut never = p.dice(1);
        assert!((0..1_000).all(|_| !never.roll(0.0)));
    }

    #[test]
    fn jitter_stays_in_span() {
        let p = WanProfile::parse("jitter=100us,seed=5").unwrap();
        let mut d = p.dice(0);
        for _ in 0..1_000 {
            assert!(d.jitter(p.jitter) <= Duration::from_micros(100));
        }
        assert_eq!(d.jitter(Duration::ZERO), Duration::ZERO);
    }
}
