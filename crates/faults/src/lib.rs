//! # rftp-faults — deterministic fault plans for the RDMA fabric
//!
//! A [`FaultPlan`] is a seeded, scheduled list of fault events — link
//! flaps, per-link probabilistic drop windows, QP-to-error transitions,
//! swallowed completions, NIC stalls — compiled onto the netsim kernel
//! as timer events ([`rftp_fabric::Ev::Fault`]). The fabric injects the
//! faults; the protocol layer above is expected to *survive* them (per-
//! block retransmission and session resume in `rftp-core`).
//!
//! Everything is deterministic: the same plan against the same
//! experiment replays the same outage, fragment for fragment. An empty
//! plan is byte-identical to not having the fault layer at all — no RNG
//! draws, no extra events, no behavior change.
//!
//! ```
//! use rftp_faults::FaultPlan;
//! use rftp_netsim::time::{SimDur, SimTime};
//!
//! // Link 0 flaps down for 200 ms, one second into the run, and a 2%
//! // drop window follows.
//! let plan = FaultPlan::new()
//!     .link_flap(0, SimTime::ZERO + SimDur::from_secs(1), SimDur::from_millis(200))
//!     .drop_window(
//!         0,
//!         SimTime::ZERO + SimDur::from_secs(2),
//!         SimTime::ZERO + SimDur::from_secs(3),
//!         0.02,
//!     );
//! assert_eq!(plan.events.len(), 4);
//! ```

pub mod wan;

pub use wan::{WanDice, WanProfile};

use rftp_fabric::{Ev, FabricWorld, FaultAction, HostId};
use rftp_netsim::kernel::Sim;
use rftp_netsim::time::{SimDur, SimTime};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub action: FaultAction,
}

/// A deterministic schedule of fault events plus the seed for the
/// fabric's fault RNG (which only probabilistic drop windows consume).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fabric's dedicated fault RNG.
    pub seed: u64,
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new()
    }
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan {
            seed: 0xFA_017,
            events: Vec::new(),
        }
    }

    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// No events scheduled (applying this plan changes nothing).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedule a raw action.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Link `link` goes down at `down_at` and comes back after `outage`.
    pub fn link_flap(self, link: u32, down_at: SimTime, outage: SimDur) -> FaultPlan {
        self.at(down_at, FaultAction::LinkDown { link })
            .at(down_at + outage, FaultAction::LinkUp { link })
    }

    /// Between `from` and `until`, each fragment crossing `link` is lost
    /// independently with probability `p`.
    pub fn drop_window(self, link: u32, from: SimTime, until: SimTime, p: f64) -> FaultPlan {
        assert!(until > from, "empty drop window");
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.at(from, FaultAction::DropStart { link, p })
            .at(until, FaultAction::DropStop { link })
    }

    /// Force QP `qp` (by raw fabric index) into the error state at `at`.
    pub fn qp_kill(self, qp: u32, at: SimTime) -> FaultPlan {
        self.at(at, FaultAction::QpKill { qp })
    }

    /// Freeze `host`'s NIC transmit engine for `dur` starting at `at`.
    pub fn nic_stall(self, host: HostId, at: SimTime, dur: SimDur) -> FaultPlan {
        self.at(at, FaultAction::NicStall { host, dur })
    }

    /// Between `from` and `until`, successful RDMA WRITE completions on
    /// `host` are swallowed (the lost-completion fault).
    pub fn cqe_drop_window(self, host: HostId, from: SimTime, until: SimTime) -> FaultPlan {
        assert!(until > from, "empty CQE-drop window");
        self.at(from, FaultAction::CqeDropStart { host })
            .at(until, FaultAction::CqeDropStop { host })
    }

    /// Compile the plan onto `sim`'s event queue. Call before (or during)
    /// the run; events already in the past fire immediately. An empty
    /// plan returns without touching the sim at all.
    pub fn apply(&self, sim: &mut Sim<FabricWorld>) {
        if self.events.is_empty() {
            return;
        }
        self.validate(sim);
        sim.world_mut().core.reseed_faults(self.seed);
        let now = sim.now();
        for ev in &self.events {
            let delay = if ev.at > now {
                ev.at.since(now)
            } else {
                SimDur::ZERO
            };
            sim.prime(delay, Ev::Fault(ev.action));
        }
    }

    /// Panic early (with a useful message) on out-of-range targets, so a
    /// mis-addressed plan fails at apply time rather than mid-run.
    fn validate(&self, sim: &Sim<FabricWorld>) {
        let core = &sim.world().core;
        let (links, qps, hosts) = (
            core.links().len() as u32,
            core.qps.len() as u32,
            core.hosts.len() as u32,
        );
        for ev in &self.events {
            match ev.action {
                FaultAction::LinkDown { link }
                | FaultAction::LinkUp { link }
                | FaultAction::DropStart { link, .. }
                | FaultAction::DropStop { link } => {
                    assert!(link < links, "fault plan targets missing link {link}");
                }
                FaultAction::QpKill { qp } => {
                    assert!(qp < qps, "fault plan targets missing QP {qp}");
                }
                FaultAction::NicStall { host, .. }
                | FaultAction::CqeDropStart { host }
                | FaultAction::CqeDropStop { host } => {
                    assert!(host.0 < hosts, "fault plan targets missing host {host:?}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rftp_fabric::{
        build_sim, two_host_fabric, Api, Application, Backing, Cqe, MrId, MrSlice, QpId, QpOptions,
        WcStatus, WorkRequest, WrOp,
    };
    use rftp_netsim::testbed;
    use rftp_netsim::ThreadId;

    struct Sender {
        qp: QpId,
        mr: MrId,
        statuses: Vec<WcStatus>,
    }
    impl Application for Sender {
        fn on_start(&mut self, api: &mut Api) {
            api.post_send(
                self.qp,
                WorkRequest::signaled(
                    7,
                    WrOp::Send {
                        local: MrSlice::new(self.mr, 0, 4096),
                        imm: None,
                    },
                ),
            )
            .unwrap();
        }
        fn on_cqe(&mut self, cqe: &Cqe, _api: &mut Api) {
            self.statuses.push(cqe.status);
        }
    }
    struct Receiver {
        qp: QpId,
        mr: MrId,
        received: u32,
    }
    impl Application for Receiver {
        fn on_start(&mut self, api: &mut Api) {
            api.post_recv(
                self.qp,
                rftp_fabric::RecvWr {
                    wr_id: 0,
                    local: MrSlice::new(self.mr, 0, 4096),
                },
            )
            .unwrap();
        }
        fn on_cqe(&mut self, cqe: &Cqe, _api: &mut Api) {
            if cqe.ok() {
                self.received += 1;
            }
        }
    }

    fn wired() -> (Sim<FabricWorld>, rftp_fabric::HostId, rftp_fabric::HostId) {
        let tb = testbed::roce_lan();
        let (mut core, a, b) = two_host_fabric(&tb);
        let cq_a = core.hosts[a.index()].create_cq(ThreadId(0));
        let cq_b = core.hosts[b.index()].create_cq(ThreadId(0));
        let qa = core.create_qp(a, QpOptions::default(), cq_a, cq_a);
        let qb = core.create_qp(b, QpOptions::default(), cq_b, cq_b);
        core.connect(qa, qb).unwrap();
        let (mr_a, _) = core.hosts[a.index()].register_mr(Backing::zeroed(4096));
        let (mr_b, _) = core.hosts[b.index()].register_mr(Backing::zeroed(4096));
        let sim = build_sim(
            core,
            vec![
                Some(Box::new(Sender {
                    qp: qa,
                    mr: mr_a,
                    statuses: vec![],
                })),
                Some(Box::new(Receiver {
                    qp: qb,
                    mr: mr_b,
                    received: 0,
                })),
            ],
        );
        (sim, a, b)
    }

    #[test]
    fn downed_link_fails_the_send_with_retry_exceeded() {
        let (mut sim, a, b) = wired();
        FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::LinkDown { link: 0 })
            .apply(&mut sim);
        sim.run(SimTime::ZERO + SimDur::from_secs(5));
        let s: &Sender = sim.world().app(a);
        assert_eq!(s.statuses, vec![WcStatus::RetryExceeded]);
        let r: &Receiver = sim.world().app(b);
        assert_eq!(r.received, 0, "nothing crosses a downed link");
        assert!(sim.world().core.fault_counters.frags_dropped >= 1);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let (mut clean, a, _) = wired();
        clean.run(SimTime::ZERO + SimDur::from_secs(5));
        let clean_end = clean.now();

        let (mut planned, a2, _) = wired();
        FaultPlan::seeded(12345).apply(&mut planned);
        planned.run(SimTime::ZERO + SimDur::from_secs(5));

        assert_eq!(clean_end, planned.now());
        let s1: &Sender = clean.world().app(a);
        let s2: &Sender = planned.world().app(a2);
        assert_eq!(s1.statuses, s2.statuses);
        assert_eq!(planned.world().core.fault_counters.frags_dropped, 0);
    }

    #[test]
    fn certain_drop_window_loses_the_message() {
        let (mut sim, a, _) = wired();
        FaultPlan::new()
            .drop_window(0, SimTime::ZERO, SimTime::ZERO + SimDur::from_secs(1), 1.0)
            .apply(&mut sim);
        sim.run(SimTime::ZERO + SimDur::from_secs(5));
        let s: &Sender = sim.world().app(a);
        assert_eq!(s.statuses, vec![WcStatus::RetryExceeded]);
    }

    #[test]
    fn qp_kill_surfaces_async_error_cqe() {
        let (mut sim, a, _) = wired();
        // Kill after the transfer completes so the only CQE after the
        // success is the synthetic async-event error.
        FaultPlan::new()
            .qp_kill(0, SimTime::ZERO + SimDur::from_secs(1))
            .apply(&mut sim);
        sim.run(SimTime::ZERO + SimDur::from_secs(5));
        let s: &Sender = sim.world().app(a);
        assert_eq!(s.statuses, vec![WcStatus::Success, WcStatus::RetryExceeded]);
        assert_eq!(sim.world().core.fault_counters.qp_kills, 1);
    }

    #[test]
    fn nic_stall_delays_but_delivers() {
        let (mut sim, a, b) = wired();
        let h = sim.world().core.hosts[a.index()].id;
        FaultPlan::new()
            .nic_stall(h, SimTime::ZERO, SimDur::from_millis(50))
            .apply(&mut sim);
        sim.run(SimTime::ZERO + SimDur::from_secs(5));
        let s: &Sender = sim.world().app(a);
        assert_eq!(s.statuses, vec![WcStatus::Success]);
        let r: &Receiver = sim.world().app(b);
        assert_eq!(r.received, 1);
    }

    #[test]
    #[should_panic(expected = "missing link")]
    fn out_of_range_target_rejected_at_apply() {
        let (mut sim, _, _) = wired();
        FaultPlan::new()
            .at(SimTime::ZERO, FaultAction::LinkDown { link: 99 })
            .apply(&mut sim);
    }
}
