//! Composite host applications: any number of engines behind one
//! [`rftp_fabric::Application`].
//!
//! §IV.C: "The application probably issues multiple data transfer tasks
//! simultaneously. Each task is associated with a global session
//! identifier." Concurrent tasks need concurrent protocol endpoints;
//! this module routes a host's completions and wakeups to whichever
//! engine owns the queue pair / token namespace, letting one host run N
//! parallel sources, N parallel sinks, or any mix (the
//! [`crate::duplex::DuplexEngine`] is the two-engine special case).

use crate::engine::{SinkEngine, SourceEngine};
use rftp_fabric::{Api, Application, Cqe, QpId};
use std::collections::HashMap;

/// An engine that can be composed behind a router. Endpoints are few
/// (one or two per simulated host) and long-lived, so the size gap
/// between the variants is not worth an indirection.
#[allow(clippy::large_enum_variant)]
pub enum Endpoint {
    Source(SourceEngine),
    Sink(SinkEngine),
}

impl Endpoint {
    fn owns_qp(&self, qp: QpId) -> bool {
        match self {
            Endpoint::Source(e) => e.owns_qp(qp),
            Endpoint::Sink(e) => e.owns_qp(qp),
        }
    }

    fn owns_token(&self, token: u64) -> bool {
        match self {
            Endpoint::Source(e) => e.owns_token(token),
            Endpoint::Sink(e) => e.owns_token(token),
        }
    }

    pub fn as_source(&self) -> Option<&SourceEngine> {
        match self {
            Endpoint::Source(e) => Some(e),
            Endpoint::Sink(_) => None,
        }
    }

    pub fn as_sink(&self) -> Option<&SinkEngine> {
        match self {
            Endpoint::Sink(e) => Some(e),
            Endpoint::Source(_) => None,
        }
    }
}

/// N engines on one host. Every composed engine must carry a distinct
/// token tag (`with_token_tag`) so wakeups route unambiguously.
pub struct MultiEngine {
    pub endpoints: Vec<Endpoint>,
    /// QP → endpoint index, learned lazily as queue pairs appear (data
    /// QPs are created mid-negotiation, so the map cannot be built up
    /// front). Routing a completion is one hash lookup instead of an
    /// O(endpoints · qps-per-endpoint) ownership scan per CQE; a hit is
    /// still validated against the owner so a QP that was torn down and
    /// reborn elsewhere (fault recovery) re-routes instead of misfiring.
    route: HashMap<QpId, usize>,
}

impl MultiEngine {
    pub fn new(endpoints: Vec<Endpoint>) -> MultiEngine {
        MultiEngine {
            endpoints,
            route: HashMap::new(),
        }
    }

    /// Resolve which endpoint owns `qp`, consulting the cached route
    /// first and rescanning (then re-caching) on miss or stale hit.
    fn route_qp(&mut self, qp: QpId) -> Option<usize> {
        if let Some(&i) = self.route.get(&qp) {
            if self.endpoints[i].owns_qp(qp) {
                return Some(i);
            }
        }
        let i = self.endpoints.iter().position(|e| e.owns_qp(qp))?;
        self.route.insert(qp, i);
        Some(i)
    }

    /// All sources done and all sinks drained?
    pub fn is_finished(&self) -> bool {
        self.endpoints.iter().all(|e| match e {
            Endpoint::Source(s) => s.is_finished(),
            Endpoint::Sink(k) => k.all_sessions_complete(),
        })
    }

    /// First failure across the composed engines, if any.
    pub fn failure(&self) -> Option<&str> {
        self.endpoints.iter().find_map(|e| match e {
            Endpoint::Source(s) => s.failure.as_deref(),
            Endpoint::Sink(k) => k.failure.as_deref(),
        })
    }
}

impl Application for MultiEngine {
    fn on_start(&mut self, api: &mut Api) {
        for e in &mut self.endpoints {
            match e {
                Endpoint::Source(s) => s.on_start(api),
                Endpoint::Sink(k) => k.on_start(api),
            }
        }
    }

    fn on_cqe(&mut self, cqe: &Cqe, api: &mut Api) {
        let Some(i) = self.route_qp(cqe.qp) else {
            panic!("multi: completion for unowned qp {:?}", cqe.qp);
        };
        match &mut self.endpoints[i] {
            Endpoint::Source(s) => s.on_cqe(cqe, api),
            Endpoint::Sink(k) => k.on_cqe(cqe, api),
        }
    }

    fn on_wakeup(&mut self, token: u64, api: &mut Api) {
        for e in &mut self.endpoints {
            if e.owns_token(token) {
                match e {
                    Endpoint::Source(s) => s.on_wakeup(token, api),
                    Endpoint::Sink(k) => k.on_wakeup(token, api),
                }
                return;
            }
        }
        panic!("multi: wakeup for unowned token {token:#x}");
    }
}
